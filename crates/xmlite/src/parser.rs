//! Recursive-descent parser for the supported XML subset.
//!
//! The parser operates on bytes (names and entities in the MicroCreator
//! schema are ASCII) but preserves arbitrary UTF-8 inside text and attribute
//! values untouched.

use crate::error::{XmlError, XmlResult};
use crate::node::{Element, Node};

/// Parses a complete XML document and returns the root element.
///
/// Leading XML declaration, comments and processing instructions around the
/// root are accepted and skipped. Trailing non-whitespace content after the
/// root element is an error.
pub fn parse_document(input: &str) -> XmlResult<Element> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.error("content after document root"));
    }
    Ok(root)
}

/// Maximum element nesting depth — bounds the recursive parser's stack.
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0, depth: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> XmlResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    /// 1-based (line, column) of the current position. Documents in the
    /// MicroCreator schema are small, so the linear scan is cheap even
    /// when called once per element.
    fn position(&self) -> (usize, usize) {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn error(&self, message: impl Into<String>) -> XmlError {
        let (line, col) = self.position();
        XmlError::new(line, col, message)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before the
    /// root element.
    fn skip_prolog(&mut self) -> XmlResult<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            self.skip_pi()?;
        }
        self.skip_misc()
    }

    /// Skips whitespace, comments and processing instructions.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!") {
                return Err(self.error("DTD / CDATA markup is not supported"));
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> XmlResult<()> {
        debug_assert!(self.starts_with("<!--"));
        self.pos += 4;
        while !self.at_end() {
            if self.eat("-->") {
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error("unterminated comment"))
    }

    fn skip_pi(&mut self) -> XmlResult<()> {
        debug_assert!(self.starts_with("<?"));
        self.pos += 2;
        while !self.at_end() {
            if self.eat("?>") {
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error("unterminated processing instruction"))
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => self.pos += 1,
            _ => return Err(self.error("expected a name")),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.pos += 1;
        }
        // Names are validated byte-wise; the slice boundaries are ASCII so
        // the conversion cannot fail for valid UTF-8 input.
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("name is not valid UTF-8"))?
            .to_owned())
    }

    fn parse_element(&mut self) -> XmlResult<Element> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("element nesting exceeds {MAX_DEPTH} levels")));
        }
        let element = self.parse_element_inner();
        self.depth -= 1;
        element
    }

    fn parse_element_inner(&mut self) -> XmlResult<Element> {
        let (line, _) = self.position();
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        element.line = line;
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    self.parse_content(&mut element)?;
                    return Ok(element);
                }
                Some(b) if Self::is_name_start(b) => {
                    let (k, v) = self.parse_attribute()?;
                    if element.attribute(&k).is_some() {
                        return Err(self.error(format!("duplicate attribute `{k}`")));
                    }
                    element.attributes.push((k, v));
                }
                _ => return Err(self.error("expected attribute, `>` or `/>`")),
            }
        }
    }

    fn parse_attribute(&mut self) -> XmlResult<(String, String)> {
        let name = self.parse_name()?;
        self.skip_whitespace();
        self.expect("=")?;
        self.skip_whitespace();
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.bytes[start..self.pos];
                self.pos += 1;
                let raw = std::str::from_utf8(raw)
                    .map_err(|_| self.error("attribute value is not valid UTF-8"))?;
                if raw.contains('<') {
                    return Err(self.error("`<` is not allowed in attribute values"));
                }
                let value = self.decode_entities(raw)?;
                return Ok((name, value));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    fn parse_content(&mut self, element: &mut Element) -> XmlResult<()> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(format!("unclosed element `{}`", element.name))),
                Some(b'<') => {
                    Self::flush_text(&mut text, element);
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != element.name {
                            return Err(self.error(format!(
                                "mismatched closing tag: expected `</{}>`, found `</{close}>`",
                                element.name
                            )));
                        }
                        self.skip_whitespace();
                        self.expect(">")?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else if self.starts_with("<!") {
                        return Err(self.error("DTD / CDATA markup is not supported"));
                    } else {
                        let child = self.parse_element()?;
                        element.children.push(Node::Element(child));
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'<') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("text is not valid UTF-8"))?;
                    text.push_str(&self.decode_entities(raw)?);
                }
            }
        }
    }

    fn flush_text(text: &mut String, element: &mut Element) {
        if !text.is_empty() {
            // Whitespace-only runs between elements are formatting noise;
            // keep anything with visible characters verbatim.
            if !text.trim().is_empty() {
                element.children.push(Node::Text(std::mem::take(text)));
            } else {
                text.clear();
            }
        }
    }

    /// Expands the predefined entities and numeric character references.
    fn decode_entities(&self, raw: &str) -> XmlResult<String> {
        if !raw.contains('&') {
            return Ok(raw.to_owned());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            let after = &rest[amp + 1..];
            let semi =
                after.find(';').ok_or_else(|| self.error("unterminated entity reference"))?;
            let entity = &after[..semi];
            match entity {
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "amp" => out.push('&'),
                "apos" => out.push('\''),
                "quot" => out.push('"'),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let code = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.error("invalid hex character reference"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.error("character reference out of range"))?,
                    );
                }
                _ if entity.starts_with('#') => {
                    let code: u32 = entity[1..]
                        .parse()
                        .map_err(|_| self.error("invalid decimal character reference"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| self.error("character reference out of range"))?,
                    );
                }
                other => {
                    return Err(self.error(format!("unknown entity `&{other};`")));
                }
            }
            rest = &after[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_element() {
        let e = parse_document("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn parses_nested_structure() {
        let e = parse_document("<a><b><c>x</c></b><b/></a>").unwrap();
        assert_eq!(e.elements().count(), 2);
        assert_eq!(e.find("b").unwrap().find("c").unwrap().text(), Some("x"));
    }

    #[test]
    fn parses_attributes() {
        let e = parse_document(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("two & three"));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = parse_document(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn skips_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- hi -->\n<a><!-- inner -->x</a>\n<!-- bye -->";
        let e = parse_document(doc).unwrap();
        assert_eq!(e.text(), Some("x"));
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(err.message.contains("after document root"), "{err}");
    }

    #[test]
    fn rejects_mismatched_close() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_unclosed_element() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(err.message.contains("unclosed"), "{err}");
    }

    #[test]
    fn decodes_entities_in_text() {
        let e = parse_document("<a>&lt;p&gt; &#65;&#x42; &quot;q&quot; &apos;s&apos;</a>").unwrap();
        assert_eq!(e.text(), Some("<p> AB \"q\" 's'"));
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse_document("<a>&nbsp;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn rejects_unterminated_entity() {
        let err = parse_document("<a>&lt</a>").unwrap_err();
        assert!(err.message.contains("unterminated entity"), "{err}");
    }

    #[test]
    fn rejects_dtd() {
        let err = parse_document("<!DOCTYPE a><a/>").unwrap_err();
        assert!(err.message.contains("not supported"), "{err}");
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let e = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn mixed_text_is_preserved() {
        let e = parse_document("<a>x<b/>y</a>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.children[0].as_text(), Some("x"));
        assert_eq!(e.children[2].as_text(), Some("y"));
    }

    #[test]
    fn error_position_is_one_based() {
        let err = parse_document("<a>\n<&/></a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 1);
    }

    #[test]
    fn parses_figure6_fragment() {
        // Verbatim fragment of the paper's Figure 6 (wrapped in a root).
        let doc = r#"
<kernel>
  <instruction>
    <operation>movaps</operation>
    <memory>
      <register> <name>r1</name> </register>
      <offset>0</offset>
    </memory>
    <register>
      <phyName>%xmm</phyName>
      <min>0</min>
      <max>8</max>
    </register>
    <swap_after_unroll/>
  </instruction>
  <unrolling>
    <min>1</min>
    <max>8</max>
  </unrolling>
  <branch_information>
    <label>L6</label>
    <test>jge</test>
  </branch_information>
</kernel>"#;
        let e = parse_document(doc).unwrap();
        let inst = e.find("instruction").unwrap();
        assert_eq!(inst.child_text("operation"), Some("movaps"));
        assert!(inst.has_child("swap_after_unroll"));
        assert_eq!(
            inst.find("memory").unwrap().find("register").unwrap().child_text("name"),
            Some("r1")
        );
        assert_eq!(e.find("unrolling").unwrap().child_i64("max"), Some(8));
        assert_eq!(e.find("branch_information").unwrap().child_text("test"), Some("jge"));
    }

    #[test]
    fn negative_numbers_parse_via_child_i64() {
        let e = parse_document("<i><increment>-1</increment></i>").unwrap();
        assert_eq!(e.child_i64("increment"), Some(-1));
    }

    #[test]
    fn pathological_nesting_is_rejected_not_overflowed() {
        let deep = "<a>".repeat(100_000) + &"</a>".repeat(100_000);
        let err = parse_document(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Reasonable depths still parse.
        let ok = "<a>".repeat(200) + &"</a>".repeat(200);
        parse_document(&ok).unwrap();
    }

    #[test]
    fn elements_carry_their_source_line() {
        let e = parse_document("<a>\n  <b/>\n  <c>\n    <d/>\n  </c>\n</a>").unwrap();
        assert_eq!(e.line, 1);
        assert_eq!(e.find("b").unwrap().line, 2);
        assert_eq!(e.find("c").unwrap().line, 3);
        assert_eq!(e.find("c").unwrap().find("d").unwrap().line, 4);
        // Built elements stay at line 0 and still compare equal to parsed
        // ones: line is provenance, not content.
        let built = Element::new("b");
        assert_eq!(built.line, 0);
        assert_eq!(&built, e.find("b").unwrap());
    }

    #[test]
    fn utf8_text_roundtrips() {
        let e = parse_document("<a>héllo — ∞</a>").unwrap();
        assert_eq!(e.text(), Some("héllo — ∞"));
    }
}
