//! DOM-style tree for parsed XML documents.

use crate::error::XmlResult;
use crate::parser::parse_document;
use crate::writer::write_document;

/// A node in an element's content: either a child element or character data.
///
/// Comments and processing instructions are dropped at parse time; the
/// MicroCreator schema carries no information in them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Decoded character data (entities already expanded).
    Text(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

/// An XML element: name, attributes (in document order), and content.
#[derive(Debug, Clone, Eq, Default)]
pub struct Element {
    /// Tag name, e.g. `instruction`.
    pub name: String,
    /// Attributes in document order as `(name, decoded value)` pairs.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
    /// 1-based source line of the opening tag; 0 for elements built in
    /// code rather than parsed. Carried so schema-level errors can point
    /// at the offending line of the document.
    pub line: usize,
}

/// Equality ignores `line`: a parsed tree equals the programmatically
/// built tree with the same content, which is what round-trip tests and
/// the creator's structural comparisons rely on.
impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.attributes == other.attributes
            && self.children == other.children
    }
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new(), line: 0 }
    }

    /// Creates an element containing a single text node — the common shape
    /// for MicroCreator leaves such as `<min>1</min>`.
    pub fn with_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        let mut e = Element::new(name);
        e.children.push(Node::Text(text.into()));
        e
    }

    /// Parses a complete document and returns its root element.
    pub fn parse(input: &str) -> XmlResult<Element> {
        parse_document(input)
    }

    /// Serializes this element as a document (with XML declaration and
    /// 4-space indentation). Parsing the output yields an equal tree for
    /// trees without mixed element/text content.
    pub fn to_document_string(&self) -> String {
        write_document(self)
    }

    /// Appends a child element, returning `self` for chaining.
    pub fn child(mut self, e: Element) -> Self {
        self.children.push(Node::Element(e));
        self
    }

    /// Appends an attribute, returning `self` for chaining.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Iterates over child *elements* only (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Returns the first child element with the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Returns all child elements with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// True if a child element with the given name exists. MicroCreator uses
    /// empty marker elements such as `<swap_after_unroll/>` as booleans.
    pub fn has_child(&self, name: &str) -> bool {
        self.find(name).is_some()
    }

    /// Concatenated text content of this element (direct text children only),
    /// trimmed. Returns `None` if there is no non-whitespace text.
    pub fn text(&self) -> Option<&str> {
        // The schema only ever has a single text node in leaves; for
        // robustness return the first non-whitespace one.
        self.children.iter().filter_map(Node::as_text).map(str::trim).find(|t| !t.is_empty())
    }

    /// Text content of the first child element with the given name.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.find(name).and_then(Element::text)
    }

    /// Parses the text of a named child as an integer.
    pub fn child_i64(&self, name: &str) -> Option<i64> {
        self.child_text(name).and_then(|t| t.parse().ok())
    }

    /// Total number of elements in this subtree, including `self`.
    pub fn subtree_len(&self) -> usize {
        1 + self.elements().map(Element::subtree_len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("kernel")
            .attr("version", "1")
            .child(Element::with_text("min", "1"))
            .child(Element::with_text("max", "8"))
            .child(Element::new("swap_after_unroll"))
            .child(Element::with_text("min", "2"))
    }

    #[test]
    fn attribute_lookup() {
        let e = sample();
        assert_eq!(e.attribute("version"), Some("1"));
        assert_eq!(e.attribute("missing"), None);
    }

    #[test]
    fn find_returns_first_match() {
        let e = sample();
        assert_eq!(e.find("min").unwrap().text(), Some("1"));
    }

    #[test]
    fn find_all_returns_every_match_in_order() {
        let e = sample();
        let texts: Vec<_> = e.find_all("min").map(|m| m.text().unwrap()).collect();
        assert_eq!(texts, ["1", "2"]);
    }

    #[test]
    fn has_child_marker_semantics() {
        let e = sample();
        assert!(e.has_child("swap_after_unroll"));
        assert!(!e.has_child("swap_before_unroll"));
    }

    #[test]
    fn child_i64_parses_numbers() {
        let e = sample();
        assert_eq!(e.child_i64("max"), Some(8));
        assert_eq!(e.child_i64("swap_after_unroll"), None);
    }

    #[test]
    fn text_trims_whitespace() {
        let e = Element::with_text("x", "  16 \n");
        assert_eq!(e.text(), Some("16"));
    }

    #[test]
    fn text_none_for_empty() {
        assert_eq!(Element::new("x").text(), None);
        assert_eq!(Element::with_text("x", "   ").text(), None);
    }

    #[test]
    fn subtree_len_counts_elements() {
        assert_eq!(sample().subtree_len(), 5);
        assert_eq!(Element::new("leaf").subtree_len(), 1);
    }

    #[test]
    fn node_accessors() {
        let n = Node::Text("hi".into());
        assert_eq!(n.as_text(), Some("hi"));
        assert!(n.as_element().is_none());
        let n = Node::Element(Element::new("e"));
        assert!(n.as_text().is_none());
        assert_eq!(n.as_element().unwrap().name, "e");
    }
}
