//! Adaptive repetition control at figure-suite scale: the μOpTime-style
//! controller must (a) cut the number of timed kernel calls by at least
//! 3x against the paper's fixed stability budget, (b) leave every shape
//! claim intact, and (c) stay bit-deterministic across worker counts and
//! reruns — sampling decisions depend only on the samples, never on the
//! schedule.
//!
//! The adaptive default, the worker count, the evaluation cache, and the
//! metrics registry are process-global, so every test serializes on one
//! lock and restores the configuration it found.

use mc_bench::figures::{run_all, run_many, set_meta_budget, FigureResult};
use mc_launcher::{set_adaptive_default, AdaptiveSampling};
use mc_report::experiments::ExperimentId;
use std::sync::Mutex;

static EXEC_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXEC_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores every piece of process-global state a test here touches.
fn restore_defaults() {
    set_adaptive_default(None);
    set_meta_budget(0);
    mc_launcher::batch::set_cache_enabled(true);
    mc_launcher::batch::clear_cache();
    mc_trace::enable_metrics(false);
    mc_trace::metrics().reset();
}

/// The figures whose shape claims the issue pins under adaptive mode.
const SHAPE_FIGURES: &[ExperimentId] = &[
    ExperimentId::Fig5,
    ExperimentId::Fig13,
    ExperimentId::Fig14,
    ExperimentId::Fig15,
    ExperimentId::Fig16,
    ExperimentId::Fig17,
];

/// Runs the full suite with the cache off and returns the number of
/// timed kernel calls the measurement protocol issued.
fn timed_calls_for_full_suite() -> (u64, Vec<FigureResult>) {
    mc_launcher::batch::clear_cache();
    mc_trace::metrics().reset();
    mc_trace::enable_metrics(true);
    let results = run_all().expect("full suite runs");
    mc_trace::enable_metrics(false);
    let calls =
        mc_trace::metrics().snapshot().counter("launcher.timed_calls").expect("timed calls metric");
    (calls, results)
}

fn assert_identical(a: &FigureResult, b: &FigureResult, what: &str) {
    assert_eq!(a.series.len(), b.series.len(), "{what}: series count");
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.label, sb.label, "{what}: series label");
        assert_eq!(sa.points, sb.points, "{what}: series `{}`", sa.label);
    }
    assert_eq!(a.table, b.table, "{what}: rendered table");
    let verdicts = |r: &FigureResult| r.outcome.checks.iter().map(|c| c.passed).collect::<Vec<_>>();
    assert_eq!(verdicts(a), verdicts(b), "{what}: check verdicts");
}

/// The headline claim: against the paper's full stability budget of 8
/// outer experiments per point, adaptive control (2..8) reproduces the
/// whole figure suite with >= 3x fewer timed kernel calls — the
/// simulated points are quiet, so nearly every point settles at the
/// 2-sample floor. The printed counts are the source for BENCH_pr6.json.
#[test]
fn adaptive_mode_cuts_timed_calls_at_least_3x_over_the_full_suite() {
    let _guard = lock();
    mc_exec::set_jobs(4);
    mc_launcher::batch::set_cache_enabled(false);
    set_meta_budget(8);

    set_adaptive_default(None);
    let (fixed_calls, fixed) = timed_calls_for_full_suite();

    set_adaptive_default(Some(AdaptiveSampling { min_samples: 2, max_samples: 8 }));
    let (adaptive_calls, adaptive) = timed_calls_for_full_suite();

    restore_defaults();

    assert!(fixed_calls > 0 && adaptive_calls > 0, "{fixed_calls} vs {adaptive_calls}");
    let ratio = fixed_calls as f64 / adaptive_calls as f64;
    println!(
        "timed kernel calls: fixed(budget=8) {fixed_calls}, adaptive(2..8) {adaptive_calls}, \
         ratio {ratio:.2}x"
    );
    assert!(ratio >= 3.0, "adaptive saved only {ratio:.2}x ({fixed_calls} -> {adaptive_calls})");

    // Cheaper must not mean different conclusions: every experiment's
    // verdicts match the fixed-budget run's.
    for (a, b) in fixed.iter().zip(&adaptive) {
        let verdicts =
            |r: &FigureResult| r.outcome.checks.iter().map(|c| c.passed).collect::<Vec<_>>();
        assert_eq!(verdicts(a), verdicts(b), "{}: verdicts diverged under adaptive", a.id.key());
    }
}

/// The issue's named figures keep their paper-shape claims under the
/// adaptive default.
#[test]
fn shape_claims_hold_under_adaptive_sampling() {
    let _guard = lock();
    mc_exec::set_jobs(4);
    mc_launcher::batch::clear_cache();
    set_adaptive_default(Some(AdaptiveSampling { min_samples: 2, max_samples: 8 }));
    let results = run_many(SHAPE_FIGURES).expect("figures run");
    restore_defaults();
    for r in &results {
        for check in &r.outcome.checks {
            assert!(
                check.passed,
                "{}: `{}` failed under adaptive sampling",
                r.id.key(),
                check.name
            );
        }
    }
}

/// Adaptive sampling decisions ride on the samples alone, so the worker
/// count cannot change them: `jobs=1` and `jobs=8` produce bit-identical
/// series, and a rerun under the same seed replays exactly.
#[test]
fn adaptive_runs_are_identical_across_jobs_and_reruns() {
    let _guard = lock();
    set_adaptive_default(Some(AdaptiveSampling { min_samples: 2, max_samples: 8 }));
    let run_with_jobs = |jobs: usize| -> Vec<FigureResult> {
        mc_exec::set_jobs(jobs);
        mc_launcher::batch::clear_cache();
        run_many(SHAPE_FIGURES).expect("experiments run")
    };
    let serial = run_with_jobs(1);
    let parallel = run_with_jobs(8);
    let rerun = run_with_jobs(8);
    restore_defaults();
    for (a, b) in serial.iter().zip(&parallel) {
        assert_identical(a, b, a.id.key());
    }
    for (a, b) in parallel.iter().zip(&rerun) {
        assert_identical(a, b, &format!("{} rerun", a.id.key()));
    }
}
