//! Parallel execution must be invisible in the data: for every
//! experiment, the series produced under `jobs=1` and `jobs=8` must be
//! *identical* — same labels, same points, bit for bit. The engine
//! guarantees this by construction (index-ordered collection over a pure
//! simulation); these tests enforce it per figure.
//!
//! The worker count and the caches are process-global, so every test
//! serializes on one lock and restores the configuration it found.

use mc_bench::figures::{run_many, FigureResult};
use mc_report::experiments::ExperimentId;
use std::sync::Mutex;

static EXEC_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXEC_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs a set of experiments under a fixed worker count, with the
/// evaluation cache dropped first so no run feeds the next.
fn run_with_jobs(ids: &[ExperimentId], jobs: usize) -> Vec<FigureResult> {
    mc_exec::set_jobs(jobs);
    mc_launcher::batch::clear_cache();
    run_many(ids).expect("experiments run")
}

fn assert_identical(a: &FigureResult, b: &FigureResult, what: &str) {
    assert_eq!(a.series.len(), b.series.len(), "{what}: series count");
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.label, sb.label, "{what}: series label");
        // Bit-identical, not approximately equal: the engine promises the
        // parallel schedule cannot leak into the arithmetic.
        assert_eq!(sa.points, sb.points, "{what}: series `{}`", sa.label);
    }
    assert_eq!(a.table, b.table, "{what}: rendered table");
    let verdicts = |r: &FigureResult| r.outcome.checks.iter().map(|c| c.passed).collect::<Vec<_>>();
    assert_eq!(verdicts(a), verdicts(b), "{what}: check verdicts");
}

#[test]
fn every_experiment_is_identical_serial_vs_parallel() {
    let _guard = lock();
    let serial = run_with_jobs(&ExperimentId::ALL, 1);
    let parallel = run_with_jobs(&ExperimentId::ALL, 8);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_identical(a, b, a.id.key());
    }
}

#[test]
fn cache_reuse_is_identical_to_cold_evaluation() {
    let _guard = lock();
    mc_exec::set_jobs(4);
    mc_launcher::batch::clear_cache();
    // Cold pass populates the cache; the warm pass must replay it exactly.
    let cold = run_many(&[ExperimentId::Fig11, ExperimentId::Fig13]).expect("cold run");
    let (_, misses_cold) = mc_launcher::batch::cache_stats();
    assert!(misses_cold > 0, "cold pass must populate the cache");
    let warm = run_many(&[ExperimentId::Fig11, ExperimentId::Fig13]).expect("warm run");
    let (hits_warm, _) = mc_launcher::batch::cache_stats();
    assert!(hits_warm > 0, "warm pass must hit the cache");
    for (a, b) in cold.iter().zip(&warm) {
        assert_identical(a, b, a.id.key());
    }
    // And a cache-off pass agrees with both.
    mc_launcher::batch::set_cache_enabled(false);
    let uncached = run_many(&[ExperimentId::Fig11, ExperimentId::Fig13]).expect("uncached run");
    mc_launcher::batch::set_cache_enabled(true);
    for (a, b) in cold.iter().zip(&uncached) {
        assert_identical(a, b, a.id.key());
    }
}

#[test]
fn exec_metrics_cover_a_full_figure_run() {
    let _guard = lock();
    mc_exec::set_jobs(4);
    mc_launcher::batch::clear_cache();
    mc_trace::metrics().reset();
    mc_trace::enable_metrics(true);
    let result = run_many(&[ExperimentId::Fig14]).expect("figure runs");
    mc_trace::enable_metrics(false);
    assert_eq!(result.len(), 1);
    let snapshot = mc_trace::metrics().snapshot();
    assert!(
        snapshot.counter("exec.cache.miss").unwrap_or(0) > 0,
        "figure evaluations must be counted"
    );
    assert!(snapshot.counter("exec.batch.count").unwrap_or(0) > 0, "batches must be counted");
    assert!(snapshot.counter("exec.batch.points").unwrap_or(0) >= 12, "one point per core count");
    let utilization = snapshot.gauge("exec.pool.utilization").expect("utilization gauge");
    assert!((0.0..=1.0).contains(&utilization), "utilization {utilization} out of range");
    assert!(snapshot.gauge("exec.pool.workers").is_some(), "worker gauge");
}
