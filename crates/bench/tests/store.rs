//! The persistent evaluation store at figure-suite scale: a warm second
//! process must reproduce experiments with near-zero simulator work and
//! unchanged shape verdicts, a store written under `jobs=8` must warm a
//! `jobs=1` run bit-identically, concurrent handles over one directory
//! must never tear records, a real second process (the `reproduce`
//! binary, run twice with `--store`) must hit the disk tier, and a
//! damaged store must degrade to recomputation — never fail a sweep.
//!
//! The evaluation cache, generation cache, worker count, installed store,
//! and metrics registry are process-global, so every test serializes on
//! one lock and restores the configuration it found.

use mc_bench::figures::{run_many, FigureResult};
use mc_report::experiments::ExperimentId;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static EXEC_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXEC_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores every piece of process-global state a test here touches.
fn restore_defaults() {
    mc_launcher::store::clear_store();
    mc_launcher::batch::set_cache_enabled(true);
    mc_launcher::batch::clear_cache();
    mc_launcher::sweeps::clear_generation_cache();
    mc_trace::enable_metrics(false);
    mc_trace::metrics().reset();
}

/// A fresh store directory per test (removed first, so reruns start
/// cold).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mc_bench_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

/// Empties both in-memory memo tiers — the next sweep sees exactly what
/// a freshly started process sharing the store directory would see.
fn simulate_fresh_process() {
    mc_launcher::batch::clear_cache();
    mc_launcher::sweeps::clear_generation_cache();
}

/// Simulator evaluations the measurement protocol actually ran (one per
/// measured point; warm store hits never reach it).
fn measurements() -> u64 {
    mc_trace::metrics().snapshot().counter("launcher.measurements").unwrap_or(0)
}

fn run_counted(figures: &[ExperimentId]) -> (u64, Vec<FigureResult>) {
    mc_trace::metrics().reset();
    mc_trace::enable_metrics(true);
    let results = run_many(figures).expect("figures run");
    mc_trace::enable_metrics(false);
    (measurements(), results)
}

fn assert_identical(a: &FigureResult, b: &FigureResult, what: &str) {
    assert_eq!(a.series.len(), b.series.len(), "{what}: series count");
    for (sa, sb) in a.series.iter().zip(&b.series) {
        assert_eq!(sa.label, sb.label, "{what}: series label");
        assert_eq!(sa.points, sb.points, "{what}: series `{}`", sa.label);
    }
    let verdicts = |r: &FigureResult| r.outcome.checks.iter().map(|c| c.passed).collect::<Vec<_>>();
    assert_eq!(verdicts(a), verdicts(b), "{what}: check verdicts");
}

/// The figures the store tests sweep: cheap, but covering generation,
/// core sweeps, and frequency sweeps.
const FIGURES: &[ExperimentId] = &[ExperimentId::Fig11, ExperimentId::Fig13, ExperimentId::Fig14];

/// Every record file under a store directory's data tree.
fn record_files(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "rec") {
                out.push(path);
            }
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

/// The headline claim: a second process sharing the store directory
/// reproduces the figures from disk with at least 5x fewer simulator
/// evaluations — in practice zero, since every point and every generated
/// program set replays from the persistent tier. The printed counts are
/// the source for BENCH_pr8.json.
#[test]
fn warm_process_runs_at_least_5x_fewer_simulator_evaluations() {
    let _guard = lock();
    mc_exec::set_jobs(4);
    let dir = fresh_dir("warm");
    let store = mc_launcher::store::install_store(&dir);

    simulate_fresh_process();
    let (cold_evals, cold) = run_counted(FIGURES);

    simulate_fresh_process();
    let (warm_evals, warm) = run_counted(FIGURES);
    let counters = store.counters();
    restore_defaults();

    println!(
        "simulator evaluations: cold {cold_evals}, warm {warm_evals}; \
         store hit_disk={} miss={} saved={}",
        counters.hit_disk, counters.miss, counters.saved
    );
    assert!(cold_evals > 0, "cold run must evaluate");
    assert!(
        (warm_evals as f64) <= cold_evals as f64 / 5.0,
        "warm process saved less than 5x ({cold_evals} -> {warm_evals})"
    );
    assert!(counters.hit_disk > 0, "warm run never touched the disk tier");
    assert_eq!(counters.skipped_corrupt, 0, "healthy store reported corruption");
    for (a, b) in cold.iter().zip(&warm) {
        assert_identical(a, b, a.id.key());
    }
}

/// A store written by a `jobs=8` run warms a `jobs=1` run to zero
/// simulator evaluations, and the two produce bit-identical series —
/// persistence must not loosen the engine's scheduling-independence
/// guarantee.
#[test]
fn store_written_under_jobs_8_warms_jobs_1_bit_identically() {
    let _guard = lock();
    let dir = fresh_dir("jobs");
    mc_launcher::store::install_store(&dir);

    mc_exec::set_jobs(8);
    simulate_fresh_process();
    let (cold_evals, parallel) = run_counted(FIGURES);

    mc_exec::set_jobs(1);
    simulate_fresh_process();
    let (warm_evals, serial) = run_counted(FIGURES);
    restore_defaults();

    assert!(cold_evals > 0, "cold jobs=8 run must evaluate");
    assert_eq!(warm_evals, 0, "jobs=1 run recomputed {warm_evals} points a jobs=8 run persisted");
    for (a, b) in parallel.iter().zip(&serial) {
        assert_identical(a, b, a.id.key());
    }
}

/// Two handles over one directory — the in-process stand-in for two
/// concurrent processes. Writers save while readers load the same keys;
/// every successful load returns the exact payload (atomic rename means
/// a reader sees a complete record or nothing).
#[test]
fn concurrent_handles_over_one_directory_never_tear_records() {
    let dir = fresh_dir("threads");
    let schema = mc_launcher::store::schema_fingerprint();
    let calib = mc_launcher::store::calib_fingerprint();
    let payload = |i: usize| format!("payload line {i}\nsecond line {i}\n").repeat(20);

    let writer_dir = dir.clone();
    let writer = std::thread::spawn(move || {
        let store = mc_store::DiskStore::open(&writer_dir, schema, calib);
        for i in 0..200 {
            store.save("eval", &format!("{i:016x}"), &payload(i));
        }
    });
    let reader_dir = dir.clone();
    let reader = std::thread::spawn(move || {
        let store = mc_store::DiskStore::open(&reader_dir, schema, calib);
        let mut hits = 0u32;
        for round in 0..20 {
            for i in 0..200 {
                if let Some(seen) = store.load("eval", &format!("{i:016x}")) {
                    assert_eq!(seen, payload(i), "torn read of record {i} (round {round})");
                    hits += 1;
                }
            }
        }
        (hits, store.counters().skipped_corrupt)
    });
    writer.join().expect("writer thread");
    let (_racing_hits, corrupt) = reader.join().expect("reader thread");
    assert_eq!(corrupt, 0, "concurrent writes produced a corrupt read");
    // With the writer done, a third handle must see every record whole.
    let store = mc_store::DiskStore::open(&dir, schema, calib);
    for i in 0..200 {
        let seen = store.load("eval", &format!("{i:016x}"));
        assert_eq!(seen.as_deref(), Some(payload(i).as_str()), "record {i} lost or torn");
    }
}

/// The cross-process acceptance check, with real processes: running the
/// `reproduce` binary twice against one `--store` directory must make
/// the second process serve at least 90% of its lookups from disk and
/// persist nothing new.
#[test]
fn second_reproduce_process_runs_warm_from_the_shared_store() {
    let dir = fresh_dir("procs");
    let exe = env!("CARGO_BIN_EXE_reproduce");
    let run = || {
        std::process::Command::new(exe)
            .args(["--exp", "fig13", "--summary", "--quiet"])
            .arg(format!("--store={}", dir.display()))
            .output()
            .expect("spawn reproduce")
    };

    let first = run();
    assert!(first.status.success(), "cold run failed: {}", String::from_utf8_lossy(&first.stderr));
    let after_first = mc_store::ledger_totals(&dir);
    assert_eq!(after_first.processes, 1, "cold process did not ledger");
    assert!(after_first.counters.saved > 0, "cold process persisted nothing");
    assert_eq!(after_first.counters.hit_disk, 0, "cold process claimed disk hits");

    let second = run();
    assert!(
        second.status.success(),
        "warm run failed: {}",
        String::from_utf8_lossy(&second.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "warm process printed a different document"
    );
    let after_second = mc_store::ledger_totals(&dir);
    assert_eq!(after_second.processes, 2, "warm process did not ledger");
    let warm_hits = after_second.counters.hit_disk - after_first.counters.hit_disk;
    let warm_misses = after_second.counters.miss - after_first.counters.miss;
    assert!(warm_hits > 0, "warm process never hit the disk tier");
    assert!(
        warm_hits >= 9 * warm_misses,
        "warm process hit rate under 90%: {warm_hits} hits, {warm_misses} misses"
    );
    assert_eq!(
        after_second.counters.saved, after_first.counters.saved,
        "warm process recomputed and re-persisted records"
    );
}

/// The degradation guarantee: truncated records, garbage bytes, and
/// future format versions are each skipped and counted — the sweep
/// recomputes those points and its results never change.
#[test]
fn damaged_records_degrade_to_recomputation_never_failure() {
    let _guard = lock();
    mc_exec::set_jobs(4);
    let dir = fresh_dir("damage");
    mc_launcher::store::install_store(&dir);

    simulate_fresh_process();
    let (cold_evals, cold) = run_counted(&[ExperimentId::Fig13]);
    let records = record_files(&dir);
    assert!(records.len() >= 3, "expected at least 3 records, found {}", records.len());

    // Three distinct failure modes across three real records.
    let bytes = std::fs::read(&records[0]).expect("read record");
    std::fs::write(&records[0], &bytes[..bytes.len() / 2]).expect("truncate record");
    std::fs::write(&records[1], b"not a record at all\n").expect("garbage record");
    let future = String::from_utf8_lossy(&std::fs::read(&records[2]).expect("read record"))
        .replacen("microtools-store 1 ", "microtools-store 99 ", 1);
    std::fs::write(&records[2], future).expect("future-version record");

    // A fresh handle, as a new process would open: damaged entries are
    // misses, the rest still hit, and the figure's shape is unchanged.
    let store = mc_launcher::store::install_store(&dir);
    simulate_fresh_process();
    let (damaged_evals, damaged) = run_counted(&[ExperimentId::Fig13]);
    let counters = store.counters();
    restore_defaults();

    assert!(counters.skipped_corrupt >= 2, "corrupt records not counted: {counters:?}");
    assert!(counters.stale >= 1, "future-version record not counted stale: {counters:?}");
    assert!(counters.hit_disk > 0, "undamaged records stopped hitting");
    assert!(
        damaged_evals > 0 && damaged_evals < cold_evals,
        "expected partial recomputation, got {damaged_evals} of {cold_evals}"
    );
    for (a, b) in cold.iter().zip(&damaged) {
        assert_identical(a, b, a.id.key());
    }
}
