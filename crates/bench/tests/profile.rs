//! Profiling is observation only. With `mc-scope` collection enabled,
//! the measured numbers, the rendered CSV documents, and the memo/store
//! keys must be byte-identical to a profile-off run — under any worker
//! count — and the profile files themselves must not depend on the
//! parallel schedule.
//!
//! The worker count, the evaluation caches, the store slot, and the
//! profiler slot are all process-global, so every test serializes on one
//! lock and clears what it installed.

use mc_bench::figures::{run_many, FigureResult};
use mc_launcher::profile::{clear_profiler, install_profiler};
use mc_report::experiments::ExperimentId;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static EXEC_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXEC_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The profiled determinism subset: one port-bound sweep and one
/// memory-bound sweep, so profiles cover both verdict families.
const FIGS: &[ExperimentId] = &[ExperimentId::Fig13, ExperimentId::Fig14];

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mc-bench-profile-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the subset cold under `jobs` workers, optionally with a profiler
/// installed for the duration.
fn run_figs(jobs: usize, profile_dir: Option<&Path>) -> Vec<FigureResult> {
    mc_exec::set_jobs(jobs);
    mc_launcher::batch::clear_cache();
    clear_profiler();
    let profiler = profile_dir.map(|dir| install_profiler(dir).expect("profiler installs"));
    let results = run_many(FIGS).expect("experiments run");
    clear_profiler();
    if let Some(p) = profiler {
        p.finish(None);
    }
    results
}

/// The CSV body `reproduce --csv-dir` writes for one experiment (minus
/// the provenance header, which carries wall-clock fields by design).
fn csv_of(r: &FigureResult) -> String {
    let mut csv = mc_report::CsvWriter::new(vec!["series", "x", "y"]);
    for s in &r.series {
        for (x, y) in &s.points {
            csv.row(&[s.label.clone(), x.to_string(), y.to_string()]);
        }
    }
    csv.finish()
}

/// Sorted relative file paths under `dir`, skipping `skip`-named
/// components (e.g. the store ledger, whose counters legitimately move).
fn file_names(dir: &Path, skip: &[&str]) -> Vec<String> {
    fn walk(root: &Path, dir: &Path, skip: &[&str], out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if skip.contains(&name.as_str()) {
                continue;
            }
            if path.is_dir() {
                walk(root, &path, skip, out);
            } else {
                out.push(path.strip_prefix(root).unwrap().to_string_lossy().into_owned());
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, skip, &mut out);
    out.sort();
    out
}

#[test]
fn profiling_is_invisible_in_results_and_documents() {
    let _guard = lock();
    let dir = scratch("invisible");
    let baseline = run_figs(1, None);
    let profiled = run_figs(1, Some(&dir));
    // The collection really happened…
    let files = file_names(&dir, &[]);
    assert!(files.iter().any(|f| f.ends_with(".jsonl") && f != "index.jsonl"), "{files:?}");
    assert!(files.iter().any(|f| f == "index.jsonl"), "{files:?}");
    // …and every observable output is bit-for-bit the profile-off run.
    for (a, b) in baseline.iter().zip(&profiled) {
        assert_eq!(a.series.len(), b.series.len(), "{}: series count", a.id.key());
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.label, sb.label, "{}: series label", a.id.key());
            assert_eq!(sa.points, sb.points, "{}: series `{}`", a.id.key(), sa.label);
        }
        assert_eq!(a.table, b.table, "{}: rendered table", a.id.key());
        assert_eq!(csv_of(a), csv_of(b), "{}: CSV document", a.id.key());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_files_are_identical_across_worker_counts() {
    let _guard = lock();
    let (dir1, dir8) = (scratch("jobs1"), scratch("jobs8"));
    run_figs(1, Some(&dir1));
    run_figs(8, Some(&dir8));
    let names = file_names(&dir1, &[]);
    assert_eq!(names, file_names(&dir8, &[]), "profile file sets differ");
    for name in &names {
        let a = std::fs::read(dir1.join(name)).expect("jobs=1 profile readable");
        let b = std::fs::read(dir8.join(name)).expect("jobs=8 profile readable");
        assert_eq!(a, b, "{name}: bytes differ between jobs=1 and jobs=8");
        // Each profile must also be a valid, current-version document.
        if name != "index.jsonl" {
            let text = String::from_utf8(a).expect("profile is UTF-8");
            mc_scope::jsonl::validate(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
}

#[test]
fn store_keys_do_not_depend_on_profiling() {
    let _guard = lock();
    let (store_off, store_on, profiles) =
        (scratch("store-off"), scratch("store-on"), scratch("store-profiles"));
    // Same evaluations, one store cold-filled with profiling off and one
    // with profiling on: the persisted keys (file names) must match, or
    // profiling has leaked into the fingerprint.
    mc_exec::set_jobs(2);
    clear_profiler();
    mc_launcher::store::install_store(&store_off);
    mc_launcher::batch::clear_cache();
    run_many(FIGS).expect("profile-off run");
    mc_launcher::store::clear_store();

    let profiler = install_profiler(&profiles).expect("profiler installs");
    mc_launcher::store::install_store(&store_on);
    mc_launcher::batch::clear_cache();
    run_many(FIGS).expect("profile-on run");
    mc_launcher::store::clear_store();
    clear_profiler();
    assert!(!profiler.is_empty(), "profiled run collected nothing");

    let skip = ["ledger"];
    let off = file_names(&store_off, &skip);
    assert!(!off.is_empty(), "store stayed empty");
    assert_eq!(off, file_names(&store_on, &skip), "store keys differ under profiling");
    for dir in [&store_off, &store_on, &profiles] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
