//! Criterion bench for adaptive repetition control: the full figure
//! suite under the paper's fixed stability budget (8 outer experiments
//! per point) versus the μOpTime-style adaptive controller (2..8).
//! The evaluation cache is cleared per iteration so every point is
//! measured live — the speedup is the controller's, not the cache's.
//!
//! `cargo bench -p mc-bench --bench adaptive` regenerates the numbers
//! behind BENCH_pr6.json.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_bench::figures::{run_all, set_meta_budget};
use mc_launcher::{set_adaptive_default, AdaptiveSampling};
use std::hint::black_box;
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5))
        .configure_from_args()
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive");
    group.sample_size(10);

    group.bench_function("full_suite_fixed_budget8", |b| {
        set_meta_budget(8);
        set_adaptive_default(None);
        b.iter(|| {
            mc_launcher::batch::clear_cache();
            black_box(run_all().unwrap())
        });
    });

    group.bench_function("full_suite_adaptive_2to8", |b| {
        set_meta_budget(8);
        set_adaptive_default(Some(AdaptiveSampling { min_samples: 2, max_samples: 8 }));
        b.iter(|| {
            mc_launcher::batch::clear_cache();
            black_box(run_all().unwrap())
        });
        set_adaptive_default(None);
        set_meta_budget(0);
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_adaptive
}
criterion_main!(benches);
