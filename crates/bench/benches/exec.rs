//! Criterion benches for the mc-exec evaluation engine: the same
//! unroll-by-level sweep (4 levels × 8 unroll factors = 32 points)
//! evaluated serially, fanned across the pool, and replayed from the
//! memoization cache. The serial-vs-parallel ratio is the engine's
//! speedup; the cached row is the memoization floor.
//!
//! The worker count and the cache are process-global, so each variant
//! pins them explicitly around its measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::batch::{clear_cache, set_cache_enabled};
use mc_launcher::sweeps::unroll_by_level_sweep;
use mc_launcher::LauncherOptions;
use mc_simarch::config::Level;
use std::hint::black_box;

fn sweep_options() -> LauncherOptions {
    let mut o = LauncherOptions::default();
    o.repetitions = 16;
    o.meta_repetitions = 8;
    o.verify = false;
    o
}

fn run_sweep() -> Vec<mc_report::series::Series> {
    let desc = load_stream(Mnemonic::Movaps, 1, 8);
    unroll_by_level_sweep(&sweep_options(), &desc, &Level::ALL, false).expect("sweep runs")
}

fn bench_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec");
    group.sample_size(10);

    group.bench_function("sweep32_serial", |b| {
        set_cache_enabled(false);
        mc_exec::set_jobs(1);
        b.iter(|| black_box(run_sweep()));
        set_cache_enabled(true);
    });

    group.bench_function("sweep32_parallel_nocache", |b| {
        set_cache_enabled(false);
        mc_exec::set_jobs(std::thread::available_parallelism().map_or(4, usize::from));
        b.iter(|| black_box(run_sweep()));
        set_cache_enabled(true);
    });

    group.bench_function("sweep32_parallel_cached", |b| {
        set_cache_enabled(true);
        clear_cache();
        mc_exec::set_jobs(std::thread::available_parallelism().map_or(4, usize::from));
        run_sweep(); // populate
        b.iter(|| black_box(run_sweep()));
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_exec
}
criterion_main!(benches);
