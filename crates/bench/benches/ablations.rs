//! Ablation benches: knock one design choice out of the model or the
//! pipeline and time the resulting study, asserting the qualitative effect
//! the choice exists to produce. Each ablation corresponds to a design
//! decision called out in DESIGN.md.
//!
//! * `dedup_pass` — without deduplication, combining the pre- and
//!   post-unroll operand swaps double-counts the shared patterns.
//! * `loop_control_overhead` — without the serial loop-control term the
//!   matmul unroll gain (Figure 5's 9%) collapses to ~0.
//! * `placement_policy` — compact placement saturates one socket's memory
//!   controller long before round-robin does (Figure 14's premise).
//! * `aggregation_policy` — min-aggregation recovers the true cost under
//!   injected noise; mean does not (the §4.7 stability protocol).
//! * `miss_parallelism` — without line-fill-buffer overlap, strided RAM
//!   access costs explode (the prefetch/MLP model).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use mc_asm::inst::Mnemonic;
use mc_creator::MicroCreator;
use mc_kernel::builder::{figure6, load_stream};
use mc_launcher::{Aggregation, KernelInput, LauncherOptions, MicroLauncher};
use mc_simarch::config::{Level, MachineConfig};
use mc_simarch::exec::{estimate, ExecEnv, Workload};
use std::hint::black_box;

fn ablate_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    // Mark both swap kinds so the expansion overlaps.
    let mut desc = figure6();
    desc.instructions[0].swap_before_unroll = true;

    group.bench_function("with_dedup", |b| {
        let creator = MicroCreator::new();
        b.iter(|| {
            let r = creator.generate(black_box(&desc)).unwrap();
            assert_eq!(r.programs.len(), 510, "dedup collapses the doubled patterns");
            black_box(r)
        });
    });
    group.bench_function("without_dedup", |b| {
        let mut creator = MicroCreator::new();
        creator.pass_manager().set_gate("dedup", |_| false).unwrap();
        b.iter(|| {
            let r = creator.generate(black_box(&desc)).unwrap();
            assert_eq!(r.programs.len(), 1020, "2× duplicates without the pass");
            black_box(r)
        });
    });
    group.finish();
}

fn ablate_loop_control(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_loop_control");
    group.sample_size(10);
    let programs =
        mc_launcher::sweeps::programs_by_unroll(&mc_kernel::builder::matmul_inner(200)).unwrap();
    let gain = |machine: MachineConfig| -> f64 {
        let env = ExecEnv::single_core(machine);
        let w = Workload::resident_at(&env.machine, Level::L2);
        let per_el = |p: &mc_kernel::Program| {
            estimate(p, &w, &env).cycles_per_iteration / p.elements_per_iteration as f64
        };
        let u1 = per_el(&programs[0]);
        let u8 = per_el(&programs[7]);
        (u1 - u8) / u1
    };

    group.bench_function("with_loop_control_term", |b| {
        b.iter(|| {
            let g = gain(MachineConfig::nehalem_x5650_dual());
            assert!(g > 0.05, "matmul unroll gain present: {g}");
            black_box(g)
        });
    });
    group.bench_function("without_loop_control_term", |b| {
        b.iter(|| {
            let mut machine = MachineConfig::nehalem_x5650_dual();
            machine.loop_control_overhead_cycles = 0.0;
            let g = gain(machine);
            assert!(g.abs() < 0.02, "gain collapses without the term: {g}");
            black_box(g)
        });
    });
    group.finish();
}

fn ablate_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_placement");
    group.sample_size(10);
    let program = MicroCreator::new()
        .generate(&load_stream(Mnemonic::Movaps, 8, 8))
        .unwrap()
        .programs
        .remove(0);
    let knee = |placement| -> f64 {
        use mc_report::experiments::knee_x;
        let mut opts = LauncherOptions::default();
        opts.residence = Some(Level::Ram);
        opts.placement = placement;
        opts.verify = false;
        opts.repetitions = 2;
        opts.meta_repetitions = 2;
        let series = mc_launcher::sweeps::core_sweep(&opts, &program, 12).unwrap();
        knee_x(&series, 1.1).unwrap_or(f64::INFINITY)
    };

    group.bench_function("round_robin_knee", |b| {
        b.iter(|| {
            let k = knee(mc_simarch::exec::EnvPlacement::RoundRobinSockets);
            assert!((6.0..=8.0).contains(&k), "round-robin knee at {k}");
            black_box(k)
        });
    });
    group.bench_function("compact_knee", |b| {
        b.iter(|| {
            let k = knee(mc_simarch::exec::EnvPlacement::FillFirstSocket);
            assert!(k <= 5.0, "compact placement saturates one socket early: {k}");
            black_box(k)
        });
    });
    group.finish();
}

fn ablate_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_aggregation");
    group.sample_size(10);
    let program = MicroCreator::new()
        .generate(&load_stream(Mnemonic::Movaps, 8, 8))
        .unwrap()
        .programs
        .remove(0);
    let measured = |aggregation| -> f64 {
        let mut opts = LauncherOptions::default();
        opts.noise_amplitude = 0.4;
        opts.meta_repetitions = 16;
        opts.aggregation = aggregation;
        opts.verify = false;
        MicroLauncher::new(opts)
            .run(&KernelInput::program(program.clone()))
            .unwrap()
            .cycles_per_iteration
    };
    let truth = {
        let mut opts = LauncherOptions::default();
        opts.verify = false;
        MicroLauncher::new(opts)
            .run(&KernelInput::program(program.clone()))
            .unwrap()
            .cycles_per_iteration
    };

    group.bench_function("min_under_noise", |b| {
        b.iter(|| {
            let v = measured(Aggregation::Min);
            assert!((v - truth).abs() / truth < 0.05, "min recovers truth: {v} vs {truth}");
            black_box(v)
        });
    });
    group.bench_function("mean_under_noise", |b| {
        b.iter(|| {
            let mean = measured(Aggregation::Mean);
            let min = measured(Aggregation::Min);
            assert!(mean > min, "the mean sits above the min under noise: {mean} vs {min}");
            assert!(mean >= truth, "noise never deflates: {mean} vs {truth}");
            black_box(mean)
        });
    });
    group.finish();
}

fn ablate_miss_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_miss_parallelism");
    group.sample_size(10);
    let program = MicroCreator::new()
        .generate(&mc_kernel::builder::strided_stream(Mnemonic::Movss, &[1024]))
        .unwrap()
        .programs
        .remove(0);
    let cost = |lfb: f64| -> f64 {
        let mut machine = MachineConfig::nehalem_x5650_dual();
        machine.line_fill_buffers = lfb;
        let env = ExecEnv::single_core(machine);
        let w = Workload::resident_at(&env.machine, Level::Ram);
        estimate(&program, &w, &env).cycles_per_iteration
    };

    group.bench_function("with_mlp_overlap", |b| {
        b.iter(|| black_box(cost(10.0)));
    });
    group.bench_function("without_mlp_overlap", |b| {
        b.iter(|| {
            let serial = cost(1.0);
            let overlapped = cost(10.0);
            assert!(serial > overlapped * 4.0, "MLP must matter: {serial} vs {overlapped}");
            black_box(serial)
        });
    });
    group.finish();
}

fn noop_config(c: &mut Criterion) {
    // Keep criterion happy if filters exclude everything else.
    let _ = c;
}

criterion_group! {
    name = benches;
    config = quick();
    targets = ablate_dedup,
    ablate_loop_control,
    ablate_placement,
    ablate_aggregation,
    ablate_miss_parallelism,
    noop_config
}
criterion_main!(benches);
