//! Criterion benches regenerating the sequential-execution experiments:
//! Figures 3, 4, 5 (the §2 matmul motivation) and 11, 12, 13 (§5.1).
//! Each bench iteration rebuilds the figure end-to-end — workload
//! generation, launcher runs, shape checks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_sequential");
    group.sample_size(10);

    group.bench_function("fig03_matmul_sizes", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig03::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig04_matmul_alignment", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig04::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig05_matmul_unroll", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig05::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig11_movaps_unroll", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig11::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig12_movss_unroll", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig12::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig13_frequency", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig13::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("counts_generation", |b| {
        b.iter(|| {
            let r = mc_bench::figures::counts::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_figures
}
criterion_main!(benches);
