//! Criterion benches for the simulated micro-architecture: the analytic
//! timing estimate and the functional interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use mc_asm::inst::Mnemonic;
use mc_asm::reg::GprName;
use mc_creator::MicroCreator;
use mc_kernel::builder::load_stream;
use mc_kernel::Program;
use mc_simarch::config::{Level, MachineConfig};
use mc_simarch::exec::{estimate, ExecEnv, Workload};
use mc_simarch::interp::Interpreter;
use std::hint::black_box;

fn movaps8() -> Program {
    MicroCreator::new().generate(&load_stream(Mnemonic::Movaps, 8, 8)).unwrap().programs.remove(0)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(30);

    group.bench_function("estimate_single_core", |b| {
        let p = movaps8();
        let env = ExecEnv::single_core(MachineConfig::nehalem_x5650_dual());
        let w = Workload::resident_at(&env.machine, Level::L3);
        b.iter(|| black_box(estimate(black_box(&p), &w, &env)));
    });

    group.bench_function("estimate_forked_12_cores", |b| {
        let p = movaps8();
        let env = ExecEnv::forked(MachineConfig::nehalem_x5650_dual(), 12);
        let w = Workload::resident_at(&env.machine, Level::Ram);
        b.iter(|| black_box(estimate(black_box(&p), &w, &env)));
    });

    group.bench_function("recurrence_analysis", |b| {
        let p = movaps8();
        let insts: Vec<&mc_asm::Inst> = p.instructions().collect();
        b.iter(|| black_box(mc_simarch::deps::recurrence_bound(black_box(&insts))));
    });

    group.bench_function("interpreter_4096_iterations", |b| {
        let p = movaps8();
        b.iter(|| {
            let mut interp = Interpreter::new();
            interp.set_gpr(GprName::Rdi, 4096 * 32 - 32);
            interp.set_gpr(GprName::Rsi, 0x10_0000);
            black_box(interp.run(&p, 10_000_000))
        });
    });

    group.bench_function("alignment_effect_8_arrays", |b| {
        use mc_simarch::align::{alignment_effect, ArrayPlacement};
        let machine = MachineConfig::nehalem_x7550_quad();
        let arrays: Vec<ArrayPlacement> = (0..8)
            .map(|i| ArrayPlacement { offset: i * 512, stored: false, access_bytes: 4 })
            .collect();
        b.iter(|| black_box(alignment_effect(&machine, black_box(&arrays))));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_simulator
}
criterion_main!(benches);
