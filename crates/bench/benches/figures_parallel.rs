//! Criterion benches regenerating the parallel-execution experiments:
//! Figure 14 (fork saturation), Figures 15/16 (alignment under
//! multi-core load) and Figures 17/18 + Table 2 (OpenMP).
//!
//! The two alignment studies run reduced configuration samples per bench
//! iteration (the full "upwards of 2500" sweeps run in `reproduce` and in
//! the test suite); all other figures run at full size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use mc_asm::inst::Mnemonic;
use mc_creator::MicroCreator;
use mc_kernel::builder::multi_array_traversal;
use mc_launcher::options::{MachinePreset, Mode};
use mc_launcher::sweeps::alignment_sweep_sampled;
use mc_simarch::config::Level;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_parallel");
    group.sample_size(10);

    group.bench_function("fig14_fork_saturation", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig14::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig15_alignment_8core_sampled200", |b| {
        let program = MicroCreator::new()
            .generate(&multi_array_traversal(Mnemonic::Movss, 8))
            .unwrap()
            .programs
            .remove(0);
        let mut opts = mc_bench::figures::quick_options();
        opts.machine = MachinePreset::NehalemX7550;
        opts.mode = Mode::Fork;
        opts.cores = 8;
        opts.residence = Some(Level::Ram);
        b.iter(|| {
            black_box(alignment_sweep_sampled(&opts, &program, 512, 3584, 200, 0x15).unwrap())
        });
    });

    group.bench_function("fig16_alignment_32core_sampled200", |b| {
        let program = MicroCreator::new()
            .generate(&multi_array_traversal(Mnemonic::Movss, 4))
            .unwrap()
            .programs
            .remove(0);
        let mut opts = mc_bench::figures::quick_options();
        opts.machine = MachinePreset::NehalemX7550;
        opts.mode = Mode::Fork;
        opts.cores = 32;
        opts.residence = Some(Level::Ram);
        b.iter(|| {
            black_box(alignment_sweep_sampled(&opts, &program, 512, 3584, 200, 0x16).unwrap())
        });
    });

    group.bench_function("fig17_openmp_small", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig17::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("fig18_openmp_large", |b| {
        b.iter(|| {
            let r = mc_bench::figures::fig18::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.bench_function("table2_openmp_times", |b| {
        b.iter(|| {
            let r = mc_bench::figures::table2::run().unwrap();
            assert!(r.outcome.passed());
            black_box(r)
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_figures
}
criterion_main!(benches);
