//! Criterion benches for MicroCreator: the §3 generation pipeline.
//!
//! `figure6_510_variants` times the paper's headline workload — one XML
//! description expanding to 510 benchmark programs through all nineteen
//! passes; `four_mnemonic_2040` the >2000-program study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use mc_asm::inst::Mnemonic;
use mc_creator::MicroCreator;
use mc_kernel::builder::figure6;
use mc_kernel::{OperationDesc, UnrollRange};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(20);

    group.bench_function("figure6_510_variants", |b| {
        let creator = MicroCreator::new();
        let desc = figure6();
        b.iter(|| {
            let result = creator.generate(black_box(&desc)).unwrap();
            assert_eq!(result.programs.len(), 510);
            black_box(result)
        });
    });

    group.bench_function("four_mnemonic_2040", |b| {
        let creator = MicroCreator::new();
        let mut desc = figure6();
        desc.instructions[0].operation = OperationDesc::Choice(vec![
            Mnemonic::Movss,
            Mnemonic::Movsd,
            Mnemonic::Movaps,
            Mnemonic::Movapd,
        ]);
        b.iter(|| black_box(creator.generate(black_box(&desc)).unwrap()));
    });

    group.bench_function("single_program_unroll8", |b| {
        let creator = MicroCreator::new();
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(8);
        desc.instructions[0].swap_after_unroll = false;
        b.iter(|| black_box(creator.generate(black_box(&desc)).unwrap()));
    });

    group.bench_function("xml_parse_kernel", |b| {
        let xml = mc_kernel::xml::kernel_to_xml(&figure6());
        b.iter(|| black_box(mc_kernel::xml::parse_kernel(black_box(&xml)).unwrap()));
    });

    group.bench_function("asm_render_510", |b| {
        let programs = MicroCreator::new().generate(&figure6()).unwrap().programs;
        b.iter(|| {
            let total: usize = programs.iter().map(|p| p.to_asm_string().len()).sum();
            black_box(total)
        });
    });

    group.bench_function("asm_parse_listing", |b| {
        let text = MicroCreator::new().generate(&figure6()).unwrap().programs[100].to_asm_string();
        b.iter(|| black_box(mc_asm::parse::parse_listing(black_box(&text)).unwrap()));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_generation
}
criterion_main!(benches);
