//! Criterion benches for MicroLauncher: one full launch (environment
//! setup, Figure 10 measurement protocol, verification) per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Shared Criterion tuning: short windows keep the full-workspace bench
/// suite tractable on small CI hosts while still collecting ≥10 samples.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}
use mc_asm::inst::Mnemonic;
use mc_creator::MicroCreator;
use mc_kernel::builder::load_stream;
use mc_launcher::{KernelInput, LauncherOptions, MicroLauncher};
use std::hint::black_box;

fn bench_launcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("launcher");
    group.sample_size(30);

    let program = MicroCreator::new()
        .generate(&load_stream(Mnemonic::Movaps, 8, 8))
        .unwrap()
        .programs
        .remove(0);

    group.bench_function("sequential_run_with_verification", |b| {
        let launcher = MicroLauncher::with_defaults();
        let input = KernelInput::program(program.clone());
        b.iter(|| black_box(launcher.run(black_box(&input)).unwrap()));
    });

    group.bench_function("sequential_run_timing_only", |b| {
        let mut opts = LauncherOptions::default();
        opts.verify = false;
        let launcher = MicroLauncher::new(opts);
        let input = KernelInput::program(program.clone());
        b.iter(|| black_box(launcher.run(black_box(&input)).unwrap()));
    });

    group.bench_function("option_parsing", |b| {
        let args = [
            "--machine=x7550",
            "--mode=fork",
            "--cores=32",
            "--residence=ram",
            "--align=0,512,1024,1536",
            "--repetitions=64",
            "--aggregate=min",
        ];
        b.iter(|| black_box(LauncherOptions::from_args(black_box(&args)).unwrap()));
    });

    group.bench_function("measure_protocol_sim_clock", |b| {
        use mc_launcher::clock::SimClock;
        use mc_launcher::measure::{measure, MeasureConfig};
        let cfg = MeasureConfig {
            repetitions: 32,
            meta_repetitions: 8,
            warmup_runs: 1,
            aggregation: mc_launcher::Aggregation::Min,
            stability_threshold: 0.05,
        };
        b.iter(|| {
            let clock = SimClock::new(2.67);
            black_box(
                measure(
                    &clock,
                    &cfg,
                    || {
                        clock.advance_cycles(1234);
                        100
                    },
                    || clock.advance_cycles(50),
                )
                .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_launcher
}
criterion_main!(benches);
