//! Figure 15: alignment sweep of an 8-array traversal on 8 cores of the
//! quad-socket X7550.
//!
//! "MicroLauncher tests a variety of alignment settings for each allocated
//! array. … The figure shows, for movss accesses, there is a variation of
//! 20 to 33 cycles. The number of cycles per iteration is significantly
//! dependant of arrays." (§5.2.2) — the X axis enumerates alignment
//! configurations ("upwards of 2500").

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::multi_array_traversal;
use mc_launcher::options::{MachinePreset, Mode};
use mc_launcher::sweeps::{alignment_series, alignment_sweep_sampled, generate_shared};
use mc_report::experiments::{check_spread, ExperimentId, ShapeCheck};
use mc_simarch::config::Level;

/// Runs the 8-array/8-core alignment study.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig15,
        "Figure 15: cycles/iteration across alignments (8-array movss, 8 of 32 cores, X7550)",
    );
    let desc = multi_array_traversal(Mnemonic::Movss, 8);
    let program = generate_shared(&desc)?
        .first()
        .cloned()
        .ok_or_else(|| "multi_array_traversal produced no programs".to_owned())?;

    let mut opts = quick_options();
    opts.machine = MachinePreset::NehalemX7550;
    opts.mode = Mode::Fork;
    opts.cores = 8;
    opts.residence = Some(Level::Ram);
    // 8 arrays × 8 offsets would be 16.7M grid points; the study samples
    // ~3000 configurations ("upwards of 2500"), corners included.
    let points = alignment_sweep_sampled(&opts, &program, 512, 3584, 3000, 0x15)?;
    let series = alignment_series("8-array movss, 8 cores", &points);

    result.outcome.push(ShapeCheck::new(
        "upwards of 2500 configurations tested",
        points.len() > 2500,
        format!("{} configurations", points.len()),
    ));
    result.outcome.push(check_spread(
        "alignment swing 25%–100% (paper: 20→33 cycles ≈ 65%)",
        &series,
        0.25,
        1.0,
    ));
    let ys = series.ys();
    let (min, max) = ys.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &y| (lo.min(y), hi.max(y)));
    result.notes.push(format!(
        "{} configurations, {:.1} → {:.1} cycles/iteration (paper: 20 → 33)",
        points.len(),
        min,
        max
    ));
    result.series.push(series);
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig15_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert!(r.series[0].points.len() > 2500);
    }
}
