//! Figure 17: sequential vs OpenMP unrolled movss loads, 128k elements.
//!
//! "Figures 17 and 18 show the number of cycles per iteration of a program
//! using movss instructions. … Comparing the minimum and maximum values
//! obtained across ten runs shows the stability of the results. … the
//! OpenMP ones have a logarithmic scale." (§5.2.3) At 128k floats the
//! OpenMP version wins clearly and stays flat across unroll factors while
//! the sequential version improves.

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::options::{MachinePreset, Mode, OptionsDelta};
use mc_launcher::sweeps::programs_by_unroll_shared;
use mc_launcher::{run_batch, EvalPoint};
use mc_report::experiments::{ExperimentId, ShapeCheck, ShapeOutcome};
use mc_report::series::{Scale, Series};

/// Elements in the traversed array.
pub const ELEMENTS: u64 = 128 * 1024;

/// Builds the four series (seq/omp × min/max over ten noisy runs).
pub fn series_for(elements: u64) -> Result<Vec<Series>, String> {
    let programs = programs_by_unroll_shared(&load_stream(Mnemonic::Movss, 1, 8))?;
    let base = std::sync::Arc::new({
        let mut o = quick_options();
        o.machine = MachinePreset::SandyBridgeE31240;
        o.vector_bytes = elements * 4;
        // Ten outer experiments with mild environmental noise: the min/max
        // band demonstrates the stability the paper reports.
        o.meta_repetitions = 10;
        o.noise_amplitude = 0.04;
        o
    });
    // Two points per program, interleaved [seq, omp, seq, omp, …].
    let mut eval_points = Vec::with_capacity(programs.len() * 2);
    for p in &programs {
        let epi = p.elements_per_iteration.max(1);
        let trip = OptionsDelta {
            trip_count: Some((elements / epi).max(1) * epi),
            ..OptionsDelta::default()
        };
        eval_points.push(EvalPoint::with_delta(p.clone(), base.clone(), trip.clone()));
        eval_points.push(EvalPoint::with_delta(
            p.clone(),
            base.clone(),
            OptionsDelta { mode: Some(Mode::OpenMp), omp_threads: Some(4), ..trip },
        ));
    }
    let reports = run_batch(eval_points)?;
    let mut seq_min = Vec::new();
    let mut seq_max = Vec::new();
    let mut omp_min = Vec::new();
    let mut omp_max = Vec::new();
    for (i, p) in programs.iter().enumerate() {
        let x = f64::from(p.meta.unroll);
        let epi = p.elements_per_iteration.max(1) as f64;
        let (seq, omp) = (&reports[2 * i], &reports[2 * i + 1]);
        seq_min.push((x, seq.summary.min / epi));
        seq_max.push((x, seq.summary.max / epi));
        omp_min.push((x, omp.summary.min / epi));
        omp_max.push((x, omp.summary.max / epi));
    }
    Ok(vec![
        Series::new("Sequential min", seq_min),
        Series::new("Sequential max", seq_max),
        Series::new("OpenMP min", omp_min),
        Series::new("OpenMP max", omp_max),
    ])
}

/// Applies the Figure 17/18 shape checks shared by both sizes.
pub fn common_checks(outcome: &mut ShapeOutcome, series: &[Series], omp_flat_tol: f64) {
    let (seq_min, seq_max, omp_min, omp_max) = (&series[0], &series[1], &series[2], &series[3]);
    let seq_gain = seq_min.points[0].1 / seq_min.points[7].1;
    outcome.push(ShapeCheck::new(
        "sequential improves with unrolling",
        seq_gain > 1.15,
        format!("u1/u8 = {seq_gain:.2}"),
    ));
    outcome.push(ShapeCheck::new(
        "OpenMP is flat across unroll factors (parallel setup/bandwidth bound)",
        omp_min.is_flat(omp_flat_tol),
        format!(
            "{:?}",
            omp_min.ys().iter().map(|y| (y * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        ),
    ));
    // OpenMP wins clearly wherever the sequential code is un- or mildly
    // unrolled; at unroll 8 the curves may meet (the sequential code has
    // amortized its overhead while the team is bandwidth-capped).
    let wins_low = omp_min.points.iter().zip(&seq_min.points).take(4).all(|(o, s)| o.1 < s.1);
    outcome.push(ShapeCheck::new(
        "OpenMP beats sequential at unroll ≤ 4",
        wins_low,
        format!(
            "omp u1 {:.3} vs seq u1 {:.3} cycles/element",
            omp_min.points[0].1, seq_min.points[0].1
        ),
    ));
    let u8_ratio = omp_min.points[7].1 / seq_min.points[7].1;
    outcome.push(ShapeCheck::new(
        "at unroll 8 OpenMP stays within 20% of sequential",
        u8_ratio < 1.20,
        format!("omp/seq at u8 = {u8_ratio:.2}"),
    ));
    // Stability: min and max across the ten runs stay close.
    for (lo, hi, label) in [(seq_min, seq_max, "sequential"), (omp_min, omp_max, "OpenMP")] {
        let worst = lo.points.iter().zip(&hi.points).map(|(l, h)| h.1 / l.1).fold(0.0f64, f64::max);
        outcome.push(ShapeCheck::new(
            format!("{label} min/max band is tight across ten runs"),
            worst < 1.10,
            format!("worst max/min = {worst:.3}"),
        ));
    }
}

/// Runs the 128k study.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig17,
        "Figure 17: sequential vs OpenMP movss loads, 128k elements (E31240, log scale)",
    );
    result.scale = Scale::Log10;
    let series = series_for(ELEMENTS)?;
    common_checks(&mut result.outcome, &series, 0.15);
    let speedup = series[0].points[0].1 / series[2].points[0].1;
    result.notes.push(format!(
        "u1 OpenMP speedup {speedup:.1}× at 128k elements; OpenMP flat across unroll \
         (paper: OpenMP wins and is flat; sequential improves)"
    ));
    result.series = series;
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig17_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert_eq!(r.series.len(), 4);
    }
}
