//! Figure 14: fork-mode memory saturation vs core count.
//!
//! "Consider Figure 14, it shows the latency evolution in a logarithmic
//! scale of an 8 load array access from an array residing in RAM. The
//! breaking point for the dual-socket Nehalem machine is six cores. Under
//! six cores, the latency is not greatly affected; over six cores, there
//! is no longer a single change in the latencies." (§5.2.1)

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::sweeps::{core_sweep, programs_by_unroll_shared};
use mc_report::experiments::{check_knee, ExperimentId, ShapeCheck};
use mc_report::series::Scale;
use mc_simarch::config::Level;

/// Runs the core sweep.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig14,
        "Figure 14: cycles/iteration vs forked core count (movaps ×8, RAM, X5650)",
    );
    result.scale = Scale::Log10;
    let mut opts = quick_options();
    opts.residence = Some(Level::Ram);
    // Shares the generated program set with Figure 13.
    let program = programs_by_unroll_shared(&load_stream(Mnemonic::Movaps, 8, 8))?.remove(0);
    let series = core_sweep(&opts, &program, 12)?;

    result.outcome.push(check_knee(
        "breaking point at six cores (paper: 6)",
        &series,
        1.1,
        6.0,
        8.0,
    ));
    let c1 = series.points[0].1;
    let c5 = series.points[4].1;
    let c12 = series.points[11].1;
    result.outcome.push(ShapeCheck::new(
        "under the knee: latency not greatly affected",
        c5 / c1 < 1.15,
        format!("5 cores / 1 core = {:.3}", c5 / c1),
    ));
    result.outcome.push(ShapeCheck::new(
        "over the knee: latencies keep growing",
        c12 / c1 > 1.5,
        format!("12 cores / 1 core = {:.2}", c12 / c1),
    ));
    result.outcome.push(ShapeCheck::new(
        "saturation grows monotonically",
        series.is_non_decreasing(0.001),
        format!("{:?}", series.ys().iter().map(|y| (y * 10.0).round() / 10.0).collect::<Vec<_>>()),
    ));
    result.notes.push(format!(
        "1→12 cores: {:.1} → {:.1} cycles/iteration, knee at the six-core mark (paper: 6)",
        c1, c12
    ));
    result.series.push(series);
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig14_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert_eq!(r.scale, mc_report::series::Scale::Log10);
    }
}
