//! Generation-count reproduction (§3, §5.1): "MicroCreator generated 510
//! benchmark program variations" from the Figure 6 file, and "more than
//! two thousand benchmark programs from a single input file" for the
//! four-mnemonic study.

use super::FigureResult;
use mc_asm::inst::Mnemonic;
use mc_creator::MicroCreator;
use mc_kernel::builder::figure6;
use mc_kernel::OperationDesc;
use mc_report::experiments::{ExperimentId, ShapeCheck};
use mc_report::table::AsciiTable;

/// Runs the count checks.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(ExperimentId::Counts, "Generated program counts (§3/§5.1)");
    let creator = MicroCreator::new();

    let single = creator.generate(&figure6()).map_err(|e| e.to_string())?;
    result.outcome.push(ShapeCheck::new(
        "510 variants from the Figure 6 file",
        single.programs.len() == 510,
        format!("generated {}", single.programs.len()),
    ));

    let mut four_way = figure6();
    four_way.instructions[0].operation = OperationDesc::Choice(vec![
        Mnemonic::Movss,
        Mnemonic::Movsd,
        Mnemonic::Movaps,
        Mnemonic::Movapd,
    ]);
    let multi = creator.generate(&four_way).map_err(|e| e.to_string())?;
    result.outcome.push(ShapeCheck::new(
        ">2000 variants from the four-mnemonic file",
        multi.programs.len() > 2000,
        format!("generated {}", multi.programs.len()),
    ));
    // The four groups of §5.1 are equal-sized.
    for m in [Mnemonic::Movss, Mnemonic::Movsd, Mnemonic::Movaps, Mnemonic::Movapd] {
        let count = multi.programs.iter().filter(|p| p.meta.mnemonic == Some(m)).count();
        result.outcome.push(ShapeCheck::new(
            format!("{} group holds 510 variants", m.name()),
            count == 510,
            format!("{count} programs"),
        ));
    }

    let mut table = AsciiTable::new(vec!["input file", "programs", "paper"]);
    table.row(vec![
        "Figure 6 (movaps, unroll 1-8, swap-after)".to_owned(),
        single.programs.len().to_string(),
        "510".to_owned(),
    ]);
    table.row(vec![
        "four-mnemonic variant".to_owned(),
        multi.programs.len().to_string(),
        ">2000".to_owned(),
    ]);
    result.table = Some(table.render());
    result.notes.push(format!(
        "paper: 510 and >2000; measured: {} and {} (exact: Σ_{{u=1..8}} 2^u × groups)",
        single.programs.len(),
        multi.programs.len()
    ));
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn counts_experiment_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert!(r.table.is_some());
    }
}
