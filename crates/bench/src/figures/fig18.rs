//! Figure 18: the six-million-element counterpart of Figure 17.
//!
//! "the OpenMP 128k version has a significantly better performance gain
//! compared to the six million version" (§5.2.3): at 6M floats the data
//! streams from RAM and the team saturates the socket's memory bandwidth,
//! so adding threads buys much less.

use super::fig17;
use super::FigureResult;
use mc_report::experiments::{ExperimentId, ShapeCheck};
use mc_report::series::Scale;

/// Elements in the traversed array.
pub const ELEMENTS: u64 = 6_000_000;

/// Runs the 6M study.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig18,
        "Figure 18: sequential vs OpenMP movss loads, 6M elements (E31240, log scale)",
    );
    result.scale = Scale::Log10;
    let series = fig17::series_for(ELEMENTS)?;
    // RAM-bound: both the sequential and OpenMP curves flatten earlier, so
    // allow the OpenMP flatness check slightly more slack than at 128k.
    fig17::common_checks(&mut result.outcome, &series, 0.12);

    // The headline claim: the OpenMP speedup shrinks versus 128k.
    let small = fig17::series_for(fig17::ELEMENTS)?;
    let speedup_small = small[0].points[0].1 / small[2].points[0].1;
    let speedup_large = series[0].points[0].1 / series[2].points[0].1;
    result.outcome.push(ShapeCheck::new(
        "OpenMP gain at 128k clearly exceeds the 6M gain (§5.2.3)",
        speedup_small > speedup_large * 1.2,
        format!("128k speedup {speedup_small:.2}× vs 6M speedup {speedup_large:.2}×"),
    ));
    result.notes.push(format!(
        "u1 OpenMP speedup {speedup_large:.1}× at 6M vs {speedup_small:.1}× at 128k \
         (paper: 128k gains significantly more)"
    ));
    result.series = series;
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig18_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
    }
}
