//! Figure 16: alignment sweep of a four-array traversal on all 32 cores.
//!
//! "Memory saturation is exposed in Figure 16 where the plot line
//! represents a 32-core execution of a benchmark program. The program
//! contains a four array traversal with the movss instructions, the figure
//! shows performance variations from 60 to 90 cycles per iteration with
//! such a configuration." (§5.2.2)

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::multi_array_traversal;
use mc_launcher::options::{MachinePreset, Mode};
use mc_launcher::sweeps::{alignment_series, alignment_sweep, generate_shared};
use mc_report::experiments::{check_spread, ExperimentId, ShapeCheck};
use mc_simarch::config::Level;

/// Runs the 4-array/32-core alignment study.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig16,
        "Figure 16: cycles/iteration across alignments (4-array movss, 32 cores, X7550)",
    );
    let desc = multi_array_traversal(Mnemonic::Movss, 4);
    let program = generate_shared(&desc)?
        .first()
        .cloned()
        .ok_or_else(|| "multi_array_traversal produced no programs".to_owned())?;

    let mut opts = quick_options();
    opts.machine = MachinePreset::NehalemX7550;
    opts.mode = Mode::Fork;
    opts.cores = 32;
    opts.residence = Some(Level::Ram);
    // 4 arrays × 8 offsets = 4096 configurations.
    let points = alignment_sweep(&opts, &program, 512, 3584)?;
    let series = alignment_series("4-array movss, 32 cores", &points);

    result.outcome.push(check_spread(
        "alignment swing 20%–80% (paper: 60→90 cycles = 50%)",
        &series,
        0.20,
        0.80,
    ));
    // The 32-core saturated traversal costs several times the 8-core one
    // (paper: 60-90 vs 20-33 cycles).
    let fig15_floor = {
        let desc8 = multi_array_traversal(Mnemonic::Movss, 8);
        // Shares Figure 15's generated program.
        let p8 = generate_shared(&desc8)?
            .first()
            .cloned()
            .ok_or_else(|| "multi_array_traversal produced no programs".to_owned())?;
        let mut o = quick_options();
        o.machine = MachinePreset::NehalemX7550;
        o.mode = Mode::Fork;
        o.cores = 8;
        o.residence = Some(Level::Ram);
        // Best-case (well-separated) alignments: the Figure 15 floor.
        o.alignments = (0..8u64).map(|i| i * 512).collect();
        mc_launcher::MicroLauncher::new(o)
            .run(&mc_launcher::KernelInput::program(p8))?
            .cycles_per_iteration
    };
    let floor = series.ys().iter().copied().fold(f64::MAX, f64::min);
    result.outcome.push(ShapeCheck::new(
        "32-core floor ≈3× the 8-core floor (paper: 60 vs 20 cycles)",
        (1.5..=5.0).contains(&(floor / fig15_floor)),
        format!("{floor:.1} vs {fig15_floor:.1} cycles/iteration"),
    ));
    let ys = series.ys();
    let (min, max) = ys.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &y| (lo.min(y), hi.max(y)));
    result.notes.push(format!(
        "{} configurations, {:.1} → {:.1} cycles/iteration (paper: 60 → 90)",
        series.points.len(),
        min,
        max
    ));
    result.series.push(series);
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig16_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
    }
}
