//! Figure 3: matmul cycles per (inner-loop) iteration vs matrix size.
//!
//! "As the cycles increase, the matrix multiplication takes place higher
//! in the memory hierarchy. … it is clear that 500 is one of the cutting
//! points in performance" (§2). The mechanism: three `size²` double
//! matrices fall out of L1, then L2, then L3 as the size grows. The
//! simulated staircase has its steps at the modelled cache boundaries
//! (≈36, ≈104 and ≈724 for the X5650 with three-matrix residence); the
//! paper's ≈500 knee corresponds to the same L3 transition shifted by the
//! real kernel's partial reuse, which the analytic residence model does
//! not track (see EXPERIMENTS.md).

use super::{quick_options, FigureResult};
use mc_creator::MicroCreator;
use mc_kernel::builder::matmul_inner;
use mc_launcher::{KernelInput, MicroLauncher};
use mc_report::experiments::{knee_x, ExperimentId, ShapeCheck};
use mc_report::series::Series;

/// Matrix sizes swept (the paper sweeps 100–1200).
pub const SIZES: [u64; 12] = [50, 100, 150, 200, 300, 400, 500, 600, 700, 800, 1000, 1200];

/// Cycles per inner-loop iteration for one matrix size.
pub fn matmul_cycles(size: u64) -> Result<f64, String> {
    let desc = matmul_inner(size);
    let result = MicroCreator::new().generate(&desc).map_err(|e| e.to_string())?;
    let program =
        result.programs.iter().find(|p| p.meta.unroll == 1).ok_or("no unroll-1 matmul variant")?;
    let mut opts = quick_options();
    // Two kernel arrays stand for the three size² matrices' footprint.
    opts.vector_bytes = 3 * size * size * 8 / 2;
    opts.trip_count = size;
    let report = MicroLauncher::new(opts).run(&KernelInput::program(program.clone()))?;
    Ok(report.cycles_per_iteration)
}

/// Runs the sweep.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig3,
        "Figure 3: matmul cycles/iteration vs matrix size (X5650)",
    );
    let mut points = Vec::with_capacity(SIZES.len());
    for &size in &SIZES {
        points.push((size as f64, matmul_cycles(size)?));
    }
    let series = Series::new("matmul", points);

    result.outcome.push(ShapeCheck::new(
        "cycles rise monotonically with size",
        series.is_non_decreasing(0.01),
        format!("{:?}", series.ys()),
    ));
    let first = series.points.first().expect("non-empty").1;
    let last = series.points.last().expect("non-empty").1;
    result.outcome.push(ShapeCheck::new(
        "RAM-resident sizes cost ≥2× cache-resident sizes",
        last >= 2.0 * first,
        format!("{first:.2} → {last:.2}"),
    ));
    let knee = knee_x(&series, 1.5);
    result.outcome.push(ShapeCheck::new(
        "a cutting point exists in the swept range",
        matches!(knee, Some(x) if (100.0..=1200.0).contains(&x)),
        format!("knee at {knee:?} (paper: ≈500)"),
    ));
    result.notes.push(format!(
        "staircase {:.2}→{:.2} cycles/iter, knee at {:?} vs paper ≈500 \
         (same L3-exhaustion mechanism; residence model tracks no reuse)",
        first, last, knee
    ));
    result.series.push(series);
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig3_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert_eq!(r.series.len(), 1);
        assert_eq!(r.series[0].points.len(), super::SIZES.len());
    }

    #[test]
    fn small_sizes_are_l1_cheap() {
        // 50×50×3 doubles = 60 KB → L2-resident; still cheap.
        let small = super::matmul_cycles(50).unwrap();
        let large = super::matmul_cycles(1200).unwrap();
        assert!(small < large);
    }
}
