//! Figure 5: matmul unroll sweep — the actual (compiler-style) code vs the
//! MicroCreator microbenchmark equivalent.
//!
//! "unrolling provides a 9% difference between not unrolling the code and
//! unrolling it eight times. In the MicroTools version, the expected
//! improvement was 8.2%, which is similar" (§2). The "actual" line below
//! is a hand-unrolled Figure 2-style kernel (with the extra iteration
//! counter the compiler's code carries); the "MicroTools" line is the
//! abstracted kernel description expanded by MicroCreator.

use super::{quick_options, FigureResult};
use mc_kernel::builder::matmul_inner;
use mc_kernel::Program;
use mc_launcher::sweeps::generate_shared;
use mc_launcher::MicroLauncher;
use mc_report::experiments::{check_improvement, ExperimentId, ShapeCheck};
use mc_report::series::Series;
use mc_simarch::config::Level;
use std::fmt::Write as _;

/// Builds the hand-unrolled "actual code" kernel for one unroll factor:
/// the Figure 2 instruction mix (load, load-multiply, accumulate) with the
/// compiler's per-iteration counter, on a 200×200 matrix walk.
pub fn actual_code(unroll: u32, matrix_size: u64) -> Result<Program, String> {
    let row_bytes = 8 * matrix_size;
    let mut text = String::from(".L3:\n");
    for i in 0..unroll {
        let xmm = i % 8;
        let _ = writeln!(text, "movsd {}(%rsi), %xmm{xmm}", 8 * i);
        let _ = writeln!(text, "mulsd {}(%rdx), %xmm{xmm}", u64::from(i) * row_bytes);
        let _ = writeln!(text, "addsd %xmm{xmm}, %xmm15");
    }
    let _ = writeln!(text, "addl $1, %eax");
    let _ = writeln!(text, "addq ${}, %rsi", 8 * unroll);
    let _ = writeln!(text, "addq ${}, %rdx", u64::from(unroll) * row_bytes);
    let _ = writeln!(text, "subq ${unroll}, %rdi");
    text.push_str("jge .L3\n");
    let mut program = Program::from_asm_text(format!("matmul_actual_u{unroll}"), &text)
        .map_err(|e| e.to_string())?;
    program.nb_arrays = 2;
    program.element_bytes = 8;
    program.elements_per_iteration = u64::from(unroll);
    program.meta.unroll = unroll;
    Ok(program)
}

/// Runs the comparison.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig5,
        "Figure 5: matmul unroll factors — actual code vs microbenchmark (200², X5650)",
    );
    let desc = matmul_inner(200);
    let generated = generate_shared(&desc)?;

    // Interleave [actual, micro] per unroll factor into one batch.
    let mut programs = Vec::with_capacity(16);
    for unroll in 1..=8u32 {
        programs.push(std::sync::Arc::new(actual_code(unroll, 200)?));
        let micro = generated
            .iter()
            .find(|p| p.meta.unroll == unroll)
            .ok_or_else(|| format!("no microbenchmark at unroll {unroll}"))?;
        programs.push(micro.clone());
    }
    let mut opts = quick_options();
    opts.residence = Some(Level::L2); // 200² tiles are cache-resident (§2)
    opts.trip_count = 200;
    let reports = MicroLauncher::new(opts).run_batch(&programs)?;
    let per_element = |i: usize| {
        reports[i].cycles_per_iteration / programs[i].elements_per_iteration.max(1) as f64
    };
    let mut actual_points = Vec::new();
    let mut micro_points = Vec::new();
    for unroll in 1..=8u32 {
        let i = (unroll as usize - 1) * 2;
        actual_points.push((f64::from(unroll), per_element(i)));
        micro_points.push((f64::from(unroll), per_element(i + 1)));
    }
    let actual = Series::new("actual code", actual_points);
    let micro = Series::new("MicroTools", micro_points);

    result.outcome.push(check_improvement(
        "actual code gains ~9% from unrolling (paper: 9%)",
        &actual,
        0.04,
        0.20,
    ));
    result.outcome.push(check_improvement(
        "microbenchmark predicts a similar gain (paper: 8.2%)",
        &micro,
        0.04,
        0.20,
    ));
    let gain = |s: &Series| (s.points[0].1 - s.points[7].1) / s.points[0].1;
    let (ga, gm) = (gain(&actual), gain(&micro));
    result.outcome.push(ShapeCheck::new(
        "the two gains agree within 3 percentage points",
        (ga - gm).abs() < 0.03,
        format!("actual {:.1}% vs microbenchmark {:.1}%", ga * 100.0, gm * 100.0),
    ));
    let rel = (actual.points[7].1 - micro.points[7].1).abs() / micro.points[7].1;
    result.outcome.push(ShapeCheck::new(
        "absolute cycles agree within 25%",
        rel < 0.25,
        format!(
            "u8: actual {:.3} vs microbenchmark {:.3} cycles/element",
            actual.points[7].1, micro.points[7].1
        ),
    ));
    result.notes.push(format!(
        "unroll gain: actual {:.1}% vs microbenchmark {:.1}% (paper: 9% vs 8.2%)",
        ga * 100.0,
        gm * 100.0
    ));
    result.series.push(actual);
    result.series.push(micro);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_passes() {
        let r = run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
    }

    #[test]
    fn actual_code_is_well_formed() {
        let p = actual_code(3, 200).unwrap();
        assert_eq!(p.load_count(), 6, "2 loads per unrolled copy");
        assert_eq!(p.elements_per_iteration, 3);
        // It runs and terminates in the interpreter.
        let mut interp = mc_simarch::interp::Interpreter::new();
        interp.set_gpr(mc_asm::reg::GprName::Rdi, 30 - 3);
        interp.set_gpr(mc_asm::reg::GprName::Rsi, 0x100000);
        interp.set_gpr(mc_asm::reg::GprName::Rdx, 0x200000);
        let o = interp.run(&p, 100_000);
        assert_eq!(o.stop, mc_simarch::interp::StopReason::FellThrough);
        assert_eq!(o.loop_iterations, 10);
        assert_eq!(o.eax, 10, "the compiler-style counter tracks iterations");
    }
}
