//! Figure 12: the `movss` counterpart of Figure 11.
//!
//! Shape claims (§5.1): same staircase as movaps but with cheaper
//! per-instruction memory cost (4 bytes vs 16); "the 8 unrolled case, the
//! movss cycle number per iteration is one cycle per load in L3"; movsd is
//! "similar … with slightly higher latencies because of the higher data
//! movement rate"; vectorized RAM accesses cost more per instruction than
//! scalar ones.

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::sweeps::unroll_by_level_sweep;
use mc_report::experiments::{ExperimentId, ShapeCheck};
use mc_simarch::config::Level;

/// Runs the movss sweep.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig12,
        "Figure 12: cycles per movss load vs unroll factor and hierarchy level (X5650)",
    );
    let opts = quick_options();
    let movss =
        unroll_by_level_sweep(&opts, &load_stream(Mnemonic::Movss, 1, 8), &Level::ALL, true)?;
    let movsd =
        unroll_by_level_sweep(&opts, &load_stream(Mnemonic::Movsd, 1, 8), &Level::ALL, true)?;
    let movaps =
        unroll_by_level_sweep(&opts, &load_stream(Mnemonic::Movaps, 1, 8), &Level::ALL, true)?;

    // Scalar 4-byte loads saturate the load port before any cache level's
    // bandwidth, so L1/L2/L3 converge (the paper itself reports 1 c/l in
    // L3 at unroll 8); only RAM must stand strictly above.
    let means: Vec<f64> =
        movss.iter().map(|s| s.ys().iter().sum::<f64>() / s.points.len() as f64).collect();
    let ordered =
        means.windows(2).all(|w| w[0] <= w[1] * (1.0 + 1e-3)) && means[3] > means[2] * 1.05;
    result.outcome.push(ShapeCheck::new(
        "hierarchy ordering L1 ≤ L2 ≤ L3 < RAM",
        ordered,
        format!("means {means:?}"),
    ));
    let l3_u8 = movss[2].points[7].1;
    result.outcome.push(ShapeCheck::new(
        "movss L3 at unroll 8 ≈ one cycle per load (§5.1)",
        (0.7..=1.4).contains(&l3_u8),
        format!("{l3_u8:.2} cycles/load"),
    ));
    // movsd RAM ≥ movss RAM (more data per instruction).
    let (ss_ram, sd_ram) = (movss[3].points[7].1, movsd[3].points[7].1);
    result.outcome.push(ShapeCheck::new(
        "movsd slightly above movss in RAM (higher data rate)",
        sd_ram >= ss_ram && sd_ram <= ss_ram * 3.0,
        format!("movsd {sd_ram:.2} vs movss {ss_ram:.2}"),
    ));
    // Vectorized RAM accesses pay for 4× the data per instruction…
    let aps_ram = movaps[3].points[7].1;
    result.outcome.push(ShapeCheck::new(
        "movaps RAM cycles/load exceed movss (4× the data)",
        aps_ram > 2.0 * ss_ram,
        format!("movaps {aps_ram:.2} vs movss {ss_ram:.2}"),
    ));
    // …but win per byte where bandwidth still has headroom: "Four movss
    // instructions are the same workload as the movaps version. Therefore,
    // the vectorized version is better since it executes at less than two
    // cycles per load" — an L3 comparison in the paper (§5.1).
    let (ss_l3, aps_l3) = (movss[2].points[7].1, movaps[2].points[7].1);
    result.outcome.push(ShapeCheck::new(
        "movaps beats 4× movss per byte in L3 (§5.1)",
        aps_l3 < 4.0 * ss_l3,
        format!("movaps {aps_l3:.2} < 4 × movss {ss_l3:.2}"),
    ));
    result.notes.push(format!(
        "movss u8 cycles/load: L1 {:.2}, L2 {:.2}, L3 {:.2}, RAM {:.2} (paper: 1 c/l in L3)",
        movss[0].points[7].1, movss[1].points[7].1, movss[2].points[7].1, movss[3].points[7].1
    ));
    result.series = movss;
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig12_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
    }
}
