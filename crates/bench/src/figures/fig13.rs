//! Figure 13: frequency sweep of an 8-unrolled movaps load kernel.
//!
//! "The timing varies with the frequency for L1 and L2 accesses; however,
//! L3 and RAM remain constant, proving on-core frequency modifications do
//! not affect the off-core frequency" (§5.1). Cycles are reference
//! (`rdtsc`) cycles, "independent on the frequency".

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::sweeps::{frequency_sweep, programs_by_unroll_shared};
use mc_report::experiments::{ExperimentId, ShapeCheck};
use mc_simarch::config::Level;

/// Runs the frequency sweep.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig13,
        "Figure 13: cycles per movaps load vs core frequency (X5650, unroll 8)",
    );
    let opts = quick_options();
    // The same movaps program set feeds Figure 14; generation is shared.
    let program = programs_by_unroll_shared(&load_stream(Mnemonic::Movaps, 8, 8))?.remove(0);
    let series = frequency_sweep(&opts, &program, &Level::ALL)?;

    for s in &series {
        let first = s.points.first().expect("non-empty").1; // slowest clock
        let last = s.points.last().expect("non-empty").1; // nominal clock
        let ratio = first / last;
        match s.label.as_str() {
            "L1" | "L2" => {
                // Core-domain cost in reference cycles scales ≈ f_nom/f.
                let expected = 2.67 / 1.60;
                result.outcome.push(ShapeCheck::new(
                    format!("{} scales with core frequency", s.label),
                    (ratio / expected - 1.0).abs() < 0.10,
                    format!("slow/fast ratio {ratio:.2} (expected ≈{expected:.2})"),
                ));
            }
            _ => {
                result.outcome.push(ShapeCheck::new(
                    format!("{} is frequency-invariant (off-core)", s.label),
                    s.is_flat(0.03),
                    format!("slow/fast ratio {ratio:.3}"),
                ));
            }
        }
    }
    result.notes.push(format!(
        "1.60→2.67 GHz: L1 ratio {:.2}, RAM ratio {:.3} (paper: L1/L2 scale, L3/RAM flat)",
        series[0].points[0].1 / series[0].points.last().unwrap().1,
        series[3].points[0].1 / series[3].points.last().unwrap().1,
    ));
    result.series = series;
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig13_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert_eq!(r.series.len(), 4);
        // Five frequency steps on the X5650.
        assert_eq!(r.series[0].points.len(), 5);
    }
}
