//! Table 1: the machine inventory, rendered from the simulator presets.

use super::FigureResult;
use mc_report::experiments::{ExperimentId, ShapeCheck};
use mc_report::table::AsciiTable;
use mc_simarch::config::MachineConfig;

/// Renders the machine inventory and sanity-checks the topologies.
pub fn run() -> Result<FigureResult, String> {
    let mut result =
        FigureResult::new(ExperimentId::Table1, "Table 1: figure ↔ architecture association");
    let machines = MachineConfig::table1();
    let figures = ["17, 18", "2, 3, 4, 5, 11, 12, 13, 14", "15, 16"];

    let mut table = AsciiTable::new(vec!["Architecture", "Cores", "GHz", "Associated figures"]);
    for (m, figs) in machines.iter().zip(figures) {
        table.row(vec![
            m.name.to_owned(),
            format!("{}×{}", m.sockets, m.cores_per_socket),
            format!("{:.2}", m.nominal_ghz),
            figs.to_owned(),
        ]);
    }
    result.table = Some(table.render());

    let expected = [(1u32, 4u32, 3.30), (2, 6, 2.67), (4, 8, 2.00)];
    for (m, (sockets, cores, ghz)) in machines.iter().zip(expected) {
        result.outcome.push(ShapeCheck::new(
            format!("{} topology", m.name),
            m.sockets == sockets
                && m.cores_per_socket == cores
                && (m.nominal_ghz - ghz).abs() < 1e-9,
            format!("{}×{} @ {:.2} GHz", m.sockets, m.cores_per_socket, m.nominal_ghz),
        ));
    }
    result.notes.push("all three Table 1 machines modelled as simulator presets".into());
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        let t = r.table.unwrap();
        assert!(t.contains("X5650"), "{t}");
        assert!(t.contains("E31240"), "{t}");
        assert!(t.contains("X7550"), "{t}");
    }
}
