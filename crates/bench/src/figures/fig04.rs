//! Figure 4: matmul cycles per iteration across matrix alignments.
//!
//! "On the considered hardware, with a 200 * 200 size, the chosen
//! alignment does not impact the 200 * 200 matrix multiply. The variation
//! is less than 3% for any alignment configuration" (§2). The 200² tiles
//! are cache-resident and the kernel is dependency-bound (the `addsd`
//! accumulation chain), so alignment penalties on the memory side never
//! reach the bottom line — in contrast to §5.2.2's bandwidth-bound
//! traversals (Figures 15/16).

use super::{quick_options, FigureResult};
use mc_creator::MicroCreator;
use mc_kernel::builder::matmul_inner;
use mc_launcher::sweeps::{alignment_series, alignment_sweep};
use mc_report::experiments::{check_spread, ExperimentId};
use mc_simarch::config::Level;

/// Runs the alignment study at 200×200.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig4,
        "Figure 4: matmul cycles/iteration across alignments (200², X5650)",
    );
    let desc = matmul_inner(200);
    let gen = MicroCreator::new().generate(&desc).map_err(|e| e.to_string())?;
    let program =
        gen.programs.iter().find(|p| p.meta.unroll == 1).ok_or("no unroll-1 matmul variant")?;

    let mut opts = quick_options();
    // The 200² working set is reused across the j-loop: effectively
    // cache-resident ("The following studies consider 200 * 200 matrices,
    // which fit in the cache", §2).
    opts.residence = Some(Level::L2);
    opts.trip_count = 200;
    // 8 offsets per array × 2 arrays = 64 configurations.
    let points = alignment_sweep(&opts, program, 512, 3584)?;
    let series = alignment_series("matmul 200²", &points);

    result.outcome.push(check_spread(
        "alignment variation below 3% (paper: <3%)",
        &series,
        0.0,
        0.03,
    ));
    result.notes.push(format!(
        "{} alignment configurations, spread {:.2}% (paper: <3%)",
        points.len(),
        spread_pct(&series)
    ));
    result.series.push(series);
    Ok(result)
}

fn spread_pct(series: &mc_report::series::Series) -> f64 {
    let ys = series.ys();
    let (min, max) = ys.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &y| (lo.min(y), hi.max(y)));
    (max - min) / min * 100.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert_eq!(r.series[0].points.len(), 64);
    }
}
