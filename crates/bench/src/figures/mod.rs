//! Per-experiment harnesses. Each module regenerates one table or figure.

pub mod counts;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod table1;
pub mod table2;

use mc_launcher::options::LauncherOptions;
use mc_report::experiments::{ExperimentId, ShapeOutcome};
use mc_report::series::{Scale, Series};

/// The regenerated data and verdicts for one experiment.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Which experiment.
    pub id: ExperimentId,
    /// Figure/table title.
    pub title: String,
    /// Plotted series (empty for pure tables).
    pub series: Vec<Series>,
    /// Y-axis scale for the chart.
    pub scale: Scale,
    /// Rendered table, when the experiment is tabular.
    pub table: Option<String>,
    /// The shape checks against the paper's claims.
    pub outcome: ShapeOutcome,
    /// Paper-vs-measured notes for EXPERIMENTS.md.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// Starts a result.
    pub fn new(id: ExperimentId, title: impl Into<String>) -> Self {
        FigureResult {
            id,
            title: title.into(),
            series: Vec::new(),
            scale: Scale::Linear,
            table: None,
            outcome: ShapeOutcome::new(id),
            notes: Vec::new(),
        }
    }
}

/// The outer-experiment budget each figure harness runs with (0 = the
/// quick default of 3). The adaptive-vs-fixed benchmark raises it to the
/// paper's full stability budget so the comparison is honest: adaptive
/// mode's savings only exist relative to the budget fixed mode pays.
static META_BUDGET: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Overrides the outer-experiment budget for every subsequent
/// [`quick_options`] caller. Pass 0 to restore the quick default.
pub fn set_meta_budget(meta_repetitions: u32) {
    META_BUDGET.store(meta_repetitions, std::sync::atomic::Ordering::SeqCst);
}

/// Launcher options tuned for harness throughput: the simulation is
/// deterministic, so a handful of repetitions suffices. Applies the
/// process-wide adaptive sampling default (`reproduce --adaptive`), so
/// every figure's sweep inherits one sampling policy.
pub fn quick_options() -> LauncherOptions {
    let budget = META_BUDGET.load(std::sync::atomic::Ordering::SeqCst);
    LauncherOptions {
        repetitions: 4,
        meta_repetitions: if budget > 0 { budget } else { 3 },
        verify: false,
        ..LauncherOptions::default()
    }
    .with_adaptive_default()
}

/// Runs one experiment by id, under one `bench.experiment` span.
pub fn run_experiment(id: ExperimentId) -> Result<FigureResult, String> {
    let mut span = mc_trace::span("bench.experiment");
    let result = match id {
        ExperimentId::Counts => counts::run(),
        ExperimentId::Table1 => table1::run(),
        ExperimentId::Fig3 => fig03::run(),
        ExperimentId::Fig4 => fig04::run(),
        ExperimentId::Fig5 => fig05::run(),
        ExperimentId::Fig11 => fig11::run(),
        ExperimentId::Fig12 => fig12::run(),
        ExperimentId::Fig13 => fig13::run(),
        ExperimentId::Fig14 => fig14::run(),
        ExperimentId::Fig15 => fig15::run(),
        ExperimentId::Fig16 => fig16::run(),
        ExperimentId::Fig17 => fig17::run(),
        ExperimentId::Fig18 => fig18::run(),
        ExperimentId::Table2 => table2::run(),
    };
    if span.is_active() {
        span.field("experiment", id.key());
        match &result {
            Ok(r) => {
                span.field("checks", r.outcome.checks.len() as u64);
                span.field(
                    "checks_passed",
                    r.outcome.checks.iter().filter(|c| c.passed).count() as u64,
                );
            }
            Err(e) => {
                span.field("error", e.as_str());
            }
        }
    }
    result
}

/// Runs a set of experiments across the mc-exec engine, results in input
/// order. Figures run in parallel with each other *and* each figure's
/// sweeps batch internally; the nested engines can oversubscribe the
/// machine briefly, which is harmless for throughput and irrelevant for
/// results (the simulation is deterministic).
pub fn run_many(ids: &[ExperimentId]) -> Result<Vec<FigureResult>, String> {
    mc_exec::engine().run(ids.to_vec(), run_experiment).into_iter().collect()
}

/// Runs every experiment in paper order.
pub fn run_all() -> Result<Vec<FigureResult>, String> {
    run_many(&ExperimentId::ALL)
}
