//! Table 2: execution time of the OpenMP and sequential versions of a
//! movss unrolled kernel on the four-core E31240.
//!
//! Paper rows (seconds): OpenMP 9.42 → 9.31 (≈1% over unroll 1→8) versus
//! sequential 18.30 → 14.39 (≈21%). "Unrolling achieves a significant
//! performance gain for the sequential version. It is not true in the
//! OpenMP setting due to the overhead of the parallel setup." The workload
//! is the RAM-resident (6M-element) traversal repeated a fixed number of
//! invocations; absolute seconds depend on the invocation count, the
//! *ratios* are the claim under test.

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::options::MachinePreset;
use mc_launcher::sweeps::openmp_comparison;
use mc_report::experiments::{check_improvement, ExperimentId, ShapeCheck};
use mc_report::table::{fmt_f, AsciiTable};

/// Elements per invocation (the RAM-resident Figure 18 workload).
pub const ELEMENTS: u64 = 6_000_000;
/// Benchmark invocations (chosen so the sequential unroll-1 row lands near
/// the paper's ≈18 s).
pub const INVOCATIONS: u64 = 5_400;

/// Runs the Table 2 reproduction.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Table2,
        "Table 2: OpenMP vs sequential execution time across unroll factors (E31240)",
    );
    let mut opts = quick_options();
    opts.machine = MachinePreset::SandyBridgeE31240;
    let cmp =
        openmp_comparison(&opts, &load_stream(Mnemonic::Movss, 1, 8), ELEMENTS, 4, INVOCATIONS)?;

    let mut table =
        AsciiTable::new(vec!["Unroll factor", "OpenMP time (in s)", "Seq. time (in s)"]);
    for (omp, seq) in cmp.openmp_seconds.points.iter().zip(&cmp.sequential_seconds.points) {
        table.row(vec![format!("{}", omp.0 as u32), fmt_f(omp.1, 2), fmt_f(seq.1, 2)]);
    }
    result.table = Some(table.render());

    result.outcome.push(check_improvement(
        "sequential improves ~21% over unroll 1→8 (paper: 18.30→14.39 s)",
        &cmp.sequential_seconds,
        0.12,
        0.35,
    ));
    result.outcome.push(check_improvement(
        "OpenMP improves ≲5% (paper: 9.42→9.31 s ≈ 1.2%)",
        &cmp.openmp_seconds,
        -0.01,
        0.05,
    ));
    let ratio_u1 = cmp.sequential_seconds.points[0].1 / cmp.openmp_seconds.points[0].1;
    result.outcome.push(ShapeCheck::new(
        "OpenMP roughly halves the wall time at unroll 1 (paper: 18.30/9.42 ≈ 1.9×)",
        (1.4..=3.2).contains(&ratio_u1),
        format!("seq/omp = {ratio_u1:.2}"),
    ));
    let seq_gain = (cmp.sequential_seconds.points[0].1 - cmp.sequential_seconds.points[7].1)
        / cmp.sequential_seconds.points[0].1;
    let omp_gain = (cmp.openmp_seconds.points[0].1 - cmp.openmp_seconds.points[7].1)
        / cmp.openmp_seconds.points[0].1;
    result.notes.push(format!(
        "seq gain {:.1}% (paper 21.4%), OpenMP gain {:.1}% (paper 1.2%), seq/omp at u1 {:.2} \
         (paper 1.94)",
        seq_gain * 100.0,
        omp_gain * 100.0,
        ratio_u1
    ));
    result.series.push(cmp.sequential_seconds);
    result.series.push(cmp.openmp_seconds);
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        let t = r.table.as_ref().unwrap();
        assert!(t.contains("Unroll factor"), "{t}");
        assert_eq!(t.lines().count(), 2 + 8, "header + rule + 8 rows");
    }
}
