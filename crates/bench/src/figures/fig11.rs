//! Figure 11: average cycles per load/store using `movaps` across unroll
//! factors and memory-hierarchy levels (X5650).
//!
//! Shape claims (§5.1): unrolling amortizes overhead at every level; the
//! levels order L1 < L2 < L3 < RAM; `movapd` behaves identically to
//! `movaps`; at unroll 8 the vectorized L3 stream runs below two cycles
//! per load.

use super::{quick_options, FigureResult};
use mc_asm::inst::Mnemonic;
use mc_kernel::builder::load_stream;
use mc_launcher::sweeps::unroll_by_level_sweep;
use mc_report::experiments::{check_ordered, ExperimentId, ShapeCheck};
use mc_simarch::config::Level;

/// Runs the movaps sweep.
pub fn run() -> Result<FigureResult, String> {
    let mut result = FigureResult::new(
        ExperimentId::Fig11,
        "Figure 11: cycles per movaps load vs unroll factor and hierarchy level (X5650)",
    );
    let opts = quick_options();
    let desc = load_stream(Mnemonic::Movaps, 1, 8);
    let series = unroll_by_level_sweep(&opts, &desc, &Level::ALL, true)?;

    result.outcome.push(check_ordered(
        "hierarchy ordering L1 < L2 < L3 < RAM",
        &series.iter().collect::<Vec<_>>(),
    ));
    for s in &series {
        result.outcome.push(ShapeCheck::new(
            format!("{}: unrolling never hurts", s.label),
            s.is_non_increasing(0.01),
            format!("{:?}", s.ys().iter().map(|y| (y * 100.0).round() / 100.0).collect::<Vec<_>>()),
        ));
    }
    let l3_u8 = series[2].points[7].1;
    result.outcome.push(ShapeCheck::new(
        "L3 at unroll 8 below two cycles per load (§5.1)",
        l3_u8 < 2.0,
        format!("{l3_u8:.2} cycles/load"),
    ));
    // movapd must be indistinguishable ("The movapd figures are the same
    // as their movaps counterparts").
    let apd =
        unroll_by_level_sweep(&opts, &load_stream(Mnemonic::Movapd, 1, 8), &Level::ALL, true)?;
    let identical = series
        .iter()
        .zip(&apd)
        .all(|(a, b)| a.points.iter().zip(&b.points).all(|(p, q)| (p.1 - q.1).abs() < 1e-9));
    result.outcome.push(ShapeCheck::new(
        "movapd series identical to movaps",
        identical,
        "per-point equality".to_owned(),
    ));
    result.notes.push(format!(
        "u8 cycles/load: L1 {:.2}, L2 {:.2}, L3 {:.2}, RAM {:.2} \
         (paper: ≈1 in L1, <2 in L3, RAM highest)",
        series[0].points[7].1, series[1].points[7].1, series[2].points[7].1, series[3].points[7].1
    ));
    result.series = series;
    Ok(result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_passes() {
        let r = super::run().unwrap();
        assert!(r.outcome.passed(), "{}", r.outcome.render());
        assert_eq!(r.series.len(), 4);
    }
}
