//! # mc-bench — the experiment reproduction harness
//!
//! One module per table/figure of the paper's evaluation (§2 and §5). Each
//! module's `run()` regenerates the experiment's data through the full
//! MicroCreator → MicroLauncher pipeline on the simulated Table 1 machines
//! and evaluates the paper's *shape claims* against it (see
//! `mc_report::experiments`).
//!
//! The `reproduce` binary renders every experiment as terminal charts and
//! tables with `[PASS]`/`[FAIL]` shape checks; the Criterion benches under
//! `benches/` time the same harnesses.

pub mod figures;

pub use figures::{run_all, run_experiment, FigureResult};
