//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce                  # run all experiments
//! reproduce --exp fig11      # one experiment
//! reproduce --quick          # a fast smoke subset of the experiments
//! reproduce --jobs=4         # worker threads for the evaluation engine
//! reproduce --list           # list experiment keys
//! reproduce --summary        # verdict lines only, no charts
//! reproduce --csv-dir=out    # also write each experiment's series as CSV
//! reproduce --adaptive       # adaptive repetition control (μOpTime)
//! reproduce --store=DIR      # persistent evaluation store (warm reruns)
//! reproduce --profile[=DIR]  # per-evaluation mc-scope profiles
//! ```
//!
//! `--adaptive[=bool]` switches every experiment's sweeps to adaptive
//! sampling: each point starts at `--min-samples` (default 2) outer
//! experiments and grows geometrically only while unstable, capped at
//! `--max-samples` (default 8). `MICROTOOLS_ADAPTIVE=bool|MIN..MAX`
//! sets the same policy from the environment; explicit flags win.
//!
//! For each experiment the tool prints the regenerated data (terminal
//! chart or table), the shape checks against the paper's claims as
//! `[PASS]`/`[FAIL]` lines, and the measured-vs-paper notes that feed
//! EXPERIMENTS.md. The shared observability flags (`--trace=PATH`,
//! `--metrics`, `--quiet`) and supervision flags (`--deadline-ms`,
//! `--retries`, `--max-failures`, `--keep-going`/`--fail-fast`,
//! `--checkpoint=PATH [--resume]`) apply; each experiment runs under one
//! `bench.experiment` span. Exit codes follow the shared convention:
//! 0 ok, 2 usage, 3 evaluation failures over budget, 4 shape-check
//! regression.

use mc_bench::figures::{quick_options, run_all, run_experiment, run_many, FigureResult};
use mc_launcher::{set_adaptive_default, AdaptiveSampling, LauncherOptions};
use mc_report::experiments::ExperimentId;
use mc_report::series::render_chart;
use mc_report::{CsvWriter, RunManifest};
use mc_tools::{
    exitcode, take_guard_flags, take_jobs_flag, take_profile_flags, take_store_flags, GuardSession,
    ProfileSession, PulseSession, StoreSession, TraceSession,
};
use mc_trace::diag;
use std::path::Path;
use std::process::ExitCode;

/// One experiment's series as a CSV document (columns: series, x, y),
/// preceded by a `# key: value` provenance header. The same text is
/// written by `--csv-dir` and registered by `--register`.
fn experiment_document(r: &FigureResult, guard: &GuardSession, store: &StoreSession) -> String {
    let mut manifest = RunManifest::new();
    manifest.set("tool", "reproduce");
    manifest.set("version", env!("CARGO_PKG_VERSION"));
    manifest.set("experiment", r.id.key());
    manifest.set("claim", r.id.paper_claim());
    // Record the sampling policy the sweeps actually ran under, so
    // `mc-report diff` can warn before comparing a fixed-budget baseline
    // against an adaptive run (or vice versa).
    let sampling = quick_options();
    manifest.set("adaptive", if sampling.adaptive { "true" } else { "false" });
    manifest.set("sampling", sampling.sampling_policy());
    if let Some(path) = &guard.checkpoint {
        manifest.set("checkpoint", path.clone());
        manifest.set("resumed_rows", guard.resumed.to_string());
    }
    // The path only: hit counts differ between cold and warm runs and
    // would break byte-identical documents.
    if let Some(root) = store.root() {
        manifest.set("store", root.display().to_string());
    }
    let mut csv = CsvWriter::new(vec!["series", "x", "y"]);
    for s in &r.series {
        for (x, y) in &s.points {
            csv.row(&[s.label.clone(), x.to_string(), y.to_string()]);
        }
    }
    let mut document = manifest.render();
    document.push_str(&csv.finish());
    document
}

/// Writes one experiment's document as `<key>.csv`. The write is atomic
/// (temp file + rename), so a killed run leaves complete documents only.
fn write_csv(dir: &Path, r: &FigureResult, document: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    mc_report::atomic_write(&dir.join(format!("{}.csv", r.id.key())), document.as_bytes())
}

fn print_result(r: &FigureResult, summary_only: bool) {
    println!("━━━ {} ━━━", r.title);
    println!("paper claim: {}", r.id.paper_claim());
    if !summary_only {
        if let Some(table) = &r.table {
            println!("{table}");
        }
        if !r.series.is_empty() {
            println!("{}", render_chart(&r.series, 72, 18, r.scale));
        }
    }
    print!("{}", r.outcome.render());
    for note in &r.notes {
        println!("  note: {note}");
    }
    println!();
}

/// The `--quick` smoke subset: the cheap experiments, still covering the
/// creator, the sweep drivers, and both fork and frequency modes.
const QUICK: &[ExperimentId] = &[
    ExperimentId::Counts,
    ExperimentId::Table1,
    ExperimentId::Fig3,
    ExperimentId::Fig11,
    ExperimentId::Fig13,
    ExperimentId::Fig14,
];

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let session = match TraceSession::from_flags(&mut args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    if let Err(e) = take_jobs_flag(&mut args) {
        eprintln!("{e}");
        return ExitCode::from(exitcode::USAGE);
    }
    let guard = match take_guard_flags(&mut args) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    let mut pulse = match PulseSession::from_flags(&mut args) {
        Ok(p) => p,
        Err(e) => {
            diag!("{e}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    let mut store = match take_store_flags(&mut args, pulse.registry_root()) {
        Ok(s) => s,
        Err(e) => {
            diag!("{e}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    let mut profile = match take_profile_flags(&mut args, pulse.registry_root()) {
        Ok(p) => p,
        Err(e) => {
            diag!("{e}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    let code = run(args, &guard, &mut pulse, &store, &mut profile);
    store.finish();
    session.finish();
    code
}

fn parse_bool_flag(flag: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" | "yes" => Ok(true),
        "0" | "false" | "no" => Ok(false),
        other => Err(format!("{flag} expects a boolean, got `{other}`")),
    }
}

fn parse_u32_flag(flag: &str, value: &str) -> Result<u32, String> {
    value
        .parse::<u32>()
        .map_err(|_| format!("{flag} expects a non-negative integer, got `{value}`"))
}

fn run(
    args: Vec<String>,
    guard: &GuardSession,
    pulse: &mut PulseSession,
    store: &StoreSession,
    profile: &mut ProfileSession,
) -> ExitCode {
    let mut exp: Option<String> = None;
    let mut summary_only = false;
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    // Environment-derived sampling policy first; explicit flags win. The
    // reproduce defaults (2..8) are tighter than the launcher's because
    // the quick suite's fixed budget is only 3 outer experiments.
    let mut sampling =
        LauncherOptions { min_samples: 2, max_samples: 8, ..LauncherOptions::default() };
    if let Err(e) = sampling.apply_adaptive_env() {
        diag!("{e}");
        return ExitCode::from(exitcode::USAGE);
    }
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for id in ExperimentId::ALL {
                    println!("{:8} {}", id.key(), id.paper_claim());
                }
                return ExitCode::SUCCESS;
            }
            "--summary" => summary_only = true,
            "--quick" => quick = true,
            "--adaptive" => sampling.adaptive = true,
            "--exp" => exp = iter.next().cloned(),
            other if other.starts_with("--exp=") => {
                exp = Some(other.trim_start_matches("--exp=").to_owned());
            }
            other if other.starts_with("--csv-dir=") => {
                csv_dir = Some(other.trim_start_matches("--csv-dir=").to_owned());
            }
            other if other.starts_with("--adaptive=") => {
                match parse_bool_flag("--adaptive", other.trim_start_matches("--adaptive=")) {
                    Ok(v) => sampling.adaptive = v,
                    Err(e) => {
                        diag!("{e}");
                        return ExitCode::from(exitcode::USAGE);
                    }
                }
            }
            other if other.starts_with("--min-samples=") => {
                match parse_u32_flag("--min-samples", other.trim_start_matches("--min-samples=")) {
                    Ok(v) => sampling.min_samples = v,
                    Err(e) => {
                        diag!("{e}");
                        return ExitCode::from(exitcode::USAGE);
                    }
                }
            }
            other if other.starts_with("--max-samples=") => {
                match parse_u32_flag("--max-samples", other.trim_start_matches("--max-samples=")) {
                    Ok(v) => sampling.max_samples = v,
                    Err(e) => {
                        diag!("{e}");
                        return ExitCode::from(exitcode::USAGE);
                    }
                }
            }
            other => {
                diag!(
                    "unknown argument `{other}` (try --list, --summary, --quick, --adaptive, \
                     --exp <key>)"
                );
                return ExitCode::from(exitcode::USAGE);
            }
        }
    }
    if sampling.adaptive && sampling.max_samples > 0 && sampling.max_samples < sampling.min_samples
    {
        diag!("--max-samples must be >= --min-samples");
        return ExitCode::from(exitcode::USAGE);
    }
    // Install the policy process-wide; `quick_options()` folds it into
    // every figure harness's sweep.
    set_adaptive_default(if sampling.adaptive {
        Some(AdaptiveSampling {
            min_samples: sampling.min_samples.max(1),
            max_samples: sampling.max_samples,
        })
    } else {
        None
    });

    let input_label = exp.clone().unwrap_or_else(|| if quick { "quick" } else { "all" }.to_owned());
    let results: Vec<FigureResult> = match exp {
        Some(key) => {
            let Some(id) = ExperimentId::from_key(&key) else {
                diag!("unknown experiment `{key}`; --list shows the available keys");
                return ExitCode::from(exitcode::USAGE);
            };
            match run_experiment(id) {
                Ok(r) => vec![r],
                Err(e) => {
                    diag!("experiment failed: {e}");
                    return ExitCode::from(exitcode::EVAL);
                }
            }
        }
        None => {
            let run = if quick { run_many(QUICK) } else { run_all() };
            match run {
                Ok(rs) => rs,
                Err(e) => {
                    diag!("reproduction failed: {e}");
                    return ExitCode::from(exitcode::EVAL);
                }
            }
        }
    };

    for r in &results {
        print_result(r, summary_only);
        if (csv_dir.is_some() || pulse.active()) && !r.series.is_empty() {
            let document = experiment_document(r, guard, store);
            if let Some(dir) = &csv_dir {
                if let Err(e) = write_csv(Path::new(dir), r, &document) {
                    diag!("could not write {}.csv: {e}", r.id.key());
                }
            }
            pulse.record_document(r.id.key(), &document);
        }
    }

    let total: usize = results.iter().map(|r| r.outcome.checks.len()).sum();
    let passed: usize =
        results.iter().map(|r| r.outcome.checks.iter().filter(|c| c.passed).count()).sum();
    println!("════ {passed}/{total} shape checks passed across {} experiments ════", results.len());
    let code = if mc_guard::over_budget() {
        exitcode::EVAL
    } else if passed == total {
        exitcode::OK
    } else {
        exitcode::REGRESSION
    };
    let run_id = if pulse.active() {
        let mut manifest = RunManifest::new();
        manifest.set("tool", "reproduce");
        manifest.set("input", input_label.as_str());
        manifest.set("experiments", results.len().to_string());
        manifest.set("checks_passed", passed.to_string());
        manifest.set("checks_total", total.to_string());
        let sampling_ran = quick_options();
        manifest.set("adaptive", if sampling_ran.adaptive { "true" } else { "false" });
        if let Some(root) = store.root() {
            manifest.set("store", root.display().to_string());
        }
        pulse.finish("reproduce", manifest, code)
    } else {
        None
    };
    profile.finish(run_id.as_deref());
    ExitCode::from(code)
}
