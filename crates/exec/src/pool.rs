//! The work-stealing batch pool.
//!
//! A batch is a `Vec` of items plus one evaluation function. Items enter a
//! global injector queue tagged with their submission index; each worker
//! owns a FIFO deque and steals from the injector or from siblings when it
//! runs dry. Results land in an index-addressed slot table, so the caller
//! always gets them back in submission order — scheduling nondeterminism
//! never reaches the result: parallel output is bit-identical to serial.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A fixed-width scoped thread pool for one batch at a time.
///
/// The pool is cheap to construct (no threads until [`ExecEngine::run`]);
/// a width of 1 runs the batch inline on the caller's thread.
#[derive(Debug, Clone, Copy)]
pub struct ExecEngine {
    workers: usize,
}

impl ExecEngine {
    /// An engine with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        ExecEngine { workers: workers.max(1) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `f` over every item, returning results in submission
    /// order regardless of which worker computed them.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let points = items.len();
        let workers = self.workers.min(points.max(1));
        let mut span = mc_trace::span("exec.batch");
        span.field("points", points as u64);
        span.field("workers", workers as u64);
        mc_trace::progress_batch_started(points as u64);
        record_batch_admitted(points, workers);
        let start = Instant::now();
        let busy_nanos = AtomicU64::new(0);

        let results: Vec<R> = if workers <= 1 {
            let out: Vec<R> = items
                .into_iter()
                .map(|item| {
                    let t0 = Instant::now();
                    let r = f(item);
                    busy_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    mc_trace::progress_point_done();
                    r
                })
                .collect();
            out
        } else {
            let injector = Injector::new();
            for indexed in items.into_iter().enumerate() {
                injector.push(indexed);
            }
            let slots: Vec<Mutex<Option<R>>> = (0..points).map(|_| Mutex::new(None)).collect();
            let locals: Vec<Worker<(usize, T)>> =
                (0..workers).map(|_| Worker::new_fifo()).collect();
            let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
            {
                // The worker deques move into their threads; everything
                // else is shared by reference.
                let (injector, stealers, slots) = (&injector, &stealers, &slots);
                let (f, busy_nanos) = (&f, &busy_nanos);
                std::thread::scope(|scope| {
                    for local in locals {
                        scope.spawn(move || {
                            while let Some((index, item)) = next_task(&local, injector, stealers) {
                                let t0 = Instant::now();
                                let r = f(item);
                                busy_nanos
                                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                                *slots[index].lock() = Some(r);
                                mc_trace::progress_point_done();
                            }
                        });
                    }
                });
            }
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every submitted index completes"))
                .collect()
        };

        let wall = start.elapsed();
        record_batch(workers, wall.as_secs_f64(), busy_nanos.into_inner());
        mc_trace::progress_batch_finished();
        span.field("wall_ms", wall.as_secs_f64() * 1e3);
        results
    }
}

/// The crossbeam-deque scheduling recipe: drain the local FIFO, then steal
/// a batch from the injector, then from a sibling; retry while any source
/// reports a racy miss.
fn next_task<T>(local: &Worker<T>, injector: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            injector
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(Stealer::steal).collect())
        })
        .find(|steal: &Steal<T>| !steal.is_retry())
        .and_then(Steal::success)
    })
}

/// Batch admission telemetry, recorded when the batch *starts* so a live
/// metrics scrape mid-sweep already sees the submitted point count.
fn record_batch_admitted(points: usize, workers: usize) {
    if !mc_trace::metrics_enabled() {
        return;
    }
    let m = mc_trace::metrics();
    m.inc("exec.batch.count", 1);
    m.inc("exec.batch.points", points as u64);
    m.gauge_set("exec.pool.workers", workers as f64);
}

/// End-of-batch telemetry: utilization (busy time over `workers × wall`)
/// and the per-batch wall-time histogram.
fn record_batch(workers: usize, wall_seconds: f64, busy_nanos: u64) {
    if !mc_trace::metrics_enabled() {
        return;
    }
    let m = mc_trace::metrics();
    let capacity = workers as f64 * wall_seconds;
    if capacity > 0.0 {
        m.gauge_set("exec.pool.utilization", (busy_nanos as f64 / 1e9 / capacity).min(1.0));
    }
    m.observe("exec.batch.wall_ms", wall_seconds * 1e3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

    /// The metrics registry is process-global; every test that runs an
    /// engine serializes on this lock so enabled-metrics windows never
    /// observe a sibling test's batches.
    fn metrics_lock() -> MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let _guard = metrics_lock();
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 8] {
            let got = ExecEngine::new(workers).run(items.clone(), |x| x * x);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn parallel_matches_serial_under_uneven_work() {
        let _guard = metrics_lock();
        // Skewed task costs force stealing; order must still hold.
        let items: Vec<u64> = (0..64).collect();
        let work = |x: u64| {
            let spin = if x.is_multiple_of(7) { 40_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        let serial = ExecEngine::new(1).run(items.clone(), work);
        let parallel = ExecEngine::new(8).run(items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_batches_work() {
        let _guard = metrics_lock();
        let engine = ExecEngine::new(4);
        assert_eq!(engine.run(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(engine.run(vec![41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        assert_eq!(ExecEngine::new(0).workers(), 1);
    }

    #[test]
    fn batch_metrics_are_recorded() {
        let _guard = metrics_lock();
        mc_trace::metrics().reset();
        mc_trace::enable_metrics(true);
        ExecEngine::new(4).run((0..32u64).collect(), |x| x + 1);
        mc_trace::enable_metrics(false);
        let snapshot = mc_trace::metrics().snapshot();
        mc_trace::metrics().reset();
        assert_eq!(snapshot.counter("exec.batch.count"), Some(1));
        assert_eq!(snapshot.counter("exec.batch.points"), Some(32));
        assert_eq!(snapshot.gauge("exec.pool.workers"), Some(4.0));
        let utilization = snapshot.gauge("exec.pool.utilization").expect("utilization gauge");
        assert!((0.0..=1.0).contains(&utilization), "utilization {utilization}");
        assert_eq!(snapshot.histogram("exec.batch.wall_ms").map(|h| h.count), Some(1));
    }
}
