//! The sharded memoization cache.
//!
//! Evaluation points are pure functions of their inputs, so a
//! process-wide `(fingerprint, fingerprint) → result` map turns repeated
//! evaluations — the same kernel appearing in several figures, the same
//! options grid swept twice — into lookups. The map is sharded to keep
//! lock contention off the worker threads, and the value is computed
//! *outside* the shard lock: two workers racing on the same key may both
//! compute, but determinism makes the duplicate result identical, so
//! either insert wins harmlessly.
//!
//! Shard selection is on the hot path of every evaluation, so keys that
//! are already FNV fingerprints index a shard straight off their low
//! bits via [`ShardKey`] — re-hashing a 64-bit hash through SipHash
//! bought no distribution and cost a hasher setup per lookup. Arbitrary
//! key types opt back into hashing with the [`HashedKey`] wrapper.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shard count; a small power of two keeps the index a mask.
const SHARDS: usize = 16;

/// Maps a key to the bits that pick its shard.
///
/// Fingerprint keys are already uniformly distributed, so their low bits
/// index a shard directly — no second hash. Key types without that
/// guarantee wrap themselves in [`HashedKey`], which falls back to the
/// standard hasher.
pub trait ShardKey {
    /// Well-distributed bits derived from the key; the low bits pick the
    /// shard.
    fn shard_bits(&self) -> u64;
}

impl ShardKey for u64 {
    fn shard_bits(&self) -> u64 {
        *self
    }
}

impl ShardKey for (u64, u64) {
    fn shard_bits(&self) -> u64 {
        // Both halves are independent FNV fingerprints; xor keeps a
        // sweep that varies only one of them spread across shards.
        self.0 ^ self.1
    }
}

/// Adapter giving any hashable key a [`ShardKey`] via the standard
/// hasher — the pre-fingerprint behaviour, for keys whose distribution
/// is unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashedKey<K>(pub K);

impl<K: Hash> ShardKey for HashedKey<K> {
    fn shard_bits(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.0.hash(&mut hasher);
        hasher.finish()
    }
}

/// A process-wide memoization cache.
///
/// `prefix` names the cache in the metrics registry: hits and misses tick
/// `<prefix>.hit` / `<prefix>.miss` counters whenever metrics are enabled.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hit_name: String,
    miss_name: String,
    enabled: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + ShardKey, V: Clone> MemoCache<K, V> {
    /// An empty, enabled cache named `prefix` in the metrics registry.
    pub fn new(prefix: &'static str) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hit_name: format!("{prefix}.hit"),
            miss_name: format!("{prefix}.miss"),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        &self.shards[(key.shard_bits() as usize) & (SHARDS - 1)]
    }

    /// Returns the cached value for `key`, or computes it with `f`.
    ///
    /// The computation runs outside the shard lock; errors are never
    /// cached. With the cache disabled this is exactly `f()`.
    pub fn get_or_try_compute<E>(&self, key: K, f: impl FnOnce() -> Result<V, E>) -> Result<V, E> {
        if !self.enabled.load(Ordering::Relaxed) {
            return f();
        }
        let shard = self.shard(&key);
        if let Some(value) = shard.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.tick(&self.hit_name);
            mc_trace::progress_cache_hit();
            return Ok(value);
        }
        let value = f()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.tick(&self.miss_name);
        mc_trace::progress_cache_miss();
        shard.lock().entry(key).or_insert_with(|| value.clone());
        Ok(value)
    }

    fn tick(&self, name: &str) {
        if mc_trace::metrics_enabled() {
            mc_trace::metrics().inc(name, 1);
        }
    }

    /// Turns memoization on or off (off = always compute).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Whether memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Drops every cached entry and zeroes the hit/miss tallies.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.hits.store(0, Ordering::SeqCst);
        self.misses.store(0, Ordering::SeqCst);
    }

    /// Cached entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` tally.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn ok<T>(value: T) -> Result<T, Infallible> {
        Ok(value)
    }

    #[test]
    fn second_lookup_hits() {
        let cache: MemoCache<u64, u64> = MemoCache::new("test.cache");
        let computed = AtomicU64::new(0);
        let compute = |x: u64| {
            computed.fetch_add(1, Ordering::Relaxed);
            ok(x * 2)
        };
        assert_eq!(cache.get_or_try_compute(7, || compute(7)), Ok(14));
        assert_eq!(cache.get_or_try_compute(7, || compute(7)), Ok(14));
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: MemoCache<u64, u64> = MemoCache::new("test.cache");
        let r: Result<u64, String> = cache.get_or_try_compute(1, || Err("boom".into()));
        assert_eq!(r, Err("boom".to_owned()));
        assert!(cache.is_empty());
        assert_eq!(cache.get_or_try_compute(1, || ok(5)), Ok(5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache: MemoCache<u64, u64> = MemoCache::new("test.cache");
        cache.set_enabled(false);
        assert!(!cache.is_enabled());
        let computed = AtomicU64::new(0);
        for _ in 0..3 {
            let _ = cache.get_or_try_compute(9, || {
                computed.fetch_add(1, Ordering::Relaxed);
                ok(1u64)
            });
        }
        assert_eq!(computed.load(Ordering::Relaxed), 3);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let cache: MemoCache<u64, u64> = MemoCache::new("test.cache");
        for k in 0..40 {
            let _ = cache.get_or_try_compute(k, || ok(k));
        }
        assert_eq!(cache.len(), 40);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache: MemoCache<u64, u64> = MemoCache::new("test.cache");
        let results = crate::ExecEngine::new(8).run((0..256u64).collect(), |i| {
            cache.get_or_try_compute(i % 16, || ok((i % 16) * 3)).unwrap()
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, (i as u64 % 16) * 3);
        }
        assert_eq!(cache.len(), 16);
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 256);
        assert!(misses >= 16);
    }

    #[test]
    fn fingerprint_keys_spread_across_shards() {
        let cache: MemoCache<(u64, u64), u64> = MemoCache::new("test.cache");
        for k in 0..(SHARDS as u64 * 4) {
            // Vary only the second half — rotate-fold must still spread.
            let _ = cache.get_or_try_compute((0xabcd, k), || ok(k));
        }
        let occupied = cache.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(occupied > SHARDS / 2, "only {occupied} of {SHARDS} shards used");
    }

    #[test]
    fn hashed_key_wrapper_admits_arbitrary_key_types() {
        let cache: MemoCache<HashedKey<(String, u32)>, u64> = MemoCache::new("test.cache");
        let key = || HashedKey(("fig13".to_owned(), 7u32));
        assert_eq!(cache.get_or_try_compute(key(), || ok(1)), Ok(1));
        assert_eq!(cache.get_or_try_compute(key(), || ok(2)), Ok(1));
        assert_eq!(cache.stats(), (1, 1));
    }
}
