//! # mc-exec — the parallel evaluation engine
//!
//! The paper's studies push thousands of generated variants through the
//! measurement harness (§4, Figures 3–5, 11–18). Every evaluation point is
//! a pure function of its `(Program, LauncherOptions)` inputs — the
//! simulator is deterministic — so points are embarrassingly parallel and
//! perfectly cacheable. This crate provides the two pieces the sweep and
//! figure drivers build on:
//!
//! * [`ExecEngine`] — a work-stealing scoped thread pool that fans a batch
//!   of items across workers and collects results **in submission order**,
//!   so parallel sweeps are bit-identical to serial ones,
//! * [`MemoCache`] — a sharded memoization cache shared process-wide, so
//!   identical evaluations are computed once and reused across sweeps and
//!   figures.
//!
//! Worker count resolution (highest priority first): an explicit
//! [`set_jobs`] call (the binaries' `--jobs=N` flag), the
//! `MICROTOOLS_JOBS` environment variable, then the machine's available
//! parallelism. `jobs=1` falls back to inline serial execution with no
//! threads spawned.

pub mod cache;
pub mod pool;

pub use cache::{HashedKey, MemoCache, ShardKey};
pub use pool::ExecEngine;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Explicit worker-count override; 0 = unset.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count (the `--jobs=N` flag). Clamped to
/// at least 1; overrides the `MICROTOOLS_JOBS` environment variable.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The effective worker count: [`set_jobs`] override, else
/// `MICROTOOLS_JOBS`, else available parallelism.
pub fn jobs() -> usize {
    let explicit = JOBS.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = jobs_from_env() {
        return n;
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn jobs_from_env() -> Option<usize> {
    let value = std::env::var("MICROTOOLS_JOBS").ok()?;
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// An engine sized by the current [`jobs`] resolution.
pub fn engine() -> ExecEngine {
    ExecEngine::new(jobs())
}

/// Parses a `--jobs=N` value (the shared CLI surface).
pub fn parse_jobs(value: &str) -> Result<usize, String> {
    value
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("--jobs: invalid worker count `{value}` (want a positive integer)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 1 "), Ok(1));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("many").is_err());
    }

    #[test]
    fn explicit_jobs_override_wins() {
        // Note: process-global; keep the override in place only briefly.
        set_jobs(3);
        assert_eq!(jobs(), 3);
        assert_eq!(engine().workers(), 3);
        JOBS.store(0, Ordering::SeqCst);
        assert!(jobs() >= 1);
    }
}
