//! Fixed-width ASCII table rendering for terminal reports (Tables 1/2).

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Starts a table with a header row.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        AsciiTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row (padded/truncated to the header arity).
    pub fn row<S: Into<String>>(&mut self, fields: Vec<S>) {
        let mut row: Vec<String> = fields.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders with `|` separators and a dashed rule under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<width$}", width = w)).collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", rule.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals, trimming trailing zeros is NOT
/// done (fixed width keeps tables aligned).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Renders a byte count for humans: exact below 1 KiB, one decimal of
/// KiB/MiB/GiB above. Binary units — this sizes caches and stores, not
/// disks in a catalogue.
pub fn human_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if bytes < 1024 {
        format!("{bytes} B")
    } else if b < KIB * KIB {
        format!("{:.1} KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else {
        format!("{:.1} GiB", b / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_picks_the_right_unit() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KiB");
        assert_eq!(human_bytes(34_567), "33.8 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0 GiB");
    }

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(vec!["Unroll factor", "OpenMP time (s)", "Seq. time (s)"]);
        t.row(vec!["1", "9.42", "18.30"]);
        t.row(vec!["8", "9.31", "14.60"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert!(lines[0].contains("Unroll factor"));
        assert!(lines[2].contains("9.42"));
    }

    #[test]
    fn wide_cells_stretch_columns() {
        let mut t = AsciiTable::new(vec!["a"]);
        t.row(vec!["a-very-long-cell"]);
        let s = t.render();
        assert!(s.lines().next().unwrap().len() >= "| a-very-long-cell |".len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only-a"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn fmt_f_fixed_decimals() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 2), "2.00");
    }
}
