//! Automated analysis of MicroTools result sets — the paper's closing
//! direction: "data-mining techniques allow to process the MicroTools
//! data generated in order to automate the analysis" (§7).
//!
//! Results are flat records: tag fields (unroll factor, mnemonic,
//! direction pattern, …) plus one measured metric. The helpers answer the
//! questions the paper's studies answer by hand: which variant is optimal,
//! how do groups compare, which knob actually matters.

use std::collections::BTreeMap;

/// One measured variant: tag fields plus the metric under study
/// (typically cycles per iteration — lower is better).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Variant name.
    pub name: String,
    /// Tag fields (`"unroll" → "3"`, `"mnemonic" → "movaps"`, …).
    pub tags: BTreeMap<String, String>,
    /// The measured metric (lower is better).
    pub metric: f64,
}

impl Record {
    /// Builds a record from `(key, value)` tag pairs.
    pub fn new(name: impl Into<String>, tags: &[(&str, &str)], metric: f64) -> Self {
        Record {
            name: name.into(),
            tags: tags.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            metric,
        }
    }
}

/// The record with the smallest metric — "determine which variation is
/// optimal" (§6).
pub fn best(records: &[Record]) -> Option<&Record> {
    records
        .iter()
        .filter(|r| r.metric.is_finite())
        .min_by(|a, b| a.metric.partial_cmp(&b.metric).expect("finite"))
}

/// Groups records by a tag field (records missing the field land under
/// `"-"`).
pub fn group_by<'a>(records: &'a [Record], field: &str) -> BTreeMap<String, Vec<&'a Record>> {
    let mut groups: BTreeMap<String, Vec<&Record>> = BTreeMap::new();
    for r in records {
        let key = r.tags.get(field).cloned().unwrap_or_else(|| "-".to_owned());
        groups.entry(key).or_default().push(r);
    }
    groups
}

/// Per-group minimum — the paper's figure convention ("For each unroll
/// group, the minimum value was taken", §5.1). Returns `(group, min)` in
/// group order.
pub fn min_per_group(records: &[Record], field: &str) -> Vec<(String, f64)> {
    group_by(records, field)
        .into_iter()
        .filter_map(|(k, rs)| {
            rs.iter()
                .map(|r| r.metric)
                .fold(None, |acc: Option<f64>, m| Some(acc.map_or(m, |a| a.min(m))))
                .map(|m| (k, m))
        })
        .collect()
}

/// How much a knob matters: the relative spread between the best and the
/// worst group minimum for a field. A field with near-zero impact can be
/// dropped from a study; a large one is worth sweeping finer — the
/// "detect whether the variations have an impact" loop of §6.
pub fn field_impact(records: &[Record], field: &str) -> Option<f64> {
    let mins = min_per_group(records, field);
    let (lo, hi) = mins
        .iter()
        .map(|(_, m)| *m)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), m| (lo.min(m), hi.max(m)));
    if lo.is_finite() && lo > 0.0 {
        Some((hi - lo) / lo)
    } else {
        None
    }
}

/// Ranks every tag field by impact, strongest first.
pub fn rank_fields(records: &[Record]) -> Vec<(String, f64)> {
    let mut fields: Vec<String> = Vec::new();
    for r in records {
        for k in r.tags.keys() {
            if !fields.contains(k) {
                fields.push(k.clone());
            }
        }
    }
    let mut ranked: Vec<(String, f64)> =
        fields.into_iter().filter_map(|f| field_impact(records, &f).map(|i| (f, i))).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite impacts"));
    ranked
}

/// The Pareto front of a bi-objective study (both minimized), e.g.
/// cycles-per-iteration vs energy-per-iteration. Returns indices into
/// `points`, sorted by the first objective.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("finite")
            .then(points[a].1.partial_cmp(&points[b].1).expect("finite"))
    });
    let mut front = Vec::new();
    let mut best_second = f64::INFINITY;
    for i in idx {
        if points[i].1 < best_second {
            front.push(i);
            best_second = points[i].1;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::new("u1_L", &[("unroll", "1"), ("dir", "L")], 2.4),
            Record::new("u2_LL", &[("unroll", "2"), ("dir", "LL")], 1.3),
            Record::new("u2_LS", &[("unroll", "2"), ("dir", "LS")], 1.5),
            Record::new("u8_L8", &[("unroll", "8"), ("dir", "L8")], 1.05),
            Record::new("u8_S8", &[("unroll", "8"), ("dir", "S8")], 1.12),
        ]
    }

    #[test]
    fn best_finds_global_minimum() {
        assert_eq!(best(&sample()).unwrap().name, "u8_L8");
        assert!(best(&[]).is_none());
        let with_nan = vec![Record::new("nan", &[], f64::NAN), Record::new("ok", &[], 1.0)];
        assert_eq!(best(&with_nan).unwrap().name, "ok");
    }

    #[test]
    fn grouping_and_group_minima() {
        let records = sample();
        let groups = group_by(&records, "unroll");
        assert_eq!(groups.len(), 3);
        assert_eq!(groups["2"].len(), 2);
        let mins = min_per_group(&records, "unroll");
        assert_eq!(mins, vec![("1".into(), 2.4), ("2".into(), 1.3), ("8".into(), 1.05)]);
    }

    #[test]
    fn missing_field_groups_under_dash() {
        let mut records = sample();
        records.push(Record::new("untagged", &[], 9.0));
        let groups = group_by(&records, "unroll");
        assert!(groups.contains_key("-"));
    }

    #[test]
    fn field_impact_ranks_the_knobs() {
        let records = sample();
        // Unroll swings 2.4/1.05 ≈ 2.3×; direction groups are singletons
        // with a similar span. Impact must be positive for both.
        let unroll = field_impact(&records, "unroll").unwrap();
        assert!((unroll - (2.4 - 1.05) / 1.05).abs() < 1e-9);
        let ranked = rank_fields(&records);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].1 >= ranked[1].1);
    }

    #[test]
    fn pareto_front_extraction() {
        // (cycles, energy)
        let points = [(1.0, 9.0), (2.0, 4.0), (3.0, 5.0), (4.0, 1.0), (1.5, 9.5)];
        let front = pareto_front(&points);
        assert_eq!(front, vec![0, 1, 3]);
        assert!(pareto_front(&[]).is_empty());
    }
}
