//! CSV reading and writing — MicroLauncher's output format (§4.3).

use std::fmt::Write as _;

/// Streaming CSV writer with a fixed header.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    columns: Vec<String>,
    buffer: String,
}

impl CsvWriter {
    /// Starts a CSV document with the given header row.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        let mut buffer = String::new();
        let _ = writeln!(buffer, "{}", columns.join(","));
        CsvWriter { columns, buffer }
    }

    /// Appends one row; panics if the arity mismatches the header (a
    /// programming error in the harness).
    pub fn row<S: AsRef<str>>(&mut self, fields: &[S]) {
        assert_eq!(
            fields.len(),
            self.columns.len(),
            "CSV row arity {} != header arity {}",
            fields.len(),
            self.columns.len()
        );
        let escaped: Vec<String> = fields.iter().map(|f| escape(f.as_ref())).collect();
        let _ = writeln!(self.buffer, "{}", escaped.join(","));
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buffer
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.buffer
    }
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// A parsed CSV document: header plus rows, with any `#`-prefixed
/// comment lines (e.g. a [`crate::RunManifest`] header block) preserved
/// separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names from the header row.
    pub columns: Vec<String>,
    /// Data rows, each with `columns.len()` fields.
    pub rows: Vec<Vec<String>>,
    /// `#`-prefixed lines in document order, leading `#` and one
    /// optional space stripped.
    pub comments: Vec<String>,
}

impl CsvTable {
    /// Parses a document (header required; quoted fields supported;
    /// `#`-prefixed comment/manifest lines are collected, not parsed).
    pub fn parse(text: &str) -> Result<CsvTable, String> {
        let mut columns: Option<Vec<String>> = None;
        let mut rows = Vec::new();
        let mut comments = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                comments.push(comment.strip_prefix(' ').unwrap_or(comment).to_owned());
                continue;
            }
            let row = parse_row(line)?;
            match &columns {
                None => columns = Some(row),
                Some(header) => {
                    if row.len() != header.len() {
                        return Err(format!(
                            "row {} has {} fields, header has {}",
                            i + 1,
                            row.len(),
                            header.len()
                        ));
                    }
                    rows.push(row);
                }
            }
        }
        let columns = columns.ok_or("empty CSV document")?;
        Ok(CsvTable { columns, rows, comments })
    }

    /// Index of a named column.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of a named column parsed as f64 (skipping unparsable
    /// cells).
    pub fn numeric_column(&self, name: &str) -> Vec<f64> {
        let Some(idx) = self.column(name) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r[idx].parse().ok()).collect()
    }
}

fn parse_row(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(format!("unterminated quoted field in `{line}`"));
    }
    fields.push(field);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_roundtrip() {
        let mut w = CsvWriter::new(vec!["kernel", "unroll", "cycles"]);
        w.row(&["movaps_u3_SLS", "3", "3.25"]);
        w.row(&["needs \"quoting\", yes", "1", "2.0"]);
        let doc = w.finish();
        let table = CsvTable::parse(&doc).unwrap();
        assert_eq!(table.columns, vec!["kernel", "unroll", "cycles"]);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[1][0], "needs \"quoting\", yes");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn writer_rejects_wrong_arity() {
        let mut w = CsvWriter::new(vec!["a", "b"]);
        w.row(&["only-one"]);
    }

    #[test]
    fn numeric_column_extraction() {
        let doc = "name,cycles\na,1.5\nb,2.5\nc,not-a-number\n";
        let t = CsvTable::parse(doc).unwrap();
        assert_eq!(t.numeric_column("cycles"), vec![1.5, 2.5]);
        assert!(t.numeric_column("missing").is_empty());
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        let err = CsvTable::parse("a,b\n1,2,3\n").unwrap_err();
        assert!(err.contains("3 fields"), "{err}");
    }

    #[test]
    fn parse_rejects_empty() {
        assert!(CsvTable::parse("").is_err());
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(CsvTable::parse("a\n\"oops\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = CsvTable::parse("a\n1\n\n2\n").unwrap();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn comment_lines_are_collected_not_parsed() {
        let doc =
            "# tool: microlauncher 0.1.0\n# seed: 42\nkernel,cycles\n# mid-file note\na,1.5\n";
        let t = CsvTable::parse(doc).unwrap();
        assert_eq!(t.columns, vec!["kernel", "cycles"]);
        assert_eq!(t.rows, vec![vec!["a".to_owned(), "1.5".to_owned()]]);
        assert_eq!(t.comments, vec!["tool: microlauncher 0.1.0", "seed: 42", "mid-file note"]);
    }

    #[test]
    fn comment_only_document_is_still_empty() {
        assert!(CsvTable::parse("# just a manifest\n").is_err());
    }

    #[test]
    fn column_lookup() {
        let t = CsvTable::parse("x,y\n1,2\n").unwrap();
        assert_eq!(t.column("y"), Some(1));
        assert_eq!(t.column("z"), None);
    }
}
