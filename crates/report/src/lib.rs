//! # mc-report — statistics, CSV, tables, plots and shape checks
//!
//! MicroLauncher's output "is a generic CSV file providing the execution
//! time of the benchmark program" (§4.3), and the paper's evaluation reads
//! those CSVs into figures and tables. This crate is the reporting
//! substrate:
//!
//! * [`stats`] — summary statistics over repeated measurements (the
//!   launcher's stability protocol reports min/median/max across the outer
//!   experiment loop),
//! * [`csv`] — the CSV reader/writer,
//! * [`table`] — fixed-width ASCII table rendering (Tables 1 and 2),
//! * [`series`] — figure data series with terminal plotting, including the
//!   logarithmic Y axes Figures 14, 17 and 18 use,
//! * [`experiments`] — the registry of paper expectations and the *shape
//!   checks* (ordering, knees, ratios, flatness) each reproduced figure
//!   must satisfy,
//! * [`analysis`] — the §7 "data-mining" helpers: optimal-variant search,
//!   per-group minima, knob-impact ranking, Pareto fronts,
//! * [`manifest`] — the [`RunManifest`] provenance header (`# key: value`
//!   comment lines) embedded in every emitted CSV,
//! * [`fsio`] — crash-safe artifact writes (temp file + fsync + rename),
//!   so an interrupted run never leaves a torn CSV or manifest behind.

pub mod analysis;
pub mod csv;
pub mod experiments;
pub mod fsio;
pub mod manifest;
pub mod series;
pub mod stats;
pub mod table;

pub use analysis::Record;
pub use csv::{CsvTable, CsvWriter};
pub use experiments::{ExperimentId, ShapeCheck, ShapeOutcome};
pub use fsio::{atomic_write, atomic_write_str};
pub use manifest::{fnv1a64, RunManifest};
pub use series::{Scale, Series};
pub use stats::Summary;
