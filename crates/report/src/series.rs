//! Figure data series with terminal (ASCII) plotting.
//!
//! Each paper figure is a set of named series over a shared X axis; the
//! `reproduce` harness renders them as multi-series line charts in the
//! terminal, with the logarithmic Y axes Figures 14, 17 and 18 use.

use serde::{Deserialize, Serialize};

/// Y-axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Linear Y axis.
    Linear,
    /// Base-10 logarithmic Y axis ("the OpenMP ones have a logarithmic
    /// scale", §5.2.3).
    Log10,
}

/// One plotted series: a label and `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"L1"`, `"RAM"`, `"OpenMP min"`).
    pub label: String,
    /// Data points in X order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }

    /// The Y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }

    /// True if Y never increases along X (within `tol` relative slack).
    pub fn is_non_increasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 * (1.0 + tol))
    }

    /// True if Y never decreases along X (within `tol` relative slack).
    pub fn is_non_decreasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 * (1.0 - tol))
    }

    /// True if all Y values stay within ±`tol` of the first.
    pub fn is_flat(&self, tol: f64) -> bool {
        let Some(&(_, first)) = self.points.first() else { return true };
        self.points.iter().all(|&(_, y)| (y - first).abs() <= first.abs() * tol)
    }
}

/// Renders series as an ASCII chart of `width`×`height` characters (plus
/// axes and a legend). Series are drawn with distinct glyphs in label
/// order.
pub fn render_chart(series: &[Series], width: usize, height: usize, scale: Scale) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let all_points: Vec<(f64, f64)> =
        series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all_points.is_empty() {
        return String::from("(empty chart)\n");
    }
    let xform = |y: f64| -> f64 {
        match scale {
            Scale::Linear => y,
            Scale::Log10 => y.max(f64::MIN_POSITIVE).log10(),
        }
    };
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all_points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(xform(y));
        ymax = ymax.max(xform(y));
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((xform(y) - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let y_label = |frac: f64| -> f64 {
        let v = ymin + (ymax - ymin) * frac;
        match scale {
            Scale::Linear => v,
            Scale::Log10 => 10f64.powf(v),
        }
    };
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (height - 1).max(1) as f64;
        let label = if i == 0 || i == height - 1 || i == height / 2 {
            format!("{:>10.2} |", y_label(frac))
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:>12}{:<.2}{:>w$.2}\n", "", xmin, xmax, w = width - 4));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rising() -> Series {
        Series::new("up", vec![(1.0, 1.0), (2.0, 2.0), (3.0, 4.0)])
    }

    #[test]
    fn monotonicity_checks() {
        let up = rising();
        assert!(up.is_non_decreasing(0.0));
        assert!(!up.is_non_increasing(0.0));
        let down = Series::new("down", vec![(1.0, 4.0), (2.0, 2.0), (3.0, 1.0)]);
        assert!(down.is_non_increasing(0.0));
        assert!(!down.is_non_decreasing(0.0));
    }

    #[test]
    fn tolerance_allows_noise() {
        let noisy = Series::new("noisy", vec![(1.0, 10.0), (2.0, 10.2), (3.0, 9.0)]);
        assert!(noisy.is_non_increasing(0.05), "2% bump within 5% slack");
        assert!(!noisy.is_non_increasing(0.001));
    }

    #[test]
    fn flatness() {
        let flat = Series::new("flat", vec![(1.0, 5.0), (2.0, 5.05), (3.0, 4.98)]);
        assert!(flat.is_flat(0.02));
        assert!(!rising().is_flat(0.02));
        assert!(Series::new("empty", vec![]).is_flat(0.0));
    }

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let chart = render_chart(&[rising()], 40, 10, Scale::Linear);
        assert!(chart.contains('*'), "{chart}");
        assert!(chart.contains("up"), "{chart}");
        assert!(chart.lines().count() >= 12);
    }

    #[test]
    fn log_scale_compresses_large_ranges() {
        let s = Series::new("wide", vec![(1.0, 1.0), (2.0, 10.0), (3.0, 100.0), (4.0, 1000.0)]);
        let chart = render_chart(&[s], 40, 9, Scale::Log10);
        // On a log axis the four points land on evenly spaced rows; verify
        // the smallest value's row is used (bottom) and the chart renders.
        assert!(chart.contains('*'));
        assert!(chart.contains("1000"), "top label should be ~1000: {chart}");
    }

    #[test]
    fn multi_series_distinct_glyphs() {
        let a = Series::new("a", vec![(1.0, 1.0), (2.0, 1.0)]);
        let b = Series::new("b", vec![(1.0, 2.0), (2.0, 2.0)]);
        let chart = render_chart(&[a, b], 30, 8, Scale::Linear);
        assert!(chart.contains('*') && chart.contains('o'), "{chart}");
    }

    #[test]
    fn empty_chart_is_graceful() {
        assert_eq!(render_chart(&[], 10, 5, Scale::Linear), "(empty chart)\n");
    }

    #[test]
    fn single_point_does_not_panic() {
        let s = Series::new("pt", vec![(1.0, 1.0)]);
        let chart = render_chart(&[s], 20, 5, Scale::Linear);
        assert!(chart.contains('*'));
    }
}
