//! The paper-expectation registry and shape-check vocabulary.
//!
//! Absolute cycle counts depend on the authors' silicon; what a faithful
//! reproduction must preserve is each figure's *shape* — which line wins,
//! where the knee falls, what stays flat. Each experiment below carries
//! its paper claim; the `reproduce` harness evaluates the matching checks
//! against the regenerated data and records pass/fail.

use crate::series::Series;

/// Every experiment (figure/table) of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExperimentId {
    Counts,
    Table1,
    Fig3,
    Fig4,
    Fig5,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    Fig15,
    Fig16,
    Fig17,
    Fig18,
    Table2,
}

impl ExperimentId {
    /// All experiments in paper order.
    pub const ALL: [ExperimentId; 14] = [
        ExperimentId::Counts,
        ExperimentId::Table1,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Fig11,
        ExperimentId::Fig12,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
        ExperimentId::Fig16,
        ExperimentId::Fig17,
        ExperimentId::Fig18,
        ExperimentId::Table2,
    ];

    /// Short identifier used on the command line (`--exp fig11`).
    pub fn key(self) -> &'static str {
        match self {
            ExperimentId::Counts => "counts",
            ExperimentId::Table1 => "table1",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig11 => "fig11",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Fig17 => "fig17",
            ExperimentId::Fig18 => "fig18",
            ExperimentId::Table2 => "table2",
        }
    }

    /// Parses a command-line key.
    pub fn from_key(key: &str) -> Option<ExperimentId> {
        Self::ALL.iter().copied().find(|e| e.key() == key)
    }

    /// One-line description of what the paper shows.
    pub fn paper_claim(self) -> &'static str {
        match self {
            ExperimentId::Counts => {
                "510 variants from the Figure 6 file; >2000 from the four-mnemonic file"
            }
            ExperimentId::Table1 => "three test machines: SNB E31240, 2×X5650, 4×X7550",
            ExperimentId::Fig3 => {
                "matmul cycles/iteration step up with matrix size as the working set \
                 falls out of each cache level (knee near size 500)"
            }
            ExperimentId::Fig4 => "matmul at 200² is alignment-insensitive (<3% spread)",
            ExperimentId::Fig5 => {
                "unrolling the matmul kernel gains ~9% (8.2% predicted by the microbenchmark)"
            }
            ExperimentId::Fig11 => {
                "movaps loads/stores: cycles/instruction fall with unroll and rise with \
                 hierarchy level (L1<L2<L3<RAM)"
            }
            ExperimentId::Fig12 => {
                "movss: same shape as Fig 11 with lower per-instruction memory cost; \
                 ~1 cycle/load in L3 at unroll 8"
            }
            ExperimentId::Fig13 => {
                "lowering core frequency inflates L1/L2 rdtsc cycles but leaves L3/RAM flat"
            }
            ExperimentId::Fig14 => {
                "fork-mode RAM streams saturate the dual-socket X5650 at ~6 cores"
            }
            ExperimentId::Fig15 => {
                "8-core 4-array movss traversal swings 20→33 cycles across alignments"
            }
            ExperimentId::Fig16 => {
                "32-core 4-array movss traversal swings 60→90 cycles across alignments"
            }
            ExperimentId::Fig17 => {
                "128k floats: sequential improves with unroll, OpenMP is flat and faster"
            }
            ExperimentId::Fig18 => {
                "6M floats: OpenMP gain much smaller than at 128k (RAM bandwidth bound)"
            }
            ExperimentId::Table2 => {
                "OpenMP 9.42→9.31 s (~1%) vs sequential 18.30→14.39 s (~21%) over unroll 1..8"
            }
        }
    }
}

/// One evaluated shape check.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// What is being checked.
    pub name: String,
    /// Whether the regenerated data satisfies it.
    pub passed: bool,
    /// Human-readable evidence (values, ratios).
    pub detail: String,
}

impl ShapeCheck {
    /// Builds a check result.
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        ShapeCheck { name: name.into(), passed, detail: detail.into() }
    }
}

/// All checks for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeOutcome {
    /// The experiment.
    pub experiment: ExperimentId,
    /// Individual checks.
    pub checks: Vec<ShapeCheck>,
}

impl ShapeOutcome {
    /// Starts an outcome for an experiment.
    pub fn new(experiment: ExperimentId) -> Self {
        ShapeOutcome { experiment, checks: Vec::new() }
    }

    /// Adds a check.
    pub fn push(&mut self, check: ShapeCheck) {
        self.checks.push(check);
    }

    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Terminal rendering: `[PASS]`/`[FAIL]` per check.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let mark = if c.passed { "PASS" } else { "FAIL" };
            out.push_str(&format!("  [{mark}] {} — {}\n", c.name, c.detail));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Generic shape predicates used by the per-figure harnesses.
// ---------------------------------------------------------------------------

/// Checks that series (in the given order) are strictly ordered in mean Y —
/// e.g. L1 < L2 < L3 < RAM.
pub fn check_ordered(name: &str, series: &[&Series]) -> ShapeCheck {
    let means: Vec<f64> =
        series.iter().map(|s| s.ys().iter().sum::<f64>() / s.points.len().max(1) as f64).collect();
    let passed = means.windows(2).all(|w| w[0] < w[1]);
    let detail = series
        .iter()
        .zip(&means)
        .map(|(s, m)| format!("{}≈{m:.2}", s.label))
        .collect::<Vec<_>>()
        .join(" < ");
    ShapeCheck::new(name, passed, detail)
}

/// Checks the relative spread `(max−min)/min` of a series' Y values lies in
/// `[lo, hi]`.
pub fn check_spread(name: &str, series: &Series, lo: f64, hi: f64) -> ShapeCheck {
    let ys = series.ys();
    let (min, max) =
        ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| (lo.min(y), hi.max(y)));
    let spread = if min > 0.0 { (max - min) / min } else { f64::INFINITY };
    ShapeCheck::new(
        name,
        (lo..=hi).contains(&spread),
        format!("spread {:.1}% (expected {:.0}%–{:.0}%)", spread * 100.0, lo * 100.0, hi * 100.0),
    )
}

/// Finds the knee: the first X where Y exceeds `threshold ×` the first Y.
pub fn knee_x(series: &Series, threshold: f64) -> Option<f64> {
    let first = series.points.first()?.1;
    series.points.iter().find(|&&(_, y)| y > first * threshold).map(|&(x, _)| x)
}

/// Checks a saturation knee falls within `[lo, hi]` on the X axis.
pub fn check_knee(name: &str, series: &Series, threshold: f64, lo: f64, hi: f64) -> ShapeCheck {
    match knee_x(series, threshold) {
        Some(x) => ShapeCheck::new(
            name,
            (lo..=hi).contains(&x),
            format!("knee at x={x} (expected {lo}–{hi})"),
        ),
        None => ShapeCheck::new(name, false, "no knee found".to_owned()),
    }
}

/// Checks the ratio of the first to the last Y value lies in `[lo, hi]` —
/// the "improves by X%" claims.
pub fn check_improvement(name: &str, series: &Series, lo: f64, hi: f64) -> ShapeCheck {
    let (Some(first), Some(last)) = (series.points.first(), series.points.last()) else {
        return ShapeCheck::new(name, false, "empty series".to_owned());
    };
    let gain = (first.1 - last.1) / first.1;
    ShapeCheck::new(
        name,
        (lo..=hi).contains(&gain),
        format!(
            "improvement {:.1}% (expected {:.0}%–{:.0}%)",
            gain * 100.0,
            lo * 100.0,
            hi * 100.0
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(label: &str, ys: &[f64]) -> Series {
        Series::new(label, ys.iter().enumerate().map(|(i, &y)| (i as f64 + 1.0, y)).collect())
    }

    #[test]
    fn experiment_keys_roundtrip() {
        for e in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_key(e.key()), Some(e));
            assert!(!e.paper_claim().is_empty());
        }
        assert_eq!(ExperimentId::from_key("fig99"), None);
    }

    #[test]
    fn ordered_check() {
        let l1 = s("L1", &[1.0, 1.0]);
        let l2 = s("L2", &[2.0, 2.0]);
        let ram = s("RAM", &[9.0, 9.0]);
        let ok = check_ordered("hierarchy", &[&l1, &l2, &ram]);
        assert!(ok.passed, "{}", ok.detail);
        let bad = check_ordered("hierarchy", &[&ram, &l1, &l2]);
        assert!(!bad.passed);
    }

    #[test]
    fn spread_check() {
        let series = s("align", &[20.0, 26.0, 33.0]);
        // Figure 15: 65% spread.
        assert!(check_spread("fig15", &series, 0.3, 1.0).passed);
        assert!(!check_spread("fig15-too-tight", &series, 0.0, 0.1).passed);
    }

    #[test]
    fn knee_detection() {
        let series = s("fork", &[10.0, 10.1, 10.2, 10.1, 10.3, 10.2, 14.0, 18.0]);
        assert_eq!(knee_x(&series, 1.2), Some(7.0));
        let check = check_knee("fig14", &series, 1.2, 5.0, 8.0);
        assert!(check.passed, "{}", check.detail);
        let flat = s("flat", &[1.0, 1.0, 1.0]);
        assert!(!check_knee("none", &flat, 1.2, 1.0, 3.0).passed);
    }

    #[test]
    fn improvement_check() {
        // 18.30 → 14.39 ≈ 21%.
        let seq = s("seq", &[18.30, 16.97, 15.19, 14.57, 14.53, 14.39]);
        let c = check_improvement("table2-seq", &seq, 0.15, 0.30);
        assert!(c.passed, "{}", c.detail);
        // 9.42 → 9.31 ≈ 1.2%.
        let omp = s("omp", &[9.42, 9.36, 9.34, 9.31]);
        let c = check_improvement("table2-omp", &omp, 0.0, 0.05);
        assert!(c.passed, "{}", c.detail);
    }

    #[test]
    fn outcome_aggregation_and_render() {
        let mut o = ShapeOutcome::new(ExperimentId::Fig11);
        o.push(ShapeCheck::new("a", true, "fine"));
        assert!(o.passed());
        o.push(ShapeCheck::new("b", false, "broken"));
        assert!(!o.passed());
        let r = o.render();
        assert!(r.contains("[PASS] a"));
        assert!(r.contains("[FAIL] b"));
    }
}
