//! Run provenance: the `RunManifest` header block embedded in emitted
//! CSVs.
//!
//! A measurement CSV that cannot answer "which tool version, which
//! machine preset, which options, which seed produced you?" is not
//! reproducible. The manifest renders as `# key: value` comment lines
//! ahead of the CSV header — [`crate::CsvTable::parse`] skips and
//! collects them, so every existing consumer keeps working.

use std::fmt::Write as _;

/// Provenance for one tool invocation. All values are caller-supplied;
/// this type never reads clocks or the environment itself, so library
/// output stays deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunManifest {
    entries: Vec<(String, String)>,
}

impl RunManifest {
    /// An empty manifest.
    pub fn new() -> Self {
        RunManifest::default()
    }

    /// Builds the conventional manifest: tool name+version, machine
    /// preset, an options fingerprint, and the RNG seed. Timestamps, if
    /// wanted, are added by the caller via [`RunManifest::set`].
    pub fn for_run(tool: &str, version: &str, machine: &str, options_hash: u64, seed: u64) -> Self {
        let mut m = RunManifest::new();
        m.set("tool", tool);
        m.set("version", version);
        m.set("machine", machine);
        m.set("options_hash", format!("{options_hash:016x}"));
        m.set("seed", seed.to_string());
        m
    }

    /// Sets a key (replacing an existing entry of the same name; keys
    /// keep insertion order). Newlines in values are replaced by spaces
    /// so one entry stays one comment line.
    pub fn set(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        let value = value.into().replace(['\n', '\r'], " ");
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some(entry) => entry.1 = value,
            None => self.entries.push((key.to_owned(), value)),
        }
        self
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Key/value pairs in insertion order.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }

    /// True when no entries were set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the `# key: value` block, one trailing newline, ready to
    /// prepend to a CSV document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            let _ = writeln!(out, "# {key}: {value}");
        }
        out
    }

    /// Reconstructs a manifest from the comment lines a
    /// [`crate::CsvTable`] collected. Lines without `: ` are ignored
    /// (free-form comments).
    pub fn from_comments<S: AsRef<str>>(comments: &[S]) -> Self {
        let mut m = RunManifest::new();
        for line in comments {
            if let Some((key, value)) = line.as_ref().split_once(':') {
                let key = key.trim();
                if !key.is_empty() {
                    m.set(key, value.trim());
                }
            }
        }
        m
    }
}

/// FNV-1a 64-bit hash — the options fingerprint. Stable across runs and
/// platforms, dependency-free, and good enough to distinguish configs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsvTable;

    #[test]
    fn render_and_reparse_through_csv() {
        let mut manifest = RunManifest::for_run("microlauncher", "0.1.0", "core2-preset", 7, 42);
        manifest.set("timestamp", "2012-09-10T00:00:00Z");
        let doc = format!("{}kernel,cycles\nmovaps_u3,3.25\n", manifest.render());
        let table = CsvTable::parse(&doc).unwrap();
        assert_eq!(table.rows.len(), 1);
        let back = RunManifest::from_comments(&table.comments);
        assert_eq!(back.get("tool"), Some("microlauncher"));
        assert_eq!(back.get("options_hash"), Some("0000000000000007"));
        assert_eq!(back.get("seed"), Some("42"));
        assert_eq!(back.get("timestamp"), Some("2012-09-10T00:00:00Z"));
    }

    #[test]
    fn set_replaces_and_sanitizes() {
        let mut m = RunManifest::new();
        m.set("k", "one");
        m.set("k", "two\nlines");
        assert_eq!(m.entries().len(), 1);
        assert_eq!(m.get("k"), Some("two lines"));
        assert_eq!(m.render(), "# k: two lines\n");
    }

    #[test]
    fn freeform_comments_are_ignored() {
        let m = RunManifest::from_comments(&["not a manifest line", "key: value"]);
        assert_eq!(m.entries().len(), 1);
        assert_eq!(m.get("key"), Some("value"));
    }

    #[test]
    fn empty_manifest_renders_nothing() {
        assert!(RunManifest::new().is_empty());
        assert_eq!(RunManifest::new().render(), "");
    }

    #[test]
    fn fnv1a64_is_stable() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"config-a"), fnv1a64(b"config-b"));
    }
}
