//! Summary statistics over repeated measurements.

use serde::{Deserialize, Serialize};

/// Summary of a set of measurements (e.g. cycles per iteration across the
/// outer experiment loop of MicroLauncher's stability protocol).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum. The paper's figures report per-group minima ("For each
    /// unroll group, the minimum value was taken though the variance was
    /// minimal", §5.1).
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle pair for even counts).
    pub median: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty or non-finite set.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let min = sorted[0];
        let max = sorted[count - 1];
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        let variance = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Some(Summary { count, min, max, mean, median, stddev: variance.sqrt() })
    }

    /// Relative spread `(max − min) / min` — the stability metric the
    /// paper quotes ("The variation is less than 3% for any alignment
    /// configuration", §2).
    pub fn relative_spread(&self) -> f64 {
        if self.min == 0.0 {
            return f64::INFINITY;
        }
        (self.max - self.min) / self.min
    }

    /// Coefficient of variation (stddev / mean).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            return f64::INFINITY;
        }
        self.stddev / self.mean
    }
}

/// Percentile (0–100) by linear interpolation on `rank = p/100 × (n−1)`.
///
/// Tiny samples follow the same rule rather than special cases, so
/// callers deriving noise thresholds from few samples get defined
/// behavior: with `n = 1` every percentile is that sample (the rank is
/// always 0); with `n = 2` every percentile interpolates linearly
/// between the two (p95 of `{a, b}` is `a + 0.95 × (b − a)`). Returns
/// `None` for an empty set, an out-of-range `p`, or any non-finite
/// sample.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&p) || samples.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Geometric mean (all samples must be positive).
pub fn geomean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|v| v.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert!((s.stddev - 1.118).abs() < 0.001);
    }

    #[test]
    fn summary_odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn relative_spread_matches_paper_metric() {
        // 20→33 cycles (Figure 15) is a 65% spread.
        let s = Summary::of(&[20.0, 25.0, 33.0]).unwrap();
        assert!((s.relative_spread() - 0.65).abs() < 1e-9);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let s = Summary::of(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_of_single_sample_is_zero() {
        // One sample has stddev 0, so its CV is 0 — "trivially stable".
        // Adaptive measurement consumers must enforce their min-samples
        // floor separately rather than trusting this verdict.
        let s = Summary::of(&[7.5]).unwrap();
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_of_zero_mean_is_infinite() {
        // stddev/mean is undefined at mean 0; INFINITY fails every finite
        // stability threshold, which is the conservative behavior the
        // adaptive loop relies on.
        let zero = Summary::of(&[0.0, 0.0]).unwrap();
        assert_eq!(zero.cv(), f64::INFINITY);
        // Mixed-sign samples cancelling to mean 0 behave the same.
        let cancelling = Summary::of(&[-1.0, 1.0]).unwrap();
        assert_eq!(cancelling.cv(), f64::INFINITY);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        let p50 = percentile(&v, 50.0).unwrap();
        assert!((p50 - 50.5).abs() < 1e-9);
        assert!(percentile(&v, 101.0).is_none());
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn percentile_of_one_sample_is_that_sample() {
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), Some(7.5));
        }
    }

    #[test]
    fn percentile_of_two_samples_interpolates() {
        assert_eq!(percentile(&[10.0, 20.0], 0.0), Some(10.0));
        assert_eq!(percentile(&[10.0, 20.0], 50.0), Some(15.0));
        let p95 = percentile(&[10.0, 20.0], 95.0).unwrap();
        assert!((p95 - 19.5).abs() < 1e-12);
        assert_eq!(percentile(&[20.0, 10.0], 100.0), Some(20.0));
    }

    #[test]
    fn percentile_rejects_non_finite_samples() {
        assert_eq!(percentile(&[1.0, f64::NAN], 50.0), None);
        assert_eq!(percentile(&[f64::INFINITY], 95.0), None);
    }

    #[test]
    fn geomean_properties() {
        assert_eq!(geomean(&[2.0, 8.0]), Some(4.0));
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[]).is_none());
    }
}
