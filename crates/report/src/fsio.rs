//! Crash-safe file output.
//!
//! Every artifact the pipeline emits (CSV sweeps, manifests, generated
//! sources) is written through [`atomic_write`]: the contents go to a
//! hidden sibling temp file, the file is fsynced, and only then renamed
//! over the destination. A crash — or the SIGKILL the recovery smoke
//! test delivers on purpose — leaves either the complete old file or the
//! complete new file, never a torn half-write that a later `--resume` or
//! diff would trip over.

use std::io::Write;
use std::path::Path;

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, fsync, rename. The temp file is named `.{name}.tmp`, so
/// concurrent writers to *different* destinations never collide.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other(format!("not a file path: {}", path.display())))?;
    let tmp = path.with_file_name(format!(".{name}.tmp"));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_all()?;
    drop(file);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself: fsync the containing directory where the
    // platform allows opening directories (best-effort elsewhere).
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// [`atomic_write`] with the error rendered as a `String` mentioning the
/// destination — the form every CLI caller wants.
pub fn atomic_write_str(path: &Path, contents: &str) -> Result<(), String> {
    atomic_write(path, contents.as_bytes()).map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mc-report-fsio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn writes_new_files_and_replaces_old_ones() {
        let path = scratch("replace.csv");
        atomic_write(&path, b"first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        atomic_write(&path, b"second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn leaves_no_temp_file_behind() {
        let path = scratch("clean.csv");
        atomic_write(&path, b"data\n").unwrap();
        let tmp =
            path.with_file_name(format!(".{}.tmp", path.file_name().unwrap().to_str().unwrap()));
        assert!(!tmp.exists(), "temp file survived the rename");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn directoryless_paths_error_cleanly() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
