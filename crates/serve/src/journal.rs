//! The accepted-job journal: what makes the daemon crash-safe.
//!
//! Every admitted submission is appended to `journal.jsonl` in the state
//! directory *before* the client sees `202 Accepted`; terminal outcomes
//! (`done`, `failed`, `canceled`) append matching lines as they happen.
//! The format is mc-trace's JSONL event encoding — the same
//! torn-tail-tolerant, append-only shape mc-guard's checkpoint journal
//! and mc-store's ledger use — written with `O_APPEND` + `sync_data` so
//! a SIGKILL can at worst tear the final line.
//!
//! On startup [`JobJournal::replay`] folds the journal: jobs with a
//! terminal line are remembered (so `GET /jobs/<id>` answers across
//! restarts), jobs accepted but never finished are re-queued in their
//! original admission order. Because job IDs are content-derived
//! (kernel-XML fingerprint + options fingerprint — the exact key the
//! evaluation store uses), a re-run of a half-finished job warm-hits
//! every evaluation the previous process already paid for: restart
//! recovery costs only the work that was genuinely lost.
//!
//! Journal appends run through [`mc_guard::fire_write`], so `enospc@I`
//! chaos plans cover the daemon's own persistence too.

use mc_trace::{EventKind, TraceEvent};
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Journal file name inside the daemon state directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One admitted submission, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedJob {
    /// Content-derived job ID (`xmlfp-optionsfp`, both `%016x`).
    pub id: String,
    /// Submitting client.
    pub client: String,
    /// Document/kernel name.
    pub name: String,
    /// Whitespace-separated launcher option args.
    pub options_args: Vec<String>,
    /// The kernel description XML.
    pub xml: String,
}

/// A job's journaled terminal outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Result document written, `bytes` long.
    Done { bytes: u64 },
    /// Terminal failure of `kind` ("panic", "timeout", …).
    Failed { kind: String, message: String },
    /// Canceled by request.
    Canceled,
}

/// What a replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Jobs with a terminal outcome, in last-outcome order.
    pub finished: Vec<(AcceptedJob, Outcome)>,
    /// Jobs accepted but not finished, in admission order — the restart
    /// work queue.
    pub pending: Vec<AcceptedJob>,
}

/// Append-only journal handle.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
}

impl JobJournal {
    /// A journal living in `state_dir` (created lazily on first append).
    pub fn open(state_dir: &Path) -> JobJournal {
        JobJournal { path: state_dir.join(JOURNAL_FILE) }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, event: &TraceEvent) -> std::io::Result<()> {
        mc_guard::fire_write(JOURNAL_FILE)?;
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        let mut line = event.to_json();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()
    }

    /// Journals an admission. Must succeed before the job is queued.
    pub fn accepted(&self, job: &AcceptedJob) -> std::io::Result<()> {
        self.append(
            &TraceEvent::new(EventKind::Event, "serve.accepted")
                .with("job", job.id.as_str())
                .with("client", job.client.as_str())
                .with("name", job.name.as_str())
                .with("options", job.options_args.join(" "))
                .with("xml", job.xml.as_str()),
        )
    }

    /// Journals a completion.
    pub fn done(&self, id: &str, bytes: u64) -> std::io::Result<()> {
        self.append(
            &TraceEvent::new(EventKind::Event, "serve.done").with("job", id).with("bytes", bytes),
        )
    }

    /// Journals a terminal failure.
    pub fn failed(&self, id: &str, kind: &str, message: &str) -> std::io::Result<()> {
        self.append(
            &TraceEvent::new(EventKind::Event, "serve.failed")
                .with("job", id)
                .with("kind", kind)
                .with("message", message),
        )
    }

    /// Journals a cancellation.
    pub fn canceled(&self, id: &str) -> std::io::Result<()> {
        self.append(&TraceEvent::new(EventKind::Event, "serve.canceled").with("job", id))
    }

    /// Folds the journal into finished and still-pending jobs. Unparseable
    /// lines (the torn tail of a crash) and outcome lines for unknown
    /// jobs are skipped, never fatal.
    pub fn replay(&self) -> Replay {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(_) => return Replay::default(),
        };
        let mut accepted: Vec<AcceptedJob> = Vec::new();
        let mut outcomes: Vec<(String, Outcome)> = Vec::new();
        for line in text.lines() {
            let Ok(event) = TraceEvent::from_json(line) else { continue };
            let field = |key: &str| {
                event.field(key).and_then(|v| v.as_str()).map(str::to_owned).unwrap_or_default()
            };
            match event.name.as_str() {
                "serve.accepted" => accepted.push(AcceptedJob {
                    id: field("job"),
                    client: field("client"),
                    name: field("name"),
                    options_args: field("options").split_whitespace().map(str::to_owned).collect(),
                    xml: field("xml"),
                }),
                "serve.done" => {
                    let bytes = event.field("bytes").and_then(|v| v.as_u64()).unwrap_or(0);
                    outcomes.push((field("job"), Outcome::Done { bytes }));
                }
                "serve.failed" => outcomes.push((
                    field("job"),
                    Outcome::Failed { kind: field("kind"), message: field("message") },
                )),
                "serve.canceled" => outcomes.push((field("job"), Outcome::Canceled)),
                _ => {}
            }
        }
        let mut replay = Replay::default();
        for job in accepted {
            // Duplicates collapse: the same content-derived ID is only
            // one job however many times it was submitted.
            let known = replay.pending.iter().any(|j| j.id == job.id)
                || replay.finished.iter().any(|(j, _)| j.id == job.id);
            if known {
                continue;
            }
            match outcomes.iter().rev().find(|(id, _)| *id == job.id) {
                Some((_, outcome)) => replay.finished.push((job, outcome.clone())),
                None => replay.pending.push(job),
            }
        }
        replay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mc-serve-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn job(id: &str) -> AcceptedJob {
        AcceptedJob {
            id: id.to_owned(),
            client: "alice".to_owned(),
            name: "loadstore".to_owned(),
            options_args: vec!["--repetitions=4".to_owned(), "--tripcount=64".to_owned()],
            xml: "<kernel name=\"k\">\n</kernel>".to_owned(),
        }
    }

    #[test]
    fn replay_separates_finished_from_pending_in_admission_order() {
        let dir = temp_dir("replay");
        let journal = JobJournal::open(&dir);
        journal.accepted(&job("aa-1")).unwrap();
        journal.accepted(&job("bb-2")).unwrap();
        journal.accepted(&job("cc-3")).unwrap();
        journal.done("bb-2", 123).unwrap();
        journal.failed("cc-3", "panic", "boom").unwrap();
        let replay = journal.replay();
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0], job("aa-1"), "fields survive the round trip");
        assert_eq!(replay.finished.len(), 2);
        assert_eq!(replay.finished[0].1, Outcome::Done { bytes: 123 });
        assert_eq!(
            replay.finished[1].1,
            Outcome::Failed { kind: "panic".to_owned(), message: "boom".to_owned() }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_torn_tail_and_duplicate_admissions_are_tolerated() {
        let dir = temp_dir("torn");
        let journal = JobJournal::open(&dir);
        journal.accepted(&job("aa-1")).unwrap();
        journal.accepted(&job("aa-1")).unwrap(); // duplicate submission
                                                 // Simulate a crash mid-append: garbage trailing bytes.
        let mut file = OpenOptions::new().append(true).open(journal.path()).unwrap();
        file.write_all(b"{\"seq\":9,\"us\":1,\"kind\":\"ev").unwrap();
        drop(file);
        let replay = journal.replay();
        assert_eq!(replay.pending.len(), 1, "duplicate collapses, torn tail skipped");
        assert!(replay.finished.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_missing_journal_replays_to_nothing() {
        let dir = temp_dir("missing");
        let replay = JobJournal::open(&dir.join("nope")).replay();
        assert!(replay.pending.is_empty() && replay.finished.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
