//! The daemon core: admission, the journaled job queue, and the
//! scheduler that drives jobs through the shared evaluation engine.
//!
//! ## Life of a submission
//!
//! `submit` validates cheaply (launcher options parse, kernel XML parse —
//! no generation, no simulation), derives the content-addressed job ID,
//! and walks the admission ladder: duplicate collapse → per-client error
//! budget → bounded queue → token bucket. Only then is the job journaled
//! (crash safety) and queued. Every rejection is typed and carries a
//! retry hint, so clients distinguish "slow down" from "go away".
//!
//! ## Life of a job
//!
//! One scheduler thread owns job execution; within a job, evaluation
//! points fan out across the process-wide `mc-exec` pool, so `--jobs`
//! controls intra-job parallelism while jobs themselves serialize —
//! measurements never fight each other for the machine, which is the
//! whole point of MicroLauncher's §4 environment control. Points run in
//! chunks so the scheduler can observe cancellation, deadlines, drain,
//! and halt between chunks; completed chunks live in the evaluation
//! store, so any interrupted job re-runs warm.
//!
//! ## Determinism contract
//!
//! A job's result document depends only on its kernel XML and launcher
//! options: the manifest omits the worker count, wall-clock timestamps,
//! and submitting client. `jobs=1` and `jobs=8` daemons produce
//! byte-identical payloads, as do chaos and fault-free runs for the
//! jobs the chaos plan spares.

use crate::journal::{AcceptedJob, JobJournal, Outcome};
use crate::quota::{ClientQuotas, QuotaConfig, Take};
use mc_launcher::launcher::RunReport;
use mc_launcher::{EvalPoint, LauncherOptions};
use mc_pulse::{HttpLimits, Registry, RunRecord};
use mc_report::RunManifest;
use mc_store::StoreCounters;
use mc_trace::{diag, EventKind, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Points evaluated per scheduler slice; flags (cancel, deadline, drain,
/// halt) are observed between slices.
const CHUNK: usize = 8;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: journal, result documents.
    pub state_dir: PathBuf,
    /// Evaluation store root (`None` = no persistent store).
    pub store_dir: Option<PathBuf>,
    /// Registry root for the drain-time run record (`None` = skip).
    pub registry_root: Option<PathBuf>,
    /// Maximum queued (not yet running) jobs before submissions shed.
    pub queue_depth: usize,
    /// Per-client admission quotas.
    pub quota: QuotaConfig,
    /// Per-job wall-clock deadline in milliseconds (0 = none).
    pub job_deadline_ms: u64,
    /// HTTP hardening limits for the API listener.
    pub limits: HttpLimits,
}

impl ServeConfig {
    /// A config rooted at `state_dir` with defaults everywhere else.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            store_dir: None,
            registry_root: None,
            queue_depth: 64,
            quota: QuotaConfig::default(),
            job_deadline_ms: 0,
            limits: HttpLimits::default(),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for the scheduler.
    Queued,
    /// Being evaluated.
    Running,
    /// Result document written (`bytes` long).
    Done {
        /// Result document size.
        bytes: u64,
    },
    /// Terminal failure.
    Failed {
        /// Failure class ("panic", "timeout", "generation", …).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// Canceled by request.
    Canceled,
}

impl JobState {
    /// Short wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// True for states that never change again.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done { .. } | JobState::Failed { .. } | JobState::Canceled)
    }
}

/// A typed admission rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The submission failed validation (bad options, bad XML).
    Invalid(String),
    /// The client's token bucket is empty; retry after the hint.
    RateLimited {
        /// Milliseconds until a token is available.
        retry_after_ms: u64,
    },
    /// The job queue is at capacity; retry after the hint.
    QueueFull {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The client spent its error budget; refused until restart.
    OverErrorBudget {
        /// Terminal failures recorded for the client.
        failures: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The daemon is draining and admits nothing.
    Draining,
    /// The daemon could not persist the admission (e.g. full disk).
    Unavailable(String),
}

/// What a submission produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Newly admitted at this queue position (1-based).
    Accepted {
        /// Content-derived job ID.
        job: String,
        /// 1-based queue position at admission.
        position: usize,
    },
    /// The same content was already submitted; no new work.
    Duplicate {
        /// The existing job's ID.
        job: String,
        /// Its current state name.
        state: String,
    },
    /// Refused, with the reason.
    Rejected(Reject),
}

/// One parsed submission, before admission.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Submitting client (quota key).
    pub client: String,
    /// Document name override (`None` = the kernel's own name).
    pub name: Option<String>,
    /// Launcher option args (`--key=value`, no whitespace inside).
    pub options_args: Vec<String>,
    /// Kernel description XML.
    pub xml: String,
}

/// A read-only job snapshot for the API layer.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Content-derived job ID.
    pub id: String,
    /// Submitting client.
    pub client: String,
    /// Document name.
    pub name: String,
    /// Current state.
    pub state: JobState,
}

/// Daemon health counters for `/healthz`.
#[derive(Debug, Clone, Default)]
pub struct Health {
    /// Queued jobs.
    pub queued: u64,
    /// Running jobs (0 or 1).
    pub running: u64,
    /// Completed jobs.
    pub done: u64,
    /// Failed jobs.
    pub failed: u64,
    /// Canceled jobs.
    pub canceled: u64,
    /// True once drain was requested.
    pub draining: bool,
    /// Evaluation-store counters, when a store is attached.
    pub store: Option<StoreCounters>,
}

struct JobEntry {
    job: AcceptedJob,
    state: JobState,
    cancel: bool,
    events: Vec<String>,
}

impl JobEntry {
    fn push_event(&mut self, event: TraceEvent) {
        self.events.push(event.to_json());
    }

    fn state_event(&self) -> TraceEvent {
        TraceEvent::new(EventKind::Event, "serve.job")
            .with("job", self.job.id.as_str())
            .with("state", self.state.name())
    }
}

struct Inner {
    jobs: BTreeMap<String, JobEntry>,
    queue: VecDeque<String>,
    quotas: ClientQuotas,
}

/// The sweep daemon: admission control, journaled queue, scheduler.
pub struct Daemon {
    config: ServeConfig,
    journal: JobJournal,
    inner: Mutex<Inner>,
    wake: Condvar,
    draining: AtomicBool,
    halted: AtomicBool,
    store: Option<Arc<mc_store::DiskStore>>,
}

impl Daemon {
    /// Opens (or re-opens) a daemon over `config.state_dir`: creates the
    /// state layout, attaches the evaluation store, and replays the job
    /// journal — finished jobs become queryable history, unfinished ones
    /// re-enter the queue in admission order.
    pub fn open(config: ServeConfig) -> std::io::Result<Arc<Daemon>> {
        fs::create_dir_all(config.state_dir.join("results"))?;
        let store = match &config.store_dir {
            Some(dir) => Some(mc_launcher::store::install_store(dir)),
            None => {
                mc_launcher::store::clear_store();
                None
            }
        };
        let journal = JobJournal::open(&config.state_dir);
        let replay = journal.replay();
        let mut inner = Inner {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            quotas: ClientQuotas::new(config.quota),
        };
        for (job, outcome) in replay.finished {
            let state = match outcome {
                Outcome::Done { bytes } => JobState::Done { bytes },
                Outcome::Failed { kind, message } => JobState::Failed { kind, message },
                Outcome::Canceled => JobState::Canceled,
            };
            let id = job.id.clone();
            let mut entry = JobEntry { job, state, cancel: false, events: Vec::new() };
            entry.push_event(entry.state_event());
            inner.jobs.insert(id, entry);
        }
        let recovered = replay.pending.len();
        for job in replay.pending {
            let id = job.id.clone();
            let mut entry =
                JobEntry { job, state: JobState::Queued, cancel: false, events: Vec::new() };
            entry.push_event(
                TraceEvent::new(EventKind::Event, "serve.job")
                    .with("job", id.as_str())
                    .with("state", "queued")
                    .with("recovered", true),
            );
            inner.jobs.insert(id.clone(), entry);
            inner.queue.push_back(id);
        }
        if recovered > 0 {
            diag!("mc-serve: recovered {recovered} unfinished job(s) from the journal");
        }
        Ok(Arc::new(Daemon {
            config,
            journal,
            inner: Mutex::new(inner),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            store,
        }))
    }

    /// The governing configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Starts the scheduler thread. Call once; join the handle after
    /// [`Daemon::drain`] or [`Daemon::halt`].
    pub fn start(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let daemon = Arc::clone(self);
        std::thread::Builder::new()
            .name("mc-serve-sched".into())
            .spawn(move || daemon.scheduler())
            .expect("spawn scheduler")
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Validates and admits one submission at `now`.
    pub fn submit(&self, submission: &Submission, now: Instant) -> Submitted {
        if self.draining.load(Ordering::Acquire) {
            return Submitted::Rejected(Reject::Draining);
        }
        if let Some(bad) = submission.options_args.iter().find(|a| a.contains(char::is_whitespace))
        {
            return Submitted::Rejected(Reject::Invalid(format!(
                "option argument contains whitespace: `{bad}`"
            )));
        }
        let options = match LauncherOptions::from_args_over(
            LauncherOptions::default(),
            &submission.options_args,
        ) {
            Ok(o) => o,
            Err(e) => return Submitted::Rejected(Reject::Invalid(e)),
        };
        let desc = match mc_kernel::xml::parse_kernel(&submission.xml) {
            Ok(d) => d,
            Err(e) => {
                return Submitted::Rejected(Reject::Invalid(format!("kernel XML rejected: {e}")))
            }
        };
        let name = submission.name.clone().unwrap_or(desc.name);
        let id = job_id(&submission.xml, &options);
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get(&id) {
            return Submitted::Duplicate { job: id, state: entry.state.name().to_owned() };
        }
        if inner.quotas.over_budget(&submission.client) {
            return Submitted::Rejected(Reject::OverErrorBudget {
                failures: inner.quotas.failure_count(&submission.client),
                budget: inner.quotas.config().max_failures,
            });
        }
        if inner.queue.len() >= self.config.queue_depth {
            // Suggest waiting roughly one queue-drain interval, bounded.
            let retry_after_ms = ((inner.queue.len() as u64) * 250).clamp(250, 5_000);
            return Submitted::Rejected(Reject::QueueFull { retry_after_ms });
        }
        if let Take::Denied { retry_after_ms } = inner.quotas.try_take(&submission.client, now) {
            return Submitted::Rejected(Reject::RateLimited { retry_after_ms });
        }
        let job = AcceptedJob {
            id: id.clone(),
            client: submission.client.clone(),
            name,
            options_args: submission.options_args.clone(),
            xml: submission.xml.clone(),
        };
        // Journal before queueing: once the client sees 202, a crash
        // cannot lose the job.
        if let Err(e) = self.journal.accepted(&job) {
            return Submitted::Rejected(Reject::Unavailable(format!("journal append failed: {e}")));
        }
        let mut entry =
            JobEntry { job, state: JobState::Queued, cancel: false, events: Vec::new() };
        entry.push_event(entry.state_event());
        inner.jobs.insert(id.clone(), entry);
        inner.queue.push_back(id.clone());
        let position = inner.queue.len();
        drop(inner);
        self.wake.notify_all();
        Submitted::Accepted { job: id, position }
    }

    /// One job's snapshot.
    pub fn job(&self, id: &str) -> Option<JobView> {
        let inner = self.lock();
        inner.jobs.get(id).map(|entry| JobView {
            id: entry.job.id.clone(),
            client: entry.job.client.clone(),
            name: entry.job.name.clone(),
            state: entry.state.clone(),
        })
    }

    /// Every job's snapshot, in ID order.
    pub fn jobs(&self) -> Vec<JobView> {
        let inner = self.lock();
        inner
            .jobs
            .values()
            .map(|entry| JobView {
                id: entry.job.id.clone(),
                client: entry.job.client.clone(),
                name: entry.job.name.clone(),
                state: entry.state.clone(),
            })
            .collect()
    }

    /// A job's progress events as JSONL text.
    pub fn events_text(&self, id: &str) -> Option<String> {
        let inner = self.lock();
        inner.jobs.get(id).map(|entry| {
            let mut out = String::new();
            for line in &entry.events {
                out.push_str(line);
                out.push('\n');
            }
            out
        })
    }

    /// The result document path for a job ID.
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.config.state_dir.join("results").join(format!("{id}.csv"))
    }

    /// The result document, once the job is done.
    pub fn result_bytes(&self, id: &str) -> Option<Vec<u8>> {
        match self.job(id)?.state {
            JobState::Done { .. } => fs::read(self.result_path(id)).ok(),
            _ => None,
        }
    }

    /// Requests cancellation. Queued jobs cancel immediately; running
    /// jobs cancel at the next chunk boundary. Returns the resulting
    /// state name, or `Err` with the state of an already-terminal job.
    pub fn cancel(&self, id: &str) -> Result<&'static str, String> {
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get_mut(id) else {
            return Err("unknown job".to_owned());
        };
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Canceled;
                entry.cancel = true;
                let event = entry.state_event();
                entry.push_event(event);
                inner.queue.retain(|queued| queued != id);
                drop(inner);
                if let Err(e) = self.journal.canceled(id) {
                    diag!("mc-serve: journal cancel failed: {e}");
                }
                Ok("canceled")
            }
            JobState::Running => {
                entry.cancel = true;
                Ok("canceling")
            }
            ref state => Err(format!("job already {}", state.name())),
        }
    }

    /// Health counters for `/healthz`.
    pub fn health(&self) -> Health {
        let inner = self.lock();
        let mut health = Health {
            draining: self.draining.load(Ordering::Acquire),
            store: self.store.as_ref().map(|s| s.counters()),
            ..Health::default()
        };
        for entry in inner.jobs.values() {
            match entry.state {
                JobState::Queued => health.queued += 1,
                JobState::Running => health.running += 1,
                JobState::Done { .. } => health.done += 1,
                JobState::Failed { .. } => health.failed += 1,
                JobState::Canceled => health.canceled += 1,
            }
        }
        health
    }

    /// True once drain was requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Begins a graceful drain: stop admitting, let the running job
    /// checkpoint at its next chunk boundary, keep queued jobs journaled
    /// for the next process. Join the scheduler handle, then call
    /// [`Daemon::finish_drain`].
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// Hard stop with no flush — the in-process stand-in for SIGKILL
    /// (and the test hook proving journal recovery). The scheduler exits
    /// at the next chunk boundary; nothing is flushed or registered.
    pub fn halt(&self) {
        self.halted.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// Drain epilogue, after the scheduler thread is joined: flush (and
    /// possibly compact) the store ledger, then register the serving run
    /// in the pulse registry so `mc-report history` sees daemon sessions.
    pub fn finish_drain(&self) {
        if let Some(store) = &self.store {
            store.flush_ledger();
        }
        let Some(root) = &self.config.registry_root else { return };
        let health = self.health();
        let mut manifest = RunManifest::new();
        manifest.set("tool", "mc-serve");
        manifest.set("state", self.config.state_dir.display().to_string());
        manifest.set("jobs_done", health.done.to_string());
        manifest.set("jobs_failed", health.failed.to_string());
        manifest.set("jobs_canceled", health.canceled.to_string());
        manifest.set("jobs_pending", (health.queued + health.running).to_string());
        if let Some(counters) = &health.store {
            manifest.set("store_hit_disk", counters.hit_disk.to_string());
            manifest.set("store_saved", counters.saved.to_string());
        }
        let record = RunRecord::new("mc-serve", env!("CARGO_PKG_VERSION"), 0, manifest);
        match Registry::open(root).register(&record) {
            Ok(run_id) => diag!("mc-serve: registered drain record {run_id}"),
            Err(e) => diag!("mc-serve: registry record failed: {e}"),
        }
    }

    fn scheduler(&self) {
        loop {
            let next = {
                let mut inner = self.lock();
                loop {
                    if self.halted.load(Ordering::Acquire) || self.draining.load(Ordering::Acquire)
                    {
                        break None;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        break Some(id);
                    }
                    let (guard, _timeout) = self
                        .wake
                        .wait_timeout(inner, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner());
                    inner = guard;
                }
            };
            let Some(id) = next else { return };
            self.run_job(&id);
        }
    }

    /// Marks `id` failed, journals it, and charges the client's budget.
    fn fail_job(&self, id: &str, kind: &str, message: &str) {
        if let Err(e) = self.journal.failed(id, kind, message) {
            diag!("mc-serve: journal failure record failed: {e}");
        }
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get_mut(id) else { return };
        entry.state = JobState::Failed { kind: kind.to_owned(), message: message.to_owned() };
        let event = entry.state_event().with("kind", kind).with("message", message);
        entry.push_event(event);
        let client = entry.job.client.clone();
        inner.quotas.note_failure(&client);
    }

    fn run_job(&self, id: &str) {
        let job = {
            let mut inner = self.lock();
            let Some(entry) = inner.jobs.get_mut(id) else { return };
            if entry.state != JobState::Queued {
                // Canceled while queued (entry already terminal).
                return;
            }
            entry.state = JobState::Running;
            let event = entry.state_event();
            entry.push_event(event);
            entry.job.clone()
        };
        let options =
            match LauncherOptions::from_args_over(LauncherOptions::default(), &job.options_args) {
                Ok(o) => o,
                Err(e) => return self.fail_job(id, "invalid", &e),
            };
        // Generation runs outside guard supervision (it is per job, not
        // per point), so catch panics here.
        let generated = catch_unwind(AssertUnwindSafe(|| {
            mc_creator::MicroCreator::new().generate_from_xml(&job.xml)
        }));
        let programs = match generated {
            Ok(Ok(result)) => result.programs,
            Ok(Err(e)) => return self.fail_job(id, "generation", &e.to_string()),
            Err(panic) => return self.fail_job(id, "panic", &panic_message(&panic)),
        };
        if programs.is_empty() {
            return self.fail_job(id, "generation", "kernel generated no programs");
        }
        let programs: Vec<Arc<mc_kernel::Program>> = programs.into_iter().map(Arc::new).collect();
        let base = Arc::new(options);
        let deadline = (self.config.job_deadline_ms > 0)
            .then(|| Instant::now() + Duration::from_millis(self.config.job_deadline_ms));
        let total = programs.len();
        let mut rows: Vec<String> = Vec::with_capacity(total);
        for chunk in programs.chunks(CHUNK) {
            // Observe control flags between chunks. Halt and drain leave
            // the job without a terminal journal line: the next process
            // re-runs it and warm-hits everything evaluated so far.
            if self.halted.load(Ordering::Acquire) || self.draining.load(Ordering::Acquire) {
                return;
            }
            {
                let inner = self.lock();
                if inner.jobs.get(id).is_some_and(|entry| entry.cancel) {
                    drop(inner);
                    if let Err(e) = self.journal.canceled(id) {
                        diag!("mc-serve: journal cancel failed: {e}");
                    }
                    let mut inner = self.lock();
                    if let Some(entry) = inner.jobs.get_mut(id) {
                        entry.state = JobState::Canceled;
                        let event = entry.state_event();
                        entry.push_event(event);
                    }
                    return;
                }
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return self.fail_job(
                    id,
                    "timeout",
                    &format!("job deadline of {} ms exceeded", self.config.job_deadline_ms),
                );
            }
            let points: Vec<EvalPoint> =
                chunk.iter().map(|p| EvalPoint::new(p.clone(), base.clone())).collect();
            for (program, result) in chunk.iter().zip(mc_launcher::try_run_batch_supervised(points))
            {
                match result {
                    Ok(report) => rows.push(report.csv_row()),
                    Err(error) => {
                        // One faulted point fails the whole job, typed:
                        // partial sweeps are not useful measurements.
                        return self.fail_job(
                            id,
                            error.kind.name(),
                            &format!("{}: {error}", program.name),
                        );
                    }
                }
            }
            let mut inner = self.lock();
            if let Some(entry) = inner.jobs.get_mut(id) {
                entry.push_event(
                    TraceEvent::new(EventKind::Event, "serve.progress")
                        .with("job", id)
                        .with("points_done", rows.len())
                        .with("points_total", total),
                );
            }
        }
        let document = render_document(&base, id, &job.name, &rows);
        let bytes = document.len() as u64;
        if let Err(e) = self.write_result(id, &document) {
            return self.fail_job(id, "io", &format!("result write failed: {e}"));
        }
        // Result first, journal second: a crash between the two re-runs
        // the job, which rewrites the identical document.
        if let Err(e) = self.journal.done(id, bytes) {
            diag!("mc-serve: journal completion record failed: {e}");
        }
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get_mut(id) {
            entry.state = JobState::Done { bytes };
            let event = entry.state_event().with("bytes", bytes);
            entry.push_event(event);
        }
    }

    /// Atomically writes a result document (unique temp + fsync + rename,
    /// the store's crash-safe pattern), under `fire_write` chaos coverage.
    fn write_result(&self, id: &str, document: &str) -> std::io::Result<()> {
        let path = self.result_path(id);
        mc_guard::fire_write("result.csv")?;
        let dir = path.parent().expect("results dir");
        fs::create_dir_all(dir)?;
        let temp = dir.join(format!(".{id}.{}.tmp", std::process::id()));
        let result = (|| {
            let mut file = fs::File::create(&temp)?;
            use std::io::Write as _;
            file.write_all(document.as_bytes())?;
            file.sync_data()?;
            drop(file);
            fs::rename(&temp, &path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&temp);
        }
        result
    }
}

/// Content-derived job ID: kernel-XML fingerprint plus options
/// fingerprint, rendered exactly like the evaluation store's keys.
pub fn job_id(xml: &str, options: &LauncherOptions) -> String {
    format!("{:016x}-{:016x}", mc_report::fnv1a64(xml.trim().as_bytes()), options.fingerprint())
}

/// The deterministic result document: provenance manifest (minus every
/// volatile key), CSV header, rows in generation order.
fn render_document(base: &LauncherOptions, id: &str, name: &str, rows: &[String]) -> String {
    let full = base.manifest("mc-serve", env!("CARGO_PKG_VERSION"));
    let mut manifest = RunManifest::new();
    for (key, value) in full.entries() {
        // The worker count changes nothing about the measurements and
        // would break the jobs=1 ≡ jobs=8 byte-identity contract.
        if key == "jobs" {
            continue;
        }
        manifest.set(key, value.clone());
    }
    manifest.set("job", id);
    manifest.set("kernel", name);
    let mut document = manifest.render();
    document.push_str(RunReport::csv_header());
    document.push('\n');
    for row in rows {
        document.push_str(row);
        document.push('\n');
    }
    document
}

/// Best-effort panic payload extraction.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}
