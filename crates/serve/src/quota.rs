//! Per-client admission quotas: token buckets plus an error budget.
//!
//! Every submitting client gets a [`TokenBucket`] — `capacity` tokens,
//! refilled continuously at `refill_per_sec` — and a failure tally.
//! Admission takes one token per accepted job; an empty bucket yields a
//! typed rejection carrying the exact time until the next token, which
//! the API layer surfaces as `429` + `Retry-After`. Failures (a client's
//! jobs panicking or timing out) count against an error budget modeled
//! on [`mc_guard::GuardPolicy`]: once a client exceeds `max_failures`
//! terminal job failures, further submissions are refused until the
//! daemon restarts — a misbehaving submitter cannot grind the pool
//! through an endless stream of doomed kernels, and other clients keep
//! their own untouched buckets.
//!
//! All decision methods take `now: Instant` so tests drive time
//! explicitly instead of sleeping.

use std::collections::HashMap;
use std::time::Instant;

/// Admission-control knobs, per client.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Burst size: tokens a fresh (or long-idle) client holds.
    pub capacity: f64,
    /// Sustained rate: tokens regained per second.
    pub refill_per_sec: f64,
    /// Terminal job failures tolerated before the client is refused
    /// outright (mirrors the guard's error budget).
    pub max_failures: u64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig { capacity: 16.0, refill_per_sec: 4.0, max_failures: 8 }
    }
}

/// One client's refillable token bucket.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

/// What the bucket said to one take attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Take {
    /// A token was consumed; admit.
    Granted,
    /// Bucket empty; retry after this many milliseconds.
    Denied { retry_after_ms: u64 },
}

/// The per-client quota table.
#[derive(Debug)]
pub struct ClientQuotas {
    config: QuotaConfig,
    buckets: HashMap<String, TokenBucket>,
    failures: HashMap<String, u64>,
}

impl ClientQuotas {
    /// An empty table under `config`.
    pub fn new(config: QuotaConfig) -> Self {
        ClientQuotas { config, buckets: HashMap::new(), failures: HashMap::new() }
    }

    /// The governing configuration.
    pub fn config(&self) -> &QuotaConfig {
        &self.config
    }

    /// Attempts to take one admission token for `client` at `now`.
    pub fn try_take(&mut self, client: &str, now: Instant) -> Take {
        let config = self.config;
        let bucket = self
            .buckets
            .entry(client.to_owned())
            .or_insert_with(|| TokenBucket { tokens: config.capacity, last: now });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * config.refill_per_sec).min(config.capacity);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Take::Granted;
        }
        let retry_after_ms = if config.refill_per_sec > 0.0 {
            (((1.0 - bucket.tokens) / config.refill_per_sec) * 1000.0).ceil() as u64
        } else {
            // No refill configured: the bucket never recovers; report a
            // long but finite backoff so clients keep a retry path.
            60_000
        };
        Take::Denied { retry_after_ms: retry_after_ms.max(1) }
    }

    /// Records one terminal job failure against `client`.
    pub fn note_failure(&mut self, client: &str) {
        *self.failures.entry(client.to_owned()).or_insert(0) += 1;
    }

    /// This client's terminal failure count so far.
    pub fn failure_count(&self, client: &str) -> u64 {
        self.failures.get(client).copied().unwrap_or(0)
    }

    /// True once `client` has spent its error budget (strictly more
    /// failures than the budget, matching `mc_guard::over_budget`).
    pub fn over_budget(&self, client: &str) -> bool {
        self.failure_count(client) > self.config.max_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quotas(capacity: f64, refill: f64) -> ClientQuotas {
        ClientQuotas::new(QuotaConfig {
            capacity,
            refill_per_sec: refill,
            ..QuotaConfig::default()
        })
    }

    #[test]
    fn a_burst_drains_the_bucket_and_reports_the_refill_time() {
        let mut q = quotas(2.0, 4.0);
        let t0 = Instant::now();
        assert_eq!(q.try_take("a", t0), Take::Granted);
        assert_eq!(q.try_take("a", t0), Take::Granted);
        match q.try_take("a", t0) {
            Take::Denied { retry_after_ms } => {
                // One token at 4/s is 250 ms away.
                assert!((1..=250).contains(&retry_after_ms), "{retry_after_ms}");
            }
            Take::Granted => panic!("third take should be denied"),
        }
        // After the advertised wait, a token is back.
        assert_eq!(q.try_take("a", t0 + Duration::from_millis(250)), Take::Granted);
    }

    #[test]
    fn clients_have_independent_buckets() {
        let mut q = quotas(1.0, 1.0);
        let t0 = Instant::now();
        assert_eq!(q.try_take("a", t0), Take::Granted);
        assert!(matches!(q.try_take("a", t0), Take::Denied { .. }));
        assert_eq!(q.try_take("b", t0), Take::Granted, "b is unaffected by a's burst");
    }

    #[test]
    fn zero_refill_reports_a_finite_backoff() {
        let mut q = quotas(1.0, 0.0);
        let t0 = Instant::now();
        assert_eq!(q.try_take("a", t0), Take::Granted);
        assert_eq!(q.try_take("a", t0), Take::Denied { retry_after_ms: 60_000 });
    }

    #[test]
    fn the_error_budget_trips_strictly_past_max_failures() {
        let mut q = ClientQuotas::new(QuotaConfig { max_failures: 2, ..QuotaConfig::default() });
        q.note_failure("a");
        q.note_failure("a");
        assert!(!q.over_budget("a"), "at the budget is still admissible");
        q.note_failure("a");
        assert!(q.over_budget("a"));
        assert!(!q.over_budget("b"), "budgets are per client");
    }
}
