//! mc-serve: the crash-safe sweep daemon.
//!
//! Everything before this crate is a *process*: you run `microlauncher`
//! or `mc-sweep`, it measures, it exits. This crate turns the toolchain
//! into a *service* — a long-running daemon that accepts kernel-XML +
//! sweep-spec submissions over std-only HTTP/JSON, admission-controls
//! them, schedules them on the shared evaluation engine, and survives
//! being killed at any instant:
//!
//! * [`quota`] — per-client token buckets plus an error budget modeled
//!   on mc-guard's policy: typed `429` rejections with exact retry
//!   hints, and a cutoff for clients whose kernels keep failing;
//! * [`journal`] — the accepted-job journal (mc-trace JSONL, appended
//!   and synced, torn-tail-tolerant) that makes `202 Accepted` a durable
//!   promise: a SIGKILL'd daemon replays it on restart and re-runs only
//!   what was genuinely lost, warm-hitting the evaluation store for
//!   everything already paid for (job IDs are the store's own
//!   content-derived keys);
//! * [`daemon`] — admission ladder, the bounded queue, the scheduler
//!   (serial jobs, intra-job parallelism via mc-exec), per-job
//!   deadlines and cancellation, graceful drain, and the byte-identical
//!   result-document contract;
//! * [`api`] — the HTTP routes on mc-pulse's hardened request reader.
//!
//! The `mc-serve` binary wires in SIGTERM→drain and `MICROTOOLS_FAULT`
//! chaos plans; `mc-loadgen` replays recorded submission mixes against
//! a live daemon at configurable concurrency.

pub mod api;
pub mod daemon;
pub mod journal;
pub mod quota;

pub use api::{parse_envelope, ApiServer};
pub use daemon::{
    job_id, Daemon, Health, JobState, JobView, Reject, ServeConfig, Submission, Submitted,
};
pub use journal::{AcceptedJob, JobJournal, Outcome, Replay};
pub use quota::{ClientQuotas, QuotaConfig, Take};
