//! The HTTP/JSON surface of the daemon.
//!
//! Routes (all answers JSON unless noted):
//!
//! | Route | What it does |
//! |---|---|
//! | `POST /submit` | Admit a kernel-XML + sweep-spec envelope |
//! | `GET /jobs` | Every job's state |
//! | `GET /jobs/<id>` | One job's state |
//! | `GET /jobs/<id>/result` | The result document (`text/csv`) |
//! | `GET /jobs/<id>/events` | Per-job progress as JSONL |
//! | `POST /jobs/<id>/cancel` | Cancel a queued or running job |
//! | `POST /drain` | Begin graceful shutdown |
//! | `GET /healthz` | Counters, drain state, store counters |
//! | `GET /metrics` | The live metrics registry as OpenMetrics |
//!
//! Requests arrive through [`mc_pulse::read_request`] — the hardened
//! reader with head/body caps and a total deadline — so a slow-loris
//! client costs at most one read window, never a wedged daemon. Typed
//! admission rejections map onto HTTP: quota and shed rejections are
//! `429` with both a `Retry-After` header (seconds) and an exact
//! `retry_after_ms` in the body; drain is `503`.
//!
//! ## Submission envelope
//!
//! `POST /submit` takes a plain-text body: optional `key: value` header
//! lines (`client`, `name`, `options`), a blank line, then the kernel
//! description XML:
//!
//! ```text
//! client: alice
//! options: --repetitions=4 --meta-repetitions=3
//!
//! <kernel name="loadstore"> … </kernel>
//! ```

use crate::daemon::{Daemon, JobState, Reject, Submission, Submitted};
use mc_pulse::{read_request, respond, Json, Request, RequestError};
use mc_trace::diag;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The running API listener.
pub struct ApiServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl ApiServer {
    /// Binds `bind` (e.g. `127.0.0.1:0`) and serves `daemon` on one
    /// background thread. `drain_flag` is raised by `POST /drain` for
    /// the main loop to act on.
    pub fn start(
        daemon: Arc<Daemon>,
        bind: &str,
        drain_flag: Arc<AtomicBool>,
    ) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle =
            std::thread::Builder::new().name("mc-serve-api".into()).spawn(move || loop {
                if stop_flag.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Err(e) = handle_connection(stream, &daemon, &drain_flag) {
                            diag!("mc-serve: connection error: {e}");
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => {
                        diag!("mc-serve: accept error: {e}");
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            })?;
        Ok(ApiServer { addr, stop, handle })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the listener thread.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.handle.join();
    }
}

/// One JSON object from key/value pairs.
fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect::<BTreeMap<_, _>>())
}

fn json_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    value: &Json,
) -> std::io::Result<()> {
    respond(stream, status, "application/json", extra_headers, value.render().as_bytes())
}

fn handle_connection(
    mut stream: TcpStream,
    daemon: &Arc<Daemon>,
    drain_flag: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let request = match read_request(&mut stream, &daemon.config().limits) {
        Ok(request) => request,
        Err(RequestError::TooLarge(what)) => {
            let body = obj(vec![
                ("error", Json::Str("too_large".into())),
                ("message", Json::Str(format!("request {what} exceeds the configured limit"))),
            ]);
            return json_response(&mut stream, 413, &[], &body);
        }
        Err(RequestError::Timeout) => {
            let body = obj(vec![("error", Json::Str("timeout".into()))]);
            return json_response(&mut stream, 400, &[], &body);
        }
        Err(RequestError::Malformed(message)) => {
            let body = obj(vec![
                ("error", Json::Str("malformed".into())),
                ("message", Json::Str(message)),
            ]);
            return json_response(&mut stream, 400, &[], &body);
        }
        // A vanished client needs no answer.
        Err(RequestError::Io(_)) => return Ok(()),
    };
    route(&mut stream, &request, daemon, drain_flag)
}

fn route(
    stream: &mut TcpStream,
    request: &Request,
    daemon: &Arc<Daemon>,
    drain_flag: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/submit") => post_submit(stream, request, daemon),
        ("GET", "/jobs") => {
            let jobs: Vec<Json> = daemon.jobs().iter().map(job_json).collect();
            json_response(stream, 200, &[], &obj(vec![("jobs", Json::Arr(jobs))]))
        }
        ("GET", "/healthz") => {
            let health = daemon.health();
            let mut pairs = vec![
                ("status", Json::Str("ok".into())),
                ("draining", Json::Bool(health.draining)),
                ("queued", Json::Num(health.queued as f64)),
                ("running", Json::Num(health.running as f64)),
                ("done", Json::Num(health.done as f64)),
                ("failed", Json::Num(health.failed as f64)),
                ("canceled", Json::Num(health.canceled as f64)),
            ];
            if let Some(counters) = &health.store {
                pairs.push((
                    "store",
                    obj(vec![
                        ("hit_mem", Json::Num(counters.hit_mem as f64)),
                        ("hit_disk", Json::Num(counters.hit_disk as f64)),
                        ("miss", Json::Num(counters.miss as f64)),
                        ("saved", Json::Num(counters.saved as f64)),
                        ("write_failed", Json::Num(counters.write_failed as f64)),
                    ]),
                ));
            }
            json_response(stream, 200, &[], &obj(pairs))
        }
        ("GET", "/metrics") => {
            let body = mc_pulse::openmetrics::render(&mc_trace::metrics().snapshot(), None);
            respond(
                stream,
                200,
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                &[],
                body.as_bytes(),
            )
        }
        ("POST", "/drain") => {
            daemon.drain();
            drain_flag.store(true, Ordering::Release);
            json_response(stream, 202, &[], &obj(vec![("status", Json::Str("draining".into()))]))
        }
        (method, path) if path.starts_with("/jobs/") => {
            job_route(stream, method, &path["/jobs/".len()..], daemon)
        }
        ("GET" | "POST", _) => {
            json_response(stream, 404, &[], &obj(vec![("error", Json::Str("not_found".into()))]))
        }
        _ => json_response(
            stream,
            405,
            &[],
            &obj(vec![("error", Json::Str("method_not_allowed".into()))]),
        ),
    }
}

fn job_json(view: &crate::daemon::JobView) -> Json {
    let mut pairs = vec![
        ("job", Json::Str(view.id.clone())),
        ("client", Json::Str(view.client.clone())),
        ("name", Json::Str(view.name.clone())),
        ("state", Json::Str(view.state.name().into())),
    ];
    match &view.state {
        JobState::Done { bytes } => pairs.push(("bytes", Json::Num(*bytes as f64))),
        JobState::Failed { kind, message } => {
            pairs.push(("kind", Json::Str(kind.clone())));
            pairs.push(("message", Json::Str(message.clone())));
        }
        _ => {}
    }
    obj(pairs)
}

fn job_route(
    stream: &mut TcpStream,
    method: &str,
    rest: &str,
    daemon: &Arc<Daemon>,
) -> std::io::Result<()> {
    let (id, action) = match rest.split_once('/') {
        Some((id, action)) => (id, Some(action)),
        None => (rest, None),
    };
    let Some(view) = daemon.job(id) else {
        return json_response(
            stream,
            404,
            &[],
            &obj(vec![("error", Json::Str("unknown_job".into()))]),
        );
    };
    match (method, action) {
        ("GET", None) => json_response(stream, 200, &[], &job_json(&view)),
        ("GET", Some("result")) => match daemon.result_bytes(id) {
            Some(bytes) => respond(stream, 200, "text/csv", &[], &bytes),
            None => json_response(
                stream,
                409,
                &[],
                &obj(vec![
                    ("error", Json::Str("result_not_ready".into())),
                    ("state", Json::Str(view.state.name().into())),
                ]),
            ),
        },
        ("GET", Some("events")) => {
            let events = daemon.events_text(id).unwrap_or_default();
            respond(stream, 200, "application/jsonl", &[], events.as_bytes())
        }
        ("POST", Some("cancel")) => match daemon.cancel(id) {
            Ok(state) => json_response(
                stream,
                200,
                &[],
                &obj(vec![("job", Json::Str(id.to_owned())), ("state", Json::Str(state.into()))]),
            ),
            Err(message) => json_response(
                stream,
                409,
                &[],
                &obj(vec![
                    ("error", Json::Str("not_cancelable".into())),
                    ("message", Json::Str(message)),
                ]),
            ),
        },
        _ => json_response(stream, 404, &[], &obj(vec![("error", Json::Str("not_found".into()))])),
    }
}

/// Parses the plain-text submission envelope.
pub fn parse_envelope(body: &[u8]) -> Result<Submission, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let text = text.replace("\r\n", "\n");
    let mut submission = Submission {
        client: "anon".to_owned(),
        name: None,
        options_args: Vec::new(),
        xml: String::new(),
    };
    // Headers end at the first blank line; a body that opens straight
    // with `<` is all XML.
    let (head, xml) = if text.trim_start().starts_with('<') {
        ("", text.as_str())
    } else {
        text.split_once("\n\n").ok_or("missing blank line between headers and kernel XML")?
    };
    for line in head.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (key, value) =
            line.split_once(':').ok_or_else(|| format!("malformed header line `{line}`"))?;
        let value = value.trim();
        match key.trim() {
            "client" => submission.client = value.to_owned(),
            "name" => submission.name = Some(value.to_owned()),
            "options" => {
                submission.options_args = value.split_whitespace().map(str::to_owned).collect();
            }
            other => return Err(format!("unknown header `{other}`")),
        }
    }
    if submission.client.is_empty() {
        return Err("empty client".to_owned());
    }
    submission.xml = xml.trim().to_owned();
    if submission.xml.is_empty() {
        return Err("empty kernel XML".to_owned());
    }
    Ok(submission)
}

fn retry_after_header(retry_after_ms: u64) -> (&'static str, String) {
    ("Retry-After", retry_after_ms.div_ceil(1000).max(1).to_string())
}

fn post_submit(
    stream: &mut TcpStream,
    request: &Request,
    daemon: &Arc<Daemon>,
) -> std::io::Result<()> {
    let submission = match parse_envelope(&request.body) {
        Ok(s) => s,
        Err(message) => {
            return json_response(
                stream,
                400,
                &[],
                &obj(vec![("error", Json::Str("invalid".into())), ("message", Json::Str(message))]),
            )
        }
    };
    match daemon.submit(&submission, Instant::now()) {
        Submitted::Accepted { job, position } => json_response(
            stream,
            202,
            &[],
            &obj(vec![
                ("job", Json::Str(job)),
                ("state", Json::Str("queued".into())),
                ("position", Json::Num(position as f64)),
            ]),
        ),
        Submitted::Duplicate { job, state } => json_response(
            stream,
            200,
            &[],
            &obj(vec![
                ("job", Json::Str(job)),
                ("state", Json::Str(state)),
                ("duplicate", Json::Bool(true)),
            ]),
        ),
        Submitted::Rejected(reject) => match reject {
            Reject::Invalid(message) => json_response(
                stream,
                400,
                &[],
                &obj(vec![("error", Json::Str("invalid".into())), ("message", Json::Str(message))]),
            ),
            Reject::RateLimited { retry_after_ms } => json_response(
                stream,
                429,
                &[retry_after_header(retry_after_ms)],
                &obj(vec![
                    ("error", Json::Str("rate_limited".into())),
                    ("retry_after_ms", Json::Num(retry_after_ms as f64)),
                ]),
            ),
            Reject::QueueFull { retry_after_ms } => json_response(
                stream,
                429,
                &[retry_after_header(retry_after_ms)],
                &obj(vec![
                    ("error", Json::Str("queue_full".into())),
                    ("retry_after_ms", Json::Num(retry_after_ms as f64)),
                ]),
            ),
            Reject::OverErrorBudget { failures, budget } => json_response(
                stream,
                429,
                &[],
                &obj(vec![
                    ("error", Json::Str("over_error_budget".into())),
                    ("failures", Json::Num(failures as f64)),
                    ("budget", Json::Num(budget as f64)),
                ]),
            ),
            Reject::Draining => {
                json_response(stream, 503, &[], &obj(vec![("error", Json::Str("draining".into()))]))
            }
            Reject::Unavailable(message) => json_response(
                stream,
                503,
                &[],
                &obj(vec![
                    ("error", Json::Str("unavailable".into())),
                    ("message", Json::Str(message)),
                ]),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_envelope_with_headers_parses_every_field() {
        let body = b"client: alice\nname: mykernel\noptions: --repetitions=4 --seed=7\n\n<kernel name=\"k\"></kernel>\n";
        let s = parse_envelope(body).unwrap();
        assert_eq!(s.client, "alice");
        assert_eq!(s.name.as_deref(), Some("mykernel"));
        assert_eq!(s.options_args, vec!["--repetitions=4", "--seed=7"]);
        assert_eq!(s.xml, "<kernel name=\"k\"></kernel>");
    }

    #[test]
    fn a_bare_xml_body_defaults_the_headers() {
        let s = parse_envelope(b"<kernel name=\"k\"></kernel>").unwrap();
        assert_eq!(s.client, "anon");
        assert!(s.name.is_none() && s.options_args.is_empty());
    }

    #[test]
    fn bad_envelopes_are_rejected_with_reasons() {
        assert!(parse_envelope(b"client alice\n\n<kernel/>").is_err(), "missing colon");
        assert!(parse_envelope(b"color: red\n\n<kernel/>").is_err(), "unknown header");
        assert!(parse_envelope(b"client: a\n\n").is_err(), "empty XML");
        assert!(parse_envelope(&[0xff, 0xfe]).is_err(), "not UTF-8");
    }

    #[test]
    fn retry_after_rounds_up_to_whole_seconds() {
        assert_eq!(retry_after_header(1).1, "1");
        assert_eq!(retry_after_header(1000).1, "1");
        assert_eq!(retry_after_header(1001).1, "2");
    }
}
