//! `mc-serve` — the long-running sweep daemon.
//!
//! ```text
//! mc-serve --listen=127.0.0.1:7199 --state=DIR [--store=DIR] [--registry=DIR]
//!          [--queue-depth=N] [--quota-capacity=N] [--quota-refill=N/S]
//!          [--max-failures=N] [--deadline-ms=N] [--jobs=N]
//! ```
//!
//! The daemon admits kernel submissions (`POST /submit`), runs them on
//! the shared evaluation engine, and serves results and progress; see
//! `mc_serve::api` for the routes. SIGTERM and SIGINT begin a graceful
//! drain: admission stops (503), the running job checkpoints, the store
//! ledger is flushed, a run record lands in the registry, and the
//! process exits 0. SIGKILL is safe at any instant — the accepted-job
//! journal replays on the next start.
//!
//! `MICROTOOLS_FAULT` installs a chaos plan (see mc-guard) covering the
//! evaluation path and every persistence write, so fault drills run
//! against the real daemon binary.

use mc_serve::{ApiServer, Daemon, QuotaConfig, ServeConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> &'static str {
    "usage: mc-serve --listen=ADDR --state=DIR [options]\n\
     options:\n  \
     --listen=ADDR       bind address (default 127.0.0.1:7199)\n  \
     --state=DIR         state directory: journal + results (required)\n  \
     --store=DIR         evaluation store root (MICROTOOLS_STORE)\n  \
     --registry=DIR      pulse registry for the drain record\n  \
     --queue-depth=N     queued-job bound before shedding (default 64)\n  \
     --quota-capacity=N  per-client token-bucket burst (default 16)\n  \
     --quota-refill=N    per-client tokens per second (default 4)\n  \
     --max-failures=N    per-client error budget (default 8)\n  \
     --deadline-ms=N     per-job wall-clock deadline (default none)\n  \
     --jobs=N            evaluation workers (MICROTOOLS_JOBS)\n\
     env: MICROTOOLS_FAULT=PLAN (chaos injection; see mc-guard)"
}

/// SIGTERM/SIGINT latch, raised from the signal handler.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled libc binding: the workspace is std-only and only
    // needs `signal(2)`'s handler registration here.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Release);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn parse_flag<'a>(arg: &'a str, name: &str) -> Option<&'a str> {
    arg.strip_prefix(name).and_then(|rest| rest.strip_prefix('='))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let mut listen = "127.0.0.1:7199".to_owned();
    let mut state: Option<String> = None;
    let mut store: Option<String> = None;
    let mut registry: Option<String> = None;
    let mut queue_depth = 64usize;
    let mut quota = QuotaConfig::default();
    let mut deadline_ms = 0u64;
    for arg in &args {
        if let Some(v) = parse_flag(arg, "--listen") {
            listen = v.to_owned();
        } else if let Some(v) = parse_flag(arg, "--state") {
            state = Some(v.to_owned());
        } else if let Some(v) = parse_flag(arg, "--store") {
            store = Some(v.to_owned());
        } else if let Some(v) = parse_flag(arg, "--registry") {
            registry = Some(v.to_owned());
        } else if let Some(v) = parse_flag(arg, "--queue-depth") {
            match v.parse() {
                Ok(n) => queue_depth = n,
                Err(_) => return flag_error(arg),
            }
        } else if let Some(v) = parse_flag(arg, "--quota-capacity") {
            match v.parse() {
                Ok(n) => quota.capacity = n,
                Err(_) => return flag_error(arg),
            }
        } else if let Some(v) = parse_flag(arg, "--quota-refill") {
            match v.parse() {
                Ok(n) => quota.refill_per_sec = n,
                Err(_) => return flag_error(arg),
            }
        } else if let Some(v) = parse_flag(arg, "--max-failures") {
            match v.parse() {
                Ok(n) => quota.max_failures = n,
                Err(_) => return flag_error(arg),
            }
        } else if let Some(v) = parse_flag(arg, "--deadline-ms") {
            match v.parse() {
                Ok(n) => deadline_ms = n,
                Err(_) => return flag_error(arg),
            }
        } else if let Some(v) = parse_flag(arg, "--jobs") {
            match v.parse() {
                Ok(n) => mc_exec::set_jobs(n),
                Err(_) => return flag_error(arg),
            }
        } else {
            eprintln!("unknown flag `{arg}`\n{}", usage());
            return ExitCode::from(2);
        }
    }
    let Some(state) = state else {
        eprintln!("--state=DIR is required\n{}", usage());
        return ExitCode::from(2);
    };
    if let Ok(spec) = std::env::var("MICROTOOLS_FAULT") {
        if let Err(e) = mc_guard::install_fault_spec(&spec) {
            eprintln!("MICROTOOLS_FAULT rejected: {e}");
            return ExitCode::from(2);
        }
        eprintln!("mc-serve: chaos plan active: {spec}");
    }
    let mut config = ServeConfig::new(&state);
    config.store_dir = store.map(Into::into);
    config.registry_root = registry.map(Into::into);
    config.queue_depth = queue_depth;
    config.quota = quota;
    config.job_deadline_ms = deadline_ms;

    install_signal_handlers();
    let daemon = match Daemon::open(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mc-serve: cannot open state at {state}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scheduler = daemon.start();
    let drain_flag = Arc::new(AtomicBool::new(false));
    let server = match ApiServer::start(Arc::clone(&daemon), &listen, Arc::clone(&drain_flag)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mc-serve: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("mc-serve: listening on {} (state: {state})", server.addr());
    while !TERM.load(Ordering::Acquire) && !drain_flag.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("mc-serve: draining…");
    daemon.drain();
    let _ = scheduler.join();
    daemon.finish_drain();
    server.stop();
    eprintln!("mc-serve: drained clean");
    ExitCode::SUCCESS
}

fn flag_error(arg: &str) -> ExitCode {
    eprintln!("bad flag value `{arg}`\n{}", usage());
    ExitCode::from(2)
}
