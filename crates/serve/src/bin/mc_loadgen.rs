//! `mc-loadgen` — replayable load generator for a live `mc-serve`.
//!
//! ```text
//! mc-loadgen --addr=127.0.0.1:7199 [--n=20] [--dup=0.5] [--clients=2]
//!            [--concurrency=4] [--kernel=FILE.xml] [--options="…"]
//!            [--seed=42] [--record=MIX.jsonl | --replay=MIX.jsonl] [--wait]
//! ```
//!
//! Generates a deterministic submission mix — `--n` submissions spread
//! over `--clients` synthetic clients, a `--dup` fraction of which
//! resubmit an earlier variant (duplicate-heavy traffic is the daemon's
//! common case: same kernel, same options, new submitter) — and drives
//! it at `--concurrency` worker threads. `429` answers are honored: the
//! worker sleeps the advertised `retry_after_ms` and retries, counting
//! every backoff. `--record` writes the mix as JSONL before submitting;
//! `--replay` reads a recorded mix instead of generating one, so a
//! production traffic shape can be re-driven against a patched daemon.
//! `--wait` polls until every submitted job is terminal and prints the
//! final state tally.

use mc_trace::{EventKind, TraceEvent};
use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn usage() -> &'static str {
    "usage: mc-loadgen --addr=ADDR [--n=20] [--dup=0.5] [--clients=2]\n       \
     [--concurrency=4] [--kernel=FILE.xml] [--options=ARGS] [--seed=42]\n       \
     [--record=PATH | --replay=PATH] [--wait] [--wait-secs=600]"
}

/// A built-in single-instruction kernel (Figure 6's shape, trimmed to a
/// small unroll range) so the loadgen works with zero setup.
const DEFAULT_KERNEL: &str = r#"<kernel name="loadgen">
    <instruction>
        <operation>movaps</operation>
        <memory>
            <register> <name>r1</name> </register>
            <offset>0</offset>
        </memory>
        <register>
            <phyName>%xmm</phyName>
            <min>0</min>
            <max>8</max>
        </register>
        <swap_after_unroll/>
    </instruction>
    <unrolling>
        <min>1</min>
        <max>2</max>
    </unrolling>
    <induction>
        <register>
            <name>r1</name>
        </register>
        <increment>16</increment>
        <offset>16</offset>
    </induction>
    <induction>
        <register>
            <name>r0</name>
        </register>
        <increment>-1</increment>
        <linked>
            <register>
                <name>r1</name>
            </register>
        </linked>
        <last_induction/>
    </induction>
    <branch_information>
        <label>L6</label>
        <test>jge</test>
    </branch_information>
</kernel>"#;

/// One planned submission.
#[derive(Debug, Clone)]
struct Planned {
    client: String,
    options: String,
}

/// Deterministic 64-bit LCG (MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn fraction(&mut self) -> f64 {
        (self.next() % 1_000_000) as f64 / 1_000_000.0
    }
}

/// Builds the duplicate-heavy mix: fresh variants vary `--tripcount`,
/// duplicates re-issue an earlier variant from another client.
fn generate_mix(n: usize, dup: f64, clients: usize, base_options: &str, seed: u64) -> Vec<Planned> {
    let mut lcg = Lcg(seed.wrapping_mul(2).wrapping_add(1));
    let mut mix = Vec::with_capacity(n);
    let mut variants: Vec<String> = Vec::new();
    for _ in 0..n {
        let client = format!("client{}", lcg.next() % clients.max(1) as u64);
        let options = if !variants.is_empty() && lcg.fraction() < dup {
            variants[(lcg.next() as usize) % variants.len()].clone()
        } else {
            let trip = 1000 + 16 * variants.len() as u64;
            let options = format!("{base_options} --tripcount={trip}");
            variants.push(options.clone());
            options
        };
        mix.push(Planned { client, options: options.trim().to_owned() });
    }
    mix
}

fn record_mix(path: &str, mix: &[Planned]) -> std::io::Result<()> {
    let mut out = String::new();
    for planned in mix {
        let event = TraceEvent::new(EventKind::Event, "loadgen.submit")
            .with("client", planned.client.as_str())
            .with("options", planned.options.as_str());
        out.push_str(&event.to_json());
        out.push('\n');
    }
    std::fs::write(path, out)
}

fn replay_mix(path: &str) -> std::io::Result<Vec<Planned>> {
    let text = std::fs::read_to_string(path)?;
    let mut mix = Vec::new();
    for line in text.lines() {
        let Ok(event) = TraceEvent::from_json(line) else { continue };
        if event.name != "loadgen.submit" {
            continue;
        }
        let field = |key: &str| {
            event.field(key).and_then(|v| v.as_str()).map(str::to_owned).unwrap_or_default()
        };
        mix.push(Planned { client: field("client"), options: field("options") });
    }
    Ok(mix)
}

/// A minimal HTTP/1.1 exchange: one request, read to connection close.
fn http(addr: &str, method: &str, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header terminator"))?;
    let head = String::from_utf8_lossy(&raw[..split]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed status line"))?;
    Ok((status, raw[split + 4..].to_vec()))
}

#[derive(Debug, Default)]
struct Tally {
    accepted: u64,
    duplicate: u64,
    retries: u64,
    rejected: u64,
    errors: u64,
}

fn submit_worker(addr: &str, xml: &str, queue: &Mutex<VecDeque<Planned>>, tally: &Mutex<Tally>) {
    loop {
        let Some(planned) = queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front() else {
            return;
        };
        let envelope = if planned.options.is_empty() {
            format!("client: {}\n\n{xml}", planned.client)
        } else {
            format!("client: {}\noptions: {}\n\n{xml}", planned.client, planned.options)
        };
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match http(addr, "POST", "/submit", envelope.as_bytes()) {
                Ok((202, _)) => {
                    tally.lock().unwrap_or_else(|e| e.into_inner()).accepted += 1;
                    break;
                }
                Ok((200, _)) => {
                    tally.lock().unwrap_or_else(|e| e.into_inner()).duplicate += 1;
                    break;
                }
                Ok((429, body)) if attempts < 50 => {
                    let retry_ms = mc_pulse::Json::parse(&String::from_utf8_lossy(&body))
                        .ok()
                        .and_then(|j| j.get("retry_after_ms").and_then(|v| v.as_f64()))
                        .unwrap_or(500.0);
                    tally.lock().unwrap_or_else(|e| e.into_inner()).retries += 1;
                    std::thread::sleep(Duration::from_millis((retry_ms as u64).clamp(10, 2_000)));
                }
                Ok((status, body)) => {
                    eprintln!(
                        "mc-loadgen: {} rejected ({status}): {}",
                        planned.client,
                        String::from_utf8_lossy(&body)
                    );
                    tally.lock().unwrap_or_else(|e| e.into_inner()).rejected += 1;
                    break;
                }
                Err(e) => {
                    eprintln!("mc-loadgen: request failed: {e}");
                    tally.lock().unwrap_or_else(|e| e.into_inner()).errors += 1;
                    break;
                }
            }
        }
    }
}

/// Polls `/jobs` until no job is queued or running (or the wait budget
/// runs out). Returns the final per-state tally.
fn wait_for_quiesce(addr: &str, wait_secs: u64) -> std::io::Result<Vec<(String, u64)>> {
    let deadline = std::time::Instant::now() + Duration::from_secs(wait_secs);
    loop {
        let (status, body) = http(addr, "GET", "/jobs", b"")?;
        if status != 200 {
            return Err(std::io::Error::other(format!("/jobs answered {status}")));
        }
        let json = mc_pulse::Json::parse(&String::from_utf8_lossy(&body))
            .map_err(std::io::Error::other)?;
        let mut counts: Vec<(String, u64)> = Vec::new();
        let mut active = 0u64;
        for job in json.get("jobs").and_then(|j| j.as_array()).unwrap_or(&[]) {
            let state = job.get("state").and_then(|s| s.as_str()).unwrap_or("?").to_owned();
            if state == "queued" || state == "running" {
                active += 1;
            }
            match counts.iter_mut().find(|(name, _)| *name == state) {
                Some((_, count)) => *count += 1,
                None => counts.push((state, 1)),
            }
        }
        if active == 0 || std::time::Instant::now() >= deadline {
            counts.sort();
            return Ok(counts);
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .find_map(|a| a.strip_prefix(name).and_then(|r| r.strip_prefix('=')).map(str::to_owned))
    };
    let Some(addr) = flag("--addr") else {
        eprintln!("--addr=HOST:PORT is required\n{}", usage());
        return ExitCode::from(2);
    };
    let n: usize = flag("--n").and_then(|v| v.parse().ok()).unwrap_or(20);
    let dup: f64 = flag("--dup").and_then(|v| v.parse().ok()).unwrap_or(0.5);
    let clients: usize = flag("--clients").and_then(|v| v.parse().ok()).unwrap_or(2);
    let concurrency: usize = flag("--concurrency").and_then(|v| v.parse().ok()).unwrap_or(4);
    let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let base_options = flag("--options").unwrap_or_default();
    let wait_secs: u64 = flag("--wait-secs").and_then(|v| v.parse().ok()).unwrap_or(600);
    let xml = match flag("--kernel") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("mc-loadgen: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_KERNEL.to_owned(),
    };

    let mix = match flag("--replay") {
        Some(path) => match replay_mix(&path) {
            Ok(mix) => {
                eprintln!("mc-loadgen: replaying {} submissions from {path}", mix.len());
                mix
            }
            Err(e) => {
                eprintln!("mc-loadgen: cannot replay {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => generate_mix(n, dup, clients, &base_options, seed),
    };
    if let Some(path) = flag("--record") {
        if let Err(e) = record_mix(&path, &mix) {
            eprintln!("mc-loadgen: cannot record to {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("mc-loadgen: recorded {} submissions to {path}", mix.len());
    }

    let queue = Arc::new(Mutex::new(mix.into_iter().collect::<VecDeque<_>>()));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let mut workers = Vec::new();
    for _ in 0..concurrency.max(1) {
        let addr = addr.clone();
        let xml = xml.clone();
        let queue = Arc::clone(&queue);
        let tally = Arc::clone(&tally);
        workers.push(std::thread::spawn(move || submit_worker(&addr, &xml, &queue, &tally)));
    }
    for worker in workers {
        let _ = worker.join();
    }
    let tally = tally.lock().unwrap_or_else(|e| e.into_inner());
    println!(
        "submitted: accepted={} duplicate={} retries={} rejected={} errors={}",
        tally.accepted, tally.duplicate, tally.retries, tally.rejected, tally.errors
    );
    let failed = tally.errors > 0;
    if args.iter().any(|a| a == "--wait") {
        match wait_for_quiesce(&addr, wait_secs) {
            Ok(counts) => {
                let rendered: Vec<String> =
                    counts.iter().map(|(state, count)| format!("{state}={count}")).collect();
                println!("jobs: {}", rendered.join(" "));
            }
            Err(e) => {
                eprintln!("mc-loadgen: wait failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
