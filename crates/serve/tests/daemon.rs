//! Daemon integration tests: admission control, determinism, chaos
//! isolation, and crash recovery.
//!
//! The daemon leans on process-global machinery (the evaluation memo
//! cache, the store slot, fault plans, eval-index counters, the exec
//! worker count), so every test here serializes on one local lock —
//! cargo runs separate test binaries sequentially, so only these tests
//! contend.

use mc_serve::{
    job_id, ApiServer, Daemon, JobJournal, JobState, QuotaConfig, Reject, ServeConfig, Submission,
    Submitted,
};
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes the tests and resets every process-global knob.
fn serialized() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    mc_guard::clear_faults();
    mc_guard::reset_indices();
    mc_guard::reset_write_indices();
    mc_guard::set_policy(mc_guard::GuardPolicy::default());
    mc_launcher::batch::clear_cache();
    mc_launcher::store::clear_store();
    guard
}

/// Evaluation points per job: the fixture kernel (unroll 1..2 with a
/// swap pass) generates 6 variant programs, and one job = one batch.
const EVALS_PER_JOB: u64 = 6;

/// The fixture kernel: unroll 1..2, swap variants — 6 programs per job.
fn kernel_xml(pad: &str) -> String {
    format!(
        r#"<kernel name="loadstore">
    <instruction>
        <operation>movaps</operation>
        <memory>
            <register> <name>r1</name> </register>
            <offset>0</offset>
        </memory>
        <register>
            <phyName>%xmm</phyName>
            <min>0</min>
            <max>8</max>
        </register>
        <swap_after_unroll/>
    </instruction>{pad}
    <unrolling>
        <min>1</min>
        <max>2</max>
    </unrolling>
    <induction>
        <register>
            <name>r1</name>
        </register>
        <increment>16</increment>
        <offset>16</offset>
    </induction>
    <induction>
        <register>
            <name>r0</name>
        </register>
        <increment>-1</increment>
        <linked>
            <register>
                <name>r1</name>
            </register>
        </linked>
        <last_induction/>
    </induction>
    <branch_information>
        <label>L6</label>
        <test>jge</test>
    </branch_information>
</kernel>"#
    )
}

fn options_args(trip: u64) -> Vec<String> {
    vec![
        "--repetitions=4".to_owned(),
        "--meta-repetitions=3".to_owned(),
        format!("--tripcount={trip}"),
    ]
}

fn submission(client: &str, trip: u64) -> Submission {
    Submission {
        client: client.to_owned(),
        name: None,
        options_args: options_args(trip),
        xml: kernel_xml(""),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mc-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn accepted(submitted: Submitted) -> String {
    match submitted {
        Submitted::Accepted { job, .. } => job,
        other => panic!("expected acceptance, got {other:?}"),
    }
}

fn wait_terminal(daemon: &Arc<Daemon>, id: &str, secs: u64) -> JobState {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let state = daemon.job(id).expect("job exists").state;
        if state.is_terminal() {
            return state;
        }
        assert!(Instant::now() < deadline, "job {id} still {} after {secs}s", state.name());
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn quota_rejections_are_typed_and_other_clients_are_unaffected() {
    let _guard = serialized();
    let mut config = ServeConfig::new(fresh_dir("quota"));
    config.quota = QuotaConfig { capacity: 2.0, refill_per_sec: 0.25, max_failures: 8 };
    let daemon = Daemon::open(config).unwrap();
    // No scheduler: jobs stay queued, admission decisions are the test.
    accepted(daemon.submit(&submission("alice", 100), Instant::now()));
    accepted(daemon.submit(&submission("alice", 101), Instant::now()));
    match daemon.submit(&submission("alice", 102), Instant::now()) {
        Submitted::Rejected(Reject::RateLimited { retry_after_ms }) => {
            assert!(
                (1..=8_000).contains(&retry_after_ms),
                "retry hint should be one token away at 0.25/s: {retry_after_ms}"
            );
        }
        other => panic!("expected rate limit, got {other:?}"),
    }
    // A different client still has a full bucket.
    accepted(daemon.submit(&submission("bob", 103), Instant::now()));
    // Resubmitting existing content is a duplicate, not a new admission —
    // and costs the throttled client nothing.
    match daemon.submit(&submission("alice", 100), Instant::now()) {
        Submitted::Duplicate { state, .. } => assert_eq!(state, "queued"),
        other => panic!("expected duplicate, got {other:?}"),
    }
}

#[test]
fn the_queue_bound_sheds_with_a_retry_hint() {
    let _guard = serialized();
    let mut config = ServeConfig::new(fresh_dir("shed"));
    config.queue_depth = 1;
    let daemon = Daemon::open(config).unwrap();
    accepted(daemon.submit(&submission("alice", 200), Instant::now()));
    match daemon.submit(&submission("bob", 201), Instant::now()) {
        Submitted::Rejected(Reject::QueueFull { retry_after_ms }) => {
            assert!(retry_after_ms >= 250, "{retry_after_ms}");
        }
        other => panic!("expected shed, got {other:?}"),
    }
}

#[test]
fn invalid_submissions_are_rejected_and_cost_no_quota() {
    let _guard = serialized();
    let mut config = ServeConfig::new(fresh_dir("invalid"));
    config.quota = QuotaConfig { capacity: 1.0, refill_per_sec: 0.0, max_failures: 8 };
    let daemon = Daemon::open(config).unwrap();
    let bad_option = Submission {
        options_args: vec!["--no-such-option=1".to_owned()],
        ..submission("alice", 300)
    };
    assert!(matches!(
        daemon.submit(&bad_option, Instant::now()),
        Submitted::Rejected(Reject::Invalid(_))
    ));
    let bad_xml =
        Submission { xml: "<note>not a kernel</note>".to_owned(), ..submission("alice", 300) };
    match daemon.submit(&bad_xml, Instant::now()) {
        Submitted::Rejected(Reject::Invalid(message)) => {
            assert!(message.contains("kernel XML"), "{message}");
        }
        other => panic!("expected invalid, got {other:?}"),
    }
    let spaced = Submission {
        options_args: vec!["--seed=1 --repetitions=2".to_owned()],
        ..submission("alice", 300)
    };
    assert!(matches!(
        daemon.submit(&spaced, Instant::now()),
        Submitted::Rejected(Reject::Invalid(_))
    ));
    // The single token is still there: validation happens pre-quota.
    accepted(daemon.submit(&submission("alice", 300), Instant::now()));
}

#[test]
fn jobs1_and_jobs8_result_documents_are_byte_identical() {
    let _guard = serialized();
    let mut documents = Vec::new();
    for jobs in [1usize, 8] {
        mc_exec::set_jobs(jobs);
        mc_launcher::batch::clear_cache();
        let daemon = Daemon::open(ServeConfig::new(fresh_dir(&format!("jobs{jobs}")))).unwrap();
        let scheduler = daemon.start();
        let id = accepted(daemon.submit(&submission("alice", 777), Instant::now()));
        assert_eq!(wait_terminal(&daemon, &id, 120).name(), "done");
        let bytes = daemon.result_bytes(&id).expect("result document");
        daemon.halt();
        scheduler.join().unwrap();
        documents.push(bytes);
    }
    mc_exec::set_jobs(1);
    assert_eq!(documents[0], documents[1], "worker count must not leak into the result document");
    let text = String::from_utf8(documents[0].clone()).unwrap();
    assert!(!text.contains("# jobs:"), "manifest must omit the worker count:\n{text}");
    assert!(text.contains("# tool: mc-serve"), "{text}");
    assert_eq!(text.lines().filter(|l| l.ends_with(",ok")).count() as u64, EVALS_PER_JOB, "{text}");
}

#[test]
fn chaos_faults_stay_per_job_and_spared_jobs_match_the_fault_free_run() {
    let _guard = serialized();
    let trips: Vec<u64> = (0..20).map(|k| 400 + k).collect();
    let run = |faults: Option<mc_guard::FaultPlan>, tag: &str| {
        mc_guard::clear_faults();
        mc_guard::reset_indices();
        mc_launcher::batch::clear_cache();
        if let Some(plan) = faults {
            mc_guard::install_faults(plan);
        }
        let mut config = ServeConfig::new(fresh_dir(tag));
        config.quota = QuotaConfig { capacity: 64.0, ..QuotaConfig::default() };
        let daemon = Daemon::open(config).unwrap();
        // Submit everything first so queue order (and therefore the
        // global eval-index schedule: job k owns indices 6k..6k+6) is
        // fixed before the scheduler starts.
        let ids: Vec<String> = trips
            .iter()
            .map(|&trip| accepted(daemon.submit(&submission("chaos", trip), Instant::now())))
            .collect();
        let scheduler = daemon.start();
        let states: Vec<JobState> = ids.iter().map(|id| wait_terminal(&daemon, id, 300)).collect();
        let documents: Vec<Option<Vec<u8>>> =
            ids.iter().map(|id| daemon.result_bytes(id)).collect();
        daemon.halt();
        scheduler.join().unwrap();
        (states, documents)
    };
    // Fault job 2's first eval with a panic and job 5's second eval
    // with an I/O error.
    let plan =
        mc_guard::FaultPlan::new().panic_at(2 * EVALS_PER_JOB).io_error_at(5 * EVALS_PER_JOB + 1);
    let (chaos_states, chaos_documents) = run(Some(plan), "chaos");
    let (clean_states, clean_documents) = run(None, "clean");
    assert!(clean_states.iter().all(|s| s.name() == "done"), "{clean_states:?}");
    for (k, state) in chaos_states.iter().enumerate() {
        match k {
            2 => match state {
                JobState::Failed { kind, message } => {
                    assert_eq!(kind, "panic", "{message}");
                    assert!(message.contains("injected"), "{message}");
                }
                other => panic!("job 2 should fail typed, got {other:?}"),
            },
            5 => match state {
                JobState::Failed { kind, message } => {
                    assert_eq!(kind, "failed", "{message}");
                    assert!(message.contains("injected"), "{message}");
                }
                other => panic!("job 5 should fail typed, got {other:?}"),
            },
            _ => {
                assert_eq!(state.name(), "done", "job {k} must survive its neighbors' faults");
                assert_eq!(
                    chaos_documents[k], clean_documents[k],
                    "job {k}: spared jobs must be byte-identical to the fault-free run"
                );
            }
        }
    }
}

#[test]
fn a_killed_daemon_resumes_from_the_journal_with_warm_store_hits() {
    let _guard = serialized();
    let state = fresh_dir("kill-state");
    let store = fresh_dir("kill-store");
    let mut config = ServeConfig::new(&state);
    config.store_dir = Some(store.clone());
    // First life: one job runs to completion, paying for both
    // evaluations and persisting them.
    let daemon = Daemon::open(config.clone()).unwrap();
    let scheduler = daemon.start();
    let first = accepted(daemon.submit(&submission("carol", 555), Instant::now()));
    assert_eq!(wait_terminal(&daemon, &first, 120).name(), "done");
    let first_document = daemon.result_bytes(&first).unwrap();
    daemon.halt();
    scheduler.join().unwrap();
    drop(daemon);
    // A second submission lands in the journal and then the process is
    // SIGKILLed before the scheduler touches it: same kernel modulo
    // whitespace, so its job ID differs but its evaluations are the
    // exact records the first life already paid for.
    let xml = kernel_xml("\n\n    ");
    let options =
        mc_launcher::LauncherOptions::from_args_over(Default::default(), &options_args(555))
            .unwrap();
    let second = job_id(&xml, &options);
    assert_ne!(first, second);
    JobJournal::open(&state)
        .accepted(&mc_serve::AcceptedJob {
            id: second.clone(),
            client: "carol".to_owned(),
            name: "loadstore".to_owned(),
            options_args: options_args(555),
            xml,
        })
        .unwrap();
    // Second life: a fresh process (memo cache cold) replays the journal.
    mc_launcher::batch::clear_cache();
    let daemon = Daemon::open(config).unwrap();
    let health = daemon.health();
    assert_eq!(health.done, 1, "finished history survives the restart");
    assert_eq!(health.queued, 1, "the accepted-but-unfinished job is re-queued");
    let scheduler = daemon.start();
    assert_eq!(wait_terminal(&daemon, &second, 120).name(), "done");
    let counters = daemon.health().store.expect("store attached");
    assert_eq!(
        counters.hit_disk, EVALS_PER_JOB,
        "every evaluation warm-hits the store: {counters:?}"
    );
    assert_eq!(counters.saved, 0, "nothing is re-evaluated: {counters:?}");
    // The recovered job's document matches the first life's modulo its ID.
    let second_document = daemon.result_bytes(&second).unwrap();
    let strip = |bytes: &[u8]| -> String {
        String::from_utf8(bytes.to_vec())
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("# job:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&first_document), strip(&second_document));
    daemon.halt();
    scheduler.join().unwrap();
}

#[test]
fn drain_stops_admission_finishes_flushes_and_registers() {
    let _guard = serialized();
    let state = fresh_dir("drain-state");
    let store = fresh_dir("drain-store");
    let registry = fresh_dir("drain-registry");
    let mut config = ServeConfig::new(&state);
    config.store_dir = Some(store.clone());
    config.registry_root = Some(registry.clone());
    let daemon = Daemon::open(config).unwrap();
    let scheduler = daemon.start();
    let id = accepted(daemon.submit(&submission("dave", 600), Instant::now()));
    assert_eq!(wait_terminal(&daemon, &id, 120).name(), "done");
    daemon.drain();
    assert!(matches!(
        daemon.submit(&submission("dave", 601), Instant::now()),
        Submitted::Rejected(Reject::Draining)
    ));
    scheduler.join().unwrap();
    daemon.finish_drain();
    let totals = mc_store::ledger_totals(&store);
    assert!(totals.processes >= 1, "ledger flushed on drain: {totals:?}");
    let index = mc_pulse::Registry::open(&registry).load_index().unwrap();
    assert_eq!(index.len(), 1);
    assert_eq!(index[0].tool, "mc-serve");
}

#[test]
fn the_error_budget_cuts_off_a_client_whose_jobs_keep_failing() {
    let _guard = serialized();
    let mut config = ServeConfig::new(fresh_dir("budget"));
    config.quota = QuotaConfig { max_failures: 0, ..QuotaConfig::default() };
    let daemon = Daemon::open(config).unwrap();
    // The flaky client's first job dies on its first evaluation.
    mc_guard::install_faults(mc_guard::FaultPlan::new().panic_at(0));
    let scheduler = daemon.start();
    let doomed = accepted(daemon.submit(&submission("flaky", 700), Instant::now()));
    assert_eq!(wait_terminal(&daemon, &doomed, 120).name(), "failed");
    match daemon.submit(&submission("flaky", 701), Instant::now()) {
        Submitted::Rejected(Reject::OverErrorBudget { failures, budget }) => {
            assert_eq!((failures, budget), (1, 0));
        }
        other => panic!("expected budget rejection, got {other:?}"),
    }
    // An innocent client is untouched by the cutoff.
    let fine = accepted(daemon.submit(&submission("good", 702), Instant::now()));
    assert_eq!(wait_terminal(&daemon, &fine, 120).name(), "done");
    daemon.halt();
    scheduler.join().unwrap();
}

#[test]
fn a_queued_job_cancels_immediately() {
    let _guard = serialized();
    let daemon = Daemon::open(ServeConfig::new(fresh_dir("cancel"))).unwrap();
    let id = accepted(daemon.submit(&submission("erin", 800), Instant::now()));
    assert_eq!(daemon.cancel(&id), Ok("canceled"));
    assert_eq!(daemon.job(&id).unwrap().state, JobState::Canceled);
    assert!(daemon.cancel(&id).is_err(), "terminal jobs refuse cancellation");
    // The cancellation is journaled: a restart keeps it terminal.
    let replay = JobJournal::open(&daemon.config().state_dir).replay();
    assert!(replay.pending.is_empty());
    assert_eq!(replay.finished.len(), 1);
}

/// One plain HTTP/1.1 exchange against the API server.
fn http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> (u16, String, Vec<u8>) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("header terminator");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, head, raw[split + 4..].to_vec())
}

#[test]
fn the_http_surface_round_trips_submission_to_result() {
    let _guard = serialized();
    let mut config = ServeConfig::new(fresh_dir("http"));
    config.quota = QuotaConfig { capacity: 2.0, refill_per_sec: 0.5, max_failures: 8 };
    let daemon = Daemon::open(config).unwrap();
    let scheduler = daemon.start();
    let drain_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let server =
        ApiServer::start(Arc::clone(&daemon), "127.0.0.1:0", Arc::clone(&drain_flag)).unwrap();
    let addr = server.addr();
    let envelope =
        format!("client: alice\noptions: {}\n\n{}", options_args(900).join(" "), kernel_xml(""));
    let (status, _, body) = http(addr, "POST", "/submit", envelope.as_bytes());
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let json = mc_pulse::Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    let id = json.get("job").and_then(|j| j.as_str()).unwrap().to_owned();
    assert_eq!(wait_terminal(&daemon, &id, 120).name(), "done");
    // State, result, events, health.
    let (status, _, body) = http(addr, "GET", &format!("/jobs/{id}"), b"");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"state\":\"done\""));
    let (status, head, body) = http(addr, "GET", &format!("/jobs/{id}/result"), b"");
    assert_eq!(status, 200);
    assert!(head.contains("text/csv"), "{head}");
    let text = String::from_utf8_lossy(&body);
    assert!(text.starts_with("# tool: mc-serve"), "{text}");
    let (status, _, body) = http(addr, "GET", &format!("/jobs/{id}/events"), b"");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("serve.job"));
    let (status, _, body) = http(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"done\":1"));
    let (status, _, _) = http(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    // Duplicate submission answers 200, not 202.
    let (status, _, body) = http(addr, "POST", "/submit", envelope.as_bytes());
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&body).contains("\"duplicate\":true"));
    // The second distinct submission drains the bucket; the third is a
    // 429 with both hints.
    let envelope2 = envelope.replace("tripcount=900", "tripcount=901");
    let (status, _, _) = http(addr, "POST", "/submit", envelope2.as_bytes());
    assert_eq!(status, 202);
    let envelope3 = envelope.replace("tripcount=900", "tripcount=902");
    let (status, head, body) = http(addr, "POST", "/submit", envelope3.as_bytes());
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(String::from_utf8_lossy(&body).contains("retry_after_ms"));
    // Unknown routes 404; drain flips to 503.
    let (status, _, _) = http(addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
    let (status, _, _) = http(addr, "POST", "/drain", b"");
    assert_eq!(status, 202);
    assert!(drain_flag.load(std::sync::atomic::Ordering::Acquire));
    let (status, _, _) = http(addr, "POST", "/submit", envelope3.as_bytes());
    assert_eq!(status, 503);
    scheduler.join().unwrap();
    server.stop();
}
