//! The top-level kernel description.

use crate::error::{KernelError, KernelResult};
use crate::induction::InductionDesc;
use crate::instruction::InstructionDesc;
use mc_asm::inst::{Cond, Mnemonic};

/// The unrolling range (Figure 6's `<unrolling><min>1</min><max>8</max>`).
/// Both bounds are inclusive: min 1 / max 8 generates unroll factors 1–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnrollRange {
    /// Smallest unroll factor (≥ 1).
    pub min: u32,
    /// Largest unroll factor (inclusive).
    pub max: u32,
}

impl UnrollRange {
    /// A fixed unroll factor.
    pub fn fixed(n: u32) -> Self {
        UnrollRange { min: n, max: n }
    }

    /// Iterator over the factors.
    pub fn factors(&self) -> impl Iterator<Item = u32> {
        self.min..=self.max
    }

    /// Number of factors in the range.
    pub fn len(&self) -> usize {
        (self.max.saturating_sub(self.min) as usize) + 1
    }

    /// Whether the range is empty (max < min).
    pub fn is_empty(&self) -> bool {
        self.max < self.min
    }
}

impl Default for UnrollRange {
    fn default() -> Self {
        UnrollRange { min: 1, max: 1 }
    }
}

/// Loop branch information (Figure 6's `<branch_information>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Loop label, stored without the leading dot (`L6` formats as `.L6`).
    pub label: String,
    /// The conditional jump closing the loop (`jge`).
    pub test: Cond,
}

impl BranchInfo {
    /// Constructs branch info from the label and jump-mnemonic text.
    pub fn new(label: impl Into<String>, test: Cond) -> Self {
        BranchInfo { label: label.into(), test }
    }

    /// The assembly label (with the conventional leading dot).
    pub fn asm_label(&self) -> String {
        let label = self.label.trim_start_matches('.');
        format!(".{label}")
    }

    /// The jump mnemonic.
    pub fn mnemonic(&self) -> Mnemonic {
        Mnemonic::Jcc(self.test)
    }
}

/// A complete kernel description: the unit MicroCreator expands into a set
/// of benchmark programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDesc {
    /// Kernel family name (used to derive generated program names).
    pub name: String,
    /// The abstract loop body.
    pub instructions: Vec<InstructionDesc>,
    /// Unrolling range.
    pub unrolling: UnrollRange,
    /// Induction variables in declaration order.
    pub inductions: Vec<InductionDesc>,
    /// Loop branch.
    pub branch: BranchInfo,
    /// Data element size in bytes (4 for single-precision float streams);
    /// used to convert linked-induction updates into element units. In the
    /// original tool this is implied by the kernel's data type.
    pub element_bytes: u8,
}

impl KernelDesc {
    /// Creates a description with defaults (element size 4, unroll 1).
    pub fn new(name: impl Into<String>, branch: BranchInfo) -> Self {
        KernelDesc {
            name: name.into(),
            instructions: Vec::new(),
            unrolling: UnrollRange::default(),
            inductions: Vec::new(),
            branch,
            element_bytes: 4,
        }
    }

    /// The induction marked `<last_induction/>`.
    pub fn last_induction(&self) -> Option<&InductionDesc> {
        self.inductions.iter().find(|i| i.last)
    }

    /// Distinct logical register names used as memory bases, in first-use
    /// order. Each corresponds to one data array passed by MicroLauncher
    /// (`--nbvectors`).
    pub fn array_registers(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for inst in &self.instructions {
            for op in &inst.operands {
                if let Some(mem) = op.as_memory() {
                    if let Some(name) = mem.base.logical_name() {
                        if !out.iter().any(|n| n == name) {
                            out.push(name.to_owned());
                        }
                    }
                }
            }
        }
        out
    }

    /// Structural validation. Checks the invariants the generation passes
    /// rely on; run before generation and after XML parsing.
    pub fn validate(&self) -> KernelResult<()> {
        if self.instructions.is_empty() {
            return Err(KernelError::Invalid("kernel has no instructions".into()));
        }
        if self.unrolling.is_empty() {
            return Err(KernelError::Invalid(format!(
                "empty unroll range {}..{}",
                self.unrolling.min, self.unrolling.max
            )));
        }
        if self.unrolling.min == 0 {
            return Err(KernelError::Invalid("unroll factor 0 is meaningless".into()));
        }
        let last_count = self.inductions.iter().filter(|i| i.last).count();
        if last_count != 1 {
            return Err(KernelError::Invalid(format!(
                "exactly one <last_induction/> required, found {last_count}"
            )));
        }
        let last = self.last_induction().expect("checked above");
        if !last.not_affected_unroll && last.increment_choices.iter().any(|&i| i >= 0) {
            return Err(KernelError::Invalid(
                "the loop-driving induction must decrement (count down to zero) so the \
                 branch can test the flags of its update"
                    .into(),
            ));
        }
        for ind in &self.inductions {
            if ind.increment_choices.is_empty() {
                return Err(KernelError::Invalid(format!(
                    "induction {} has no increment choices",
                    ind.register
                )));
            }
            if let Some(linked) = &ind.linked {
                let found = self
                    .inductions
                    .iter()
                    .any(|other| !std::ptr::eq(other, ind) && &other.register == linked);
                if !found {
                    return Err(KernelError::Invalid(format!(
                        "induction {} is linked to unknown induction {}",
                        ind.register, linked
                    )));
                }
            }
        }
        if self.element_bytes == 0 {
            return Err(KernelError::Invalid("element_bytes must be non-zero".into()));
        }
        // Every logical register used in an instruction must be an
        // induction register (so the generator knows its offset step) —
        // except pure data registers, which are not memory bases.
        for inst in &self.instructions {
            for op in &inst.operands {
                if let Some(mem) = op.as_memory() {
                    if let Some(name) = mem.base.logical_name() {
                        if !self.inductions.iter().any(|i| i.register.logical_name() == Some(name))
                        {
                            return Err(KernelError::Invalid(format!(
                                "memory base register {name} has no <induction> declaration"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::OperationDesc;
    use crate::operand::{MemoryOperand, OperandDesc, RegisterRef};

    fn figure6_kernel() -> KernelDesc {
        let mut k = KernelDesc::new("figure6", BranchInfo::new("L6", Cond::Ge));
        k.instructions.push(InstructionDesc {
            operation: OperationDesc::Fixed(Mnemonic::Movaps),
            operands: vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r1"), 0)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
            swap_before_unroll: false,
            swap_after_unroll: true,
            repeat: None,
        });
        k.unrolling = UnrollRange { min: 1, max: 8 };
        k.inductions.push(InductionDesc::address(RegisterRef::logical("r1"), 16));
        k.inductions.push(InductionDesc::linked_counter(
            RegisterRef::logical("r0"),
            -1,
            RegisterRef::logical("r1"),
        ));
        k
    }

    #[test]
    fn figure6_kernel_is_valid() {
        figure6_kernel().validate().unwrap();
    }

    #[test]
    fn unroll_range_iteration() {
        let r = UnrollRange { min: 1, max: 8 };
        assert_eq!(r.factors().collect::<Vec<_>>(), (1..=8).collect::<Vec<_>>());
        assert_eq!(r.len(), 8);
        assert!(!r.is_empty());
        assert!(UnrollRange { min: 4, max: 2 }.is_empty());
        assert_eq!(UnrollRange::fixed(3).len(), 1);
    }

    #[test]
    fn branch_label_dot_normalization() {
        assert_eq!(BranchInfo::new("L6", Cond::Ge).asm_label(), ".L6");
        assert_eq!(BranchInfo::new(".L6", Cond::Ge).asm_label(), ".L6");
        assert_eq!(BranchInfo::new("L6", Cond::Ge).mnemonic(), Mnemonic::Jcc(Cond::Ge));
    }

    #[test]
    fn array_registers_in_first_use_order() {
        let mut k = figure6_kernel();
        k.instructions.push(InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Movss),
            vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r2"), 0)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
        ));
        k.inductions.insert(0, InductionDesc::address(RegisterRef::logical("r2"), 4));
        assert_eq!(k.array_registers(), vec!["r1", "r2"]);
    }

    #[test]
    fn validation_rejects_empty_kernel() {
        let k = KernelDesc::new("empty", BranchInfo::new("L0", Cond::Ge));
        assert!(matches!(k.validate(), Err(KernelError::Invalid(_))));
    }

    #[test]
    fn validation_rejects_zero_unroll() {
        let mut k = figure6_kernel();
        k.unrolling = UnrollRange { min: 0, max: 4 };
        assert!(k.validate().is_err());
    }

    #[test]
    fn validation_requires_exactly_one_last_induction() {
        let mut k = figure6_kernel();
        k.inductions[0].last = true;
        assert!(k.validate().is_err());
        let mut k = figure6_kernel();
        k.inductions[1].last = false;
        assert!(k.validate().is_err());
    }

    #[test]
    fn validation_rejects_counting_up_loop_driver() {
        let mut k = figure6_kernel();
        k.inductions[1].increment_choices = vec![1];
        let err = k.validate().unwrap_err();
        assert!(err.to_string().contains("decrement"), "{err}");
    }

    #[test]
    fn validation_rejects_dangling_link() {
        let mut k = figure6_kernel();
        k.inductions[1].linked = Some(RegisterRef::logical("r9"));
        assert!(k.validate().is_err());
    }

    #[test]
    fn validation_rejects_memory_base_without_induction() {
        let mut k = figure6_kernel();
        k.inductions.remove(0);
        // r0 link now dangles too, but the first error is fine either way.
        assert!(k.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_element_bytes() {
        let mut k = figure6_kernel();
        k.element_bytes = 0;
        assert!(k.validate().is_err());
    }
}
