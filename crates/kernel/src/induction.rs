//! Induction-variable descriptions.

use crate::operand::RegisterRef;

/// An induction variable of the kernel loop (Figure 6's `<induction>`).
///
/// Two flavours appear in the paper:
/// * Address inductions (`r1`): advance pointers by `increment × unroll`
///   bytes per loop iteration, with `offset_step` giving the displacement
///   spacing between unrolled copies.
/// * The trip counter (`r0` / `%eax`): counts work. When `linked` to an
///   address induction it advances in *element* units of that stream; when
///   `not_affected_unroll` it advances by `increment` per loop iteration
///   regardless of unrolling (Figure 9's iteration counter, which ends up
///   in `%eax` for MicroLauncher's cycles-per-iteration computation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InductionDesc {
    /// The induction register.
    pub register: RegisterRef,
    /// Per-unit increment. Choices beyond the first are alternative strides
    /// expanded by the stride-selection pass (§3.2: "The creator then
    /// selects the strides for each induction variable … if there are
    /// multiple choices, a separate version of the kernel is created").
    pub increment_choices: Vec<i64>,
    /// Displacement step between consecutive unrolled copies that address
    /// through this register (Figure 6's `<offset>16</offset>`).
    pub offset_step: i64,
    /// Linked induction: this register mirrors the unroll/stride behaviour
    /// of another register, advancing in that stream's element units.
    pub linked: Option<RegisterRef>,
    /// `<last_induction/>`: this induction's update drives the loop branch.
    pub last: bool,
    /// `<not_affected_unroll/>`: advance once per loop iteration, not
    /// scaled by the unroll factor.
    pub not_affected_unroll: bool,
}

impl InductionDesc {
    /// Address induction advancing `increment` bytes per copy with the same
    /// spacing between copies.
    pub fn address(register: RegisterRef, increment: i64) -> Self {
        InductionDesc {
            register,
            increment_choices: vec![increment],
            offset_step: increment,
            linked: None,
            last: false,
            not_affected_unroll: false,
        }
    }

    /// Trip counter linked to an address stream (Figure 6's second
    /// induction: `r0`, increment −1, linked to `r1`, last).
    pub fn linked_counter(register: RegisterRef, increment: i64, linked_to: RegisterRef) -> Self {
        InductionDesc {
            register,
            increment_choices: vec![increment],
            offset_step: 0,
            linked: Some(linked_to),
            last: true,
            not_affected_unroll: false,
        }
    }

    /// The first (default) increment choice.
    pub fn primary_increment(&self) -> i64 {
        *self.increment_choices.first().expect("induction has at least one increment")
    }

    /// Marks this induction as the loop-driving one (builder helper).
    pub fn last_induction(mut self) -> Self {
        self.last = true;
        self
    }

    /// Marks this induction as unroll-independent (builder helper).
    pub fn unaffected_by_unroll(mut self) -> Self {
        self.not_affected_unroll = true;
        self
    }

    /// Total update applied once per loop iteration, given the unroll
    /// factor, the chosen increment, and — for linked inductions — the
    /// element count each unrolled copy of the linked stream consumes.
    ///
    /// * plain: `increment × unroll`
    /// * `not_affected_unroll`: `increment`
    /// * linked: `increment × unroll × elements_per_copy`
    ///   (Figure 8: `-1 × 3 × 4 = -12`).
    pub fn per_loop_update(&self, increment: i64, unroll: u32, elements_per_copy: i64) -> i64 {
        if self.not_affected_unroll {
            increment
        } else if self.linked.is_some() {
            increment * i64::from(unroll) * elements_per_copy
        } else {
            increment * i64::from(unroll)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str) -> RegisterRef {
        RegisterRef::logical(name)
    }

    #[test]
    fn address_update_scales_with_unroll() {
        let ind = InductionDesc::address(r("r1"), 16);
        // Figure 8: unroll 3 → add $48, %rsi
        assert_eq!(ind.per_loop_update(16, 3, 4), 48);
        assert_eq!(ind.per_loop_update(16, 1, 4), 16);
        assert_eq!(ind.per_loop_update(16, 8, 4), 128);
    }

    #[test]
    fn linked_counter_scales_with_elements() {
        let ind = InductionDesc::linked_counter(r("r0"), -1, r("r1"));
        // Figure 8: unroll 3, movaps = 4 floats per copy → sub $12, %rdi
        assert_eq!(ind.per_loop_update(-1, 3, 4), -12);
        assert_eq!(ind.per_loop_update(-1, 8, 4), -32);
        // movss streams move one element per copy.
        assert_eq!(ind.per_loop_update(-1, 8, 1), -8);
    }

    #[test]
    fn unaffected_counter_ignores_unroll() {
        let ind = InductionDesc::address(r("c"), 1).unaffected_by_unroll();
        // Figure 9: %eax counts loop iterations.
        assert_eq!(ind.per_loop_update(1, 8, 4), 1);
        assert_eq!(ind.per_loop_update(1, 1, 1), 1);
    }

    #[test]
    fn builder_flags() {
        let ind = InductionDesc::address(r("r1"), 16).last_induction();
        assert!(ind.last);
        assert!(InductionDesc::linked_counter(r("r0"), -1, r("r1")).last);
    }

    #[test]
    fn primary_increment_is_first_choice() {
        let mut ind = InductionDesc::address(r("r1"), 16);
        ind.increment_choices = vec![16, 32, 64];
        assert_eq!(ind.primary_increment(), 16);
    }
}
