//! Fluent construction of kernel descriptions, plus the canned kernels the
//! paper's experiments use.

use crate::induction::InductionDesc;
use crate::instruction::{InstructionDesc, OperationDesc};
use crate::kernel::{BranchInfo, KernelDesc, UnrollRange};
use crate::operand::{MemoryOperand, OperandDesc, RegisterRef};
use mc_asm::inst::{Cond, Mnemonic};

/// Builder for [`KernelDesc`] values.
///
/// ```
/// use mc_kernel::builder::KernelBuilder;
/// use mc_asm::inst::Mnemonic;
/// let kernel = KernelBuilder::new("loads")
///     .stream_instruction(Mnemonic::Movaps, "r1", false)
///     .unroll(1, 8)
///     .build()
///     .unwrap();
/// assert_eq!(kernel.unrolling.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    desc: KernelDesc,
    counter_added: bool,
    /// First construction error, reported by [`KernelBuilder::build`].
    /// Deferring keeps the fluent chain panic-free: a bad step records
    /// the error and later steps are applied to the unchanged state.
    error: Option<crate::error::KernelError>,
}

impl KernelBuilder {
    /// Starts a kernel with the default `.L6` / `jge` loop shape.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            desc: KernelDesc::new(name, BranchInfo::new("L6", Cond::Ge)),
            counter_added: false,
            error: None,
        }
    }

    /// Sets the unrolling range (inclusive).
    pub fn unroll(mut self, min: u32, max: u32) -> Self {
        self.desc.unrolling = UnrollRange { min, max };
        self
    }

    /// Sets the element size in bytes.
    pub fn element_bytes(mut self, bytes: u8) -> Self {
        self.desc.element_bytes = bytes;
        self
    }

    /// Sets the branch label and condition.
    pub fn branch(mut self, label: impl Into<String>, test: Cond) -> Self {
        self.desc.branch = BranchInfo::new(label, test);
        self
    }

    /// Adds an arbitrary instruction description.
    pub fn instruction(mut self, inst: InstructionDesc) -> Self {
        self.desc.instructions.push(inst);
        self
    }

    /// Adds an arbitrary induction description.
    pub fn induction(mut self, ind: InductionDesc) -> Self {
        self.desc.inductions.push(ind);
        self
    }

    /// Adds a streaming memory instruction on logical array register
    /// `array`: `mnemonic (array), %xmmN` rotating XMM registers, with the
    /// matching address induction. `swap_after` enables the per-copy
    /// load/store swap of Figure 6.
    pub fn stream_instruction(mut self, mnemonic: Mnemonic, array: &str, swap_after: bool) -> Self {
        let Some(bytes) = mnemonic.mem_move().map(|m| i64::from(m.bytes)) else {
            if self.error.is_none() {
                self.error = Some(crate::error::KernelError::Invalid(format!(
                    "stream instruction `{}` is not a memory move",
                    mnemonic.name()
                )));
            }
            return self;
        };
        self.desc.instructions.push(InstructionDesc {
            operation: OperationDesc::Fixed(mnemonic),
            operands: vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical(array), 0)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
            swap_before_unroll: false,
            swap_after_unroll: swap_after,
            repeat: None,
        });
        if !self.desc.inductions.iter().any(|i| i.register.logical_name() == Some(array)) {
            self.desc.inductions.push(InductionDesc::address(RegisterRef::logical(array), bytes));
        }
        self
    }

    /// Adds stride choices to the induction of `array` (the stride-selection
    /// pass will expand one variant per stride).
    pub fn strides(mut self, array: &str, strides: &[i64]) -> Self {
        let ind =
            self.desc.inductions.iter_mut().find(|i| i.register.logical_name() == Some(array));
        match ind {
            Some(ind) => ind.increment_choices = strides.to_vec(),
            None if self.error.is_none() => {
                self.error = Some(crate::error::KernelError::Invalid(format!(
                    "strides() requires the induction of array `{array}` to exist"
                )));
            }
            None => {}
        }
        self
    }

    /// Finishes with the canonical trip counter: logical `r0`, decrementing,
    /// linked to `linked_array`, marked `last_induction`.
    pub fn counted_by(mut self, linked_array: &str) -> Self {
        self.desc.inductions.push(InductionDesc::linked_counter(
            RegisterRef::logical("r0"),
            -1,
            RegisterRef::logical(linked_array),
        ));
        self.counter_added = true;
        self
    }

    /// Validates and returns the description. If no trip counter was added,
    /// one linked to the first array is appended automatically. A step that
    /// failed earlier in the chain (e.g. [`Self::stream_instruction`] on a
    /// non-move mnemonic) surfaces here as its recorded error.
    pub fn build(mut self) -> crate::error::KernelResult<KernelDesc> {
        if let Some(error) = self.error {
            return Err(error);
        }
        if !self.counter_added && self.desc.last_induction().is_none() {
            let first_array =
                self.desc.array_registers().into_iter().next().ok_or_else(|| {
                    crate::error::KernelError::Invalid("no arrays to count".into())
                })?;
            self.desc.inductions.push(InductionDesc::linked_counter(
                RegisterRef::logical("r0"),
                -1,
                RegisterRef::logical(first_array),
            ));
        }
        self.desc.validate()?;
        Ok(self.desc)
    }
}

/// The paper's Figure 6 kernel: a `(Load|Store)+` movaps stream with unroll
/// 1–8 and per-copy operand swap — the input that generates 510 variants.
pub fn figure6() -> KernelDesc {
    KernelBuilder::new("loadstore")
        .stream_instruction(Mnemonic::Movaps, "r1", true)
        .unroll(1, 8)
        .build()
        .expect("figure6 kernel is valid")
}

/// A pure load stream with the given move instruction and unroll range —
/// the kernels behind Figures 11–13 and 17–18. Fails with a typed error
/// when `mnemonic` is not a memory move.
pub fn try_load_stream(
    mnemonic: Mnemonic,
    unroll_min: u32,
    unroll_max: u32,
) -> crate::error::KernelResult<KernelDesc> {
    KernelBuilder::new(format!("{}_loads", mnemonic.name()))
        .stream_instruction(mnemonic, "r1", false)
        .unroll(unroll_min, unroll_max)
        .build()
}

/// [`try_load_stream`], panicking on invalid input — for the canned
/// figure kernels whose mnemonics are known-good constants.
pub fn load_stream(mnemonic: Mnemonic, unroll_min: u32, unroll_max: u32) -> KernelDesc {
    try_load_stream(mnemonic, unroll_min, unroll_max).expect("load stream kernel is valid")
}

/// A strided traversal of `n_arrays` distinct arrays with one instruction
/// per array per unroll copy — the kernels behind Figures 15 and 16
/// ("a single strided traversal of a number of arrays").
pub fn try_multi_array_traversal(
    mnemonic: Mnemonic,
    n_arrays: u32,
) -> crate::error::KernelResult<KernelDesc> {
    if n_arrays == 0 {
        return Err(crate::error::KernelError::Invalid(
            "multi-array traversal needs at least one array".into(),
        ));
    }
    let mut b = KernelBuilder::new(format!("{}_{}arrays", mnemonic.name(), n_arrays));
    for i in 1..=n_arrays {
        b = b.stream_instruction(mnemonic, &format!("r{i}"), false);
    }
    b.unroll(1, 1).counted_by("r1").build()
}

/// [`try_multi_array_traversal`], panicking on invalid input.
pub fn multi_array_traversal(mnemonic: Mnemonic, n_arrays: u32) -> KernelDesc {
    try_multi_array_traversal(mnemonic, n_arrays).expect("traversal kernel is valid")
}

/// The inner loop of the naive matrix multiply (paper Figure 2), expressed
/// as a kernel description: load, load-multiply, accumulate — with the
/// accumulation store hoisted out as in the original code.
///
/// `r1` walks the B row (stride 8 = one double) and `r2` walks the C column
/// (stride = `row_bytes`, i.e. 8 × matrix size, the strided access that
/// makes matmul hierarchy-sensitive).
pub fn matmul_inner(matrix_size: u64) -> KernelDesc {
    let row_bytes = 8 * matrix_size as i64;
    KernelBuilder::new(format!("matmul{matrix_size}"))
        .element_bytes(8)
        .instruction(InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Movsd),
            vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r1"), 0)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
        ))
        .instruction(InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Mulsd),
            vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r2"), 0)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
        ))
        .instruction(InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Addsd),
            vec![
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
                OperandDesc::Register(RegisterRef::Physical(mc_asm::reg::Reg::Xmm(15))),
            ],
        ))
        .induction(InductionDesc::address(RegisterRef::logical("r1"), 8))
        .induction(InductionDesc::address(RegisterRef::logical("r2"), row_bytes))
        .counted_by("r1")
        .unroll(1, 8)
        .build()
        .expect("matmul kernel is valid")
}

/// A 1-D three-point stencil kernel (§3.5: "users are modeling unrolled
/// codes and stencil codes with the MicroCreator tool"): loads
/// `a[i-1], a[i], a[i+1]`, accumulates, stores `b[i]`.
pub fn stencil_1d(unroll_min: u32, unroll_max: u32) -> KernelDesc {
    let elem = 4i64; // f32 stencil
    let load = |offset: i64| {
        InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Movss),
            vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r1"), offset)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
        )
    };
    let add = InstructionDesc::new(
        OperationDesc::Fixed(Mnemonic::Addss),
        vec![
            OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            OperandDesc::Register(RegisterRef::Physical(mc_asm::reg::Reg::Xmm(15))),
        ],
    );
    let store = InstructionDesc::new(
        OperationDesc::Fixed(Mnemonic::Movss),
        vec![
            OperandDesc::Register(RegisterRef::Physical(mc_asm::reg::Reg::Xmm(15))),
            OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r2"), 0)),
        ],
    );
    KernelBuilder::new("stencil3")
        .instruction(load(-elem))
        .instruction(load(0))
        .instruction(load(elem))
        .instruction(add)
        .instruction(store)
        .induction(InductionDesc::address(RegisterRef::logical("r1"), elem))
        .induction(InductionDesc::address(RegisterRef::logical("r2"), elem))
        .counted_by("r1")
        .unroll(unroll_min, unroll_max)
        .build()
        .expect("stencil kernel is valid")
}

/// A memory stream plus `arith_count` independent packed-FP additions —
/// §3.5's "how many arithmetic instructions are hidden by the latencies of
/// a memory-based kernel" study. The additions rotate XMM registers so no
/// dependency chain forms; an out-of-order core overlaps them with the
/// memory traffic until the FP pipe itself saturates.
pub fn try_arithmetic_hiding(
    mem_mnemonic: Mnemonic,
    arith_count: u32,
) -> crate::error::KernelResult<KernelDesc> {
    let mut b = KernelBuilder::new(format!("{}_{}addps", mem_mnemonic.name(), arith_count))
        .stream_instruction(mem_mnemonic, "r1", false);
    for _ in 0..arith_count {
        b = b.instruction(InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Addps),
            vec![
                OperandDesc::Register(RegisterRef::XmmRange { min: 8, max: 15 }),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
        ));
    }
    b.counted_by("r1").unroll(1, 1).build()
}

/// [`try_arithmetic_hiding`], panicking on invalid input.
pub fn arithmetic_hiding(mem_mnemonic: Mnemonic, arith_count: u32) -> KernelDesc {
    try_arithmetic_hiding(mem_mnemonic, arith_count).expect("hiding kernel is valid")
}

/// A strided single-stream load kernel with multiple stride choices —
/// §3.5's "detect the effect of strides on various microbenchmark program
/// templates". Strides are in elements of the move's width.
pub fn try_strided_stream(
    mnemonic: Mnemonic,
    element_strides: &[i64],
) -> crate::error::KernelResult<KernelDesc> {
    let Some(mv) = mnemonic.mem_move() else {
        return Err(crate::error::KernelError::Invalid(format!(
            "strided stream instruction `{}` is not a memory move",
            mnemonic.name()
        )));
    };
    let bytes = mv.bytes as i64;
    let strides: Vec<i64> = element_strides.iter().map(|s| s * bytes).collect();
    KernelBuilder::new(format!("{}_strided", mnemonic.name()))
        .stream_instruction(mnemonic, "r1", false)
        .strides("r1", &strides)
        .counted_by("r1")
        .unroll(1, 1)
        .build()
}

/// [`try_strided_stream`], panicking on invalid input.
pub fn strided_stream(mnemonic: Mnemonic, element_strides: &[i64]) -> KernelDesc {
    try_strided_stream(mnemonic, element_strides).expect("strided kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_matches_xml_parse() {
        let built = figure6();
        let parsed = crate::xml::parse_kernel(&crate::xml::kernel_to_xml(&built)).unwrap();
        assert_eq!(built, parsed);
        built.validate().unwrap();
        assert_eq!(built.unrolling, UnrollRange { min: 1, max: 8 });
        assert!(built.instructions[0].swap_after_unroll);
    }

    #[test]
    fn load_stream_has_no_swap() {
        let k = load_stream(Mnemonic::Movss, 1, 8);
        assert!(!k.instructions[0].swap_after_unroll);
        assert_eq!(k.inductions[0].primary_increment(), 4, "movss advances 4 bytes");
        k.validate().unwrap();
    }

    #[test]
    fn movaps_stream_advances_16() {
        let k = load_stream(Mnemonic::Movaps, 1, 4);
        assert_eq!(k.inductions[0].primary_increment(), 16);
    }

    #[test]
    fn multi_array_has_one_induction_per_array_plus_counter() {
        let k = multi_array_traversal(Mnemonic::Movss, 4);
        assert_eq!(k.array_registers().len(), 4);
        assert_eq!(k.inductions.len(), 5);
        assert!(k.inductions[4].last);
        k.validate().unwrap();
    }

    #[test]
    fn matmul_kernel_shape() {
        let k = matmul_inner(200);
        assert_eq!(k.instructions.len(), 3);
        assert_eq!(k.element_bytes, 8);
        // C column walks a whole row per element: 1600 bytes at size 200.
        assert_eq!(k.inductions[1].primary_increment(), 1600);
        k.validate().unwrap();
    }

    #[test]
    fn auto_counter_added_when_missing() {
        let k = KernelBuilder::new("auto")
            .stream_instruction(Mnemonic::Movsd, "r1", false)
            .unroll(1, 2)
            .build()
            .unwrap();
        assert!(k.last_induction().is_some());
    }

    #[test]
    fn strides_override() {
        let k = KernelBuilder::new("strided")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .strides("r1", &[4, 8, 16])
            .build()
            .unwrap();
        assert_eq!(k.inductions[0].increment_choices, vec![4, 8, 16]);
    }

    #[test]
    fn stream_requires_move_mnemonic() {
        // The bad step is recorded, not panicked; build() reports it.
        let err = KernelBuilder::new("bad")
            .stream_instruction(Mnemonic::Addsd, "r1", false)
            .unroll(1, 2)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("addsd"), "{err}");
        assert!(err.to_string().contains("not a memory move"), "{err}");
    }

    #[test]
    fn try_constructors_reject_bad_input_without_panicking() {
        assert!(try_load_stream(Mnemonic::Addps, 1, 8).is_err());
        assert!(try_multi_array_traversal(Mnemonic::Movss, 0).is_err());
        assert!(try_arithmetic_hiding(Mnemonic::Mulsd, 2).is_err(), "mulsd is not a move");
        assert!(try_strided_stream(Mnemonic::Addsd, &[1, 2]).is_err());
        // The happy paths agree with the panicking wrappers.
        assert_eq!(
            try_load_stream(Mnemonic::Movaps, 1, 4).unwrap(),
            load_stream(Mnemonic::Movaps, 1, 4)
        );
        assert_eq!(
            try_strided_stream(Mnemonic::Movss, &[1, 4]).unwrap(),
            strided_stream(Mnemonic::Movss, &[1, 4])
        );
    }

    #[test]
    fn strides_on_unknown_array_is_a_typed_error() {
        let err = KernelBuilder::new("bad")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .strides("r9", &[4])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("r9"), "{err}");
    }

    #[test]
    fn stencil_shape() {
        let k = stencil_1d(1, 4);
        assert_eq!(k.instructions.len(), 5, "3 loads + add + store");
        assert_eq!(k.array_registers(), vec!["r1", "r2"]);
        // Negative-offset load present.
        let first_mem = k.instructions[0].operands[0].as_memory().unwrap();
        assert_eq!(first_mem.offset, -4);
        k.validate().unwrap();
    }

    #[test]
    fn arithmetic_hiding_shape() {
        let k = arithmetic_hiding(Mnemonic::Movaps, 4);
        assert_eq!(k.instructions.len(), 5, "1 load + 4 addps");
        k.validate().unwrap();
        let k0 = arithmetic_hiding(Mnemonic::Movaps, 0);
        assert_eq!(k0.instructions.len(), 1);
    }

    #[test]
    fn strided_stream_choices_in_bytes() {
        let k = strided_stream(Mnemonic::Movss, &[1, 2, 16]);
        assert_eq!(k.inductions[0].increment_choices, vec![4, 8, 64]);
        let k = strided_stream(Mnemonic::Movaps, &[1, 4]);
        assert_eq!(k.inductions[0].increment_choices, vec![16, 64]);
        k.validate().unwrap();
    }
}
