//! Description-level instructions.

use crate::operand::OperandDesc;
use mc_asm::inst::Mnemonic;

/// The paper's "move semantics" (§3.1): instead of naming an instruction,
/// the user gives the number of bytes to move and lets MicroCreator try the
/// matching variants — "aligned versus non-aligned instructions or using
/// vectorized or scalar instructions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoveSemantics {
    /// Bytes to move per instruction (4, 8 or 16).
    pub bytes: u8,
    /// Restrict to aligned (`Some(true)`) / unaligned (`Some(false)`)
    /// instructions, or try both (`None`).
    pub aligned: Option<bool>,
    /// Restrict to single (`Some(false)`) / double (`Some(true)`) precision
    /// flavours, or try both (`None`). Only meaningful for 16-byte moves
    /// where `movaps`/`movapd` coexist.
    pub double_precision: Option<bool>,
}

impl MoveSemantics {
    /// All mnemonics satisfying these semantics, in deterministic order.
    pub fn candidates(&self) -> Vec<Mnemonic> {
        use Mnemonic::*;
        let all: &[Mnemonic] = match self.bytes {
            4 => &[Movss],
            8 => &[Movsd],
            16 => &[Movaps, Movapd, Movups, Movupd],
            _ => &[],
        };
        all.iter()
            .copied()
            .filter(|m| {
                let info = m.mem_move().expect("move mnemonics have MemMoveInfo");
                if let Some(aligned) = self.aligned {
                    if info.aligned_required != aligned {
                        return false;
                    }
                }
                if let Some(dp) = self.double_precision {
                    let is_dp = matches!(m, Movapd | Movupd | Movsd);
                    if is_dp != dp {
                        return false;
                    }
                }
                true
            })
            .collect()
    }
}

/// How the operation of an instruction is determined.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OperationDesc {
    /// A single fixed mnemonic (`<operation>movaps</operation>`).
    Fixed(Mnemonic),
    /// An explicit list of alternatives; the instruction-selection pass
    /// expands one program per choice.
    Choice(Vec<Mnemonic>),
    /// Move semantics: byte count plus constraints; expanded to a
    /// [`OperationDesc::Choice`] by the instruction-selection pass.
    Move(MoveSemantics),
}

impl OperationDesc {
    /// The concrete mnemonic if already fixed.
    pub fn fixed(&self) -> Option<Mnemonic> {
        match self {
            OperationDesc::Fixed(m) => Some(*m),
            _ => None,
        }
    }

    /// All candidate mnemonics this description can select.
    pub fn candidates(&self) -> Vec<Mnemonic> {
        match self {
            OperationDesc::Fixed(m) => vec![*m],
            OperationDesc::Choice(ms) => ms.clone(),
            OperationDesc::Move(sem) => sem.candidates(),
        }
    }
}

/// One instruction of the kernel description.
///
/// Operand order follows AT&T convention (source first, destination last).
/// "A memory operand followed by a register operand represents a load
/// instruction. A store instruction is the opposite." (§3.1)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InstructionDesc {
    /// The operation (fixed, choice, or move semantics).
    pub operation: OperationDesc,
    /// Operands in AT&T order.
    pub operands: Vec<OperandDesc>,
    /// `<swap_before_unroll/>`: the operand-swap pass *before* unrolling
    /// flips source and destination, producing an all-loads and an
    /// all-stores variant.
    pub swap_before_unroll: bool,
    /// `<swap_after_unroll/>`: the operand-swap pass *after* unrolling
    /// flips each unrolled copy independently, producing every
    /// (Load|Store)+ combination (§3.2).
    pub swap_after_unroll: bool,
    /// `<repeat><min>…</min><max>…</max></repeat>`: instruction repetition
    /// handled by the instruction-selection pass; each count in the range
    /// yields a separate version.
    pub repeat: Option<(u32, u32)>,
}

impl InstructionDesc {
    /// A plain instruction with no swaps or repetition.
    pub fn new(operation: OperationDesc, operands: Vec<OperandDesc>) -> Self {
        InstructionDesc {
            operation,
            operands,
            swap_before_unroll: false,
            swap_after_unroll: false,
            repeat: None,
        }
    }

    /// Returns a copy with source and destination operands exchanged.
    /// For the canonical two-operand moves this turns a load into a store
    /// and vice versa. Instructions with fewer than two operands are
    /// returned unchanged.
    pub fn swapped(&self) -> Self {
        let mut out = self.clone();
        let n = out.operands.len();
        if n >= 2 {
            out.operands.swap(0, n - 1);
        }
        out
    }

    /// True if the first operand (source) is memory — a load under the
    /// paper's convention.
    pub fn is_load_shaped(&self) -> bool {
        matches!(self.operands.first(), Some(OperandDesc::Memory(_)))
            && !matches!(self.operands.last(), Some(OperandDesc::Memory(_)))
    }

    /// True if the last operand (destination) is memory — a store.
    pub fn is_store_shaped(&self) -> bool {
        matches!(self.operands.last(), Some(OperandDesc::Memory(_)))
            && self.operands.len() >= 2
            && !matches!(self.operands.first(), Some(OperandDesc::Memory(_)))
    }

    /// Logical register names referenced by this instruction's operands.
    pub fn logical_registers(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for op in &self.operands {
            match op {
                OperandDesc::Register(r) => out.extend(r.logical_name()),
                OperandDesc::Memory(m) => {
                    out.extend(m.base.logical_name());
                    if let Some((idx, _)) = &m.index {
                        out.extend(idx.logical_name());
                    }
                }
                OperandDesc::Immediate(_) => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{MemoryOperand, RegisterRef};

    fn load_desc() -> InstructionDesc {
        InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Movaps),
            vec![
                OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r1"), 0)),
                OperandDesc::Register(RegisterRef::XmmRange { min: 0, max: 8 }),
            ],
        )
    }

    #[test]
    fn move_semantics_16_bytes_all() {
        let sem = MoveSemantics { bytes: 16, aligned: None, double_precision: None };
        assert_eq!(
            sem.candidates(),
            vec![Mnemonic::Movaps, Mnemonic::Movapd, Mnemonic::Movups, Mnemonic::Movupd]
        );
    }

    #[test]
    fn move_semantics_aligned_only() {
        let sem = MoveSemantics { bytes: 16, aligned: Some(true), double_precision: None };
        assert_eq!(sem.candidates(), vec![Mnemonic::Movaps, Mnemonic::Movapd]);
    }

    #[test]
    fn move_semantics_scalar_sizes() {
        let sem = MoveSemantics { bytes: 4, aligned: None, double_precision: None };
        assert_eq!(sem.candidates(), vec![Mnemonic::Movss]);
        let sem = MoveSemantics { bytes: 8, aligned: None, double_precision: None };
        assert_eq!(sem.candidates(), vec![Mnemonic::Movsd]);
    }

    #[test]
    fn move_semantics_single_precision_aligned() {
        let sem = MoveSemantics { bytes: 16, aligned: Some(true), double_precision: Some(false) };
        assert_eq!(sem.candidates(), vec![Mnemonic::Movaps]);
    }

    #[test]
    fn move_semantics_invalid_size_empty() {
        let sem = MoveSemantics { bytes: 32, aligned: None, double_precision: None };
        assert!(sem.candidates().is_empty());
    }

    #[test]
    fn operation_candidates() {
        assert_eq!(OperationDesc::Fixed(Mnemonic::Movss).candidates(), vec![Mnemonic::Movss]);
        let c = OperationDesc::Choice(vec![Mnemonic::Movss, Mnemonic::Movsd]);
        assert_eq!(c.candidates().len(), 2);
        assert_eq!(c.fixed(), None);
    }

    #[test]
    fn swap_turns_load_into_store() {
        let load = load_desc();
        assert!(load.is_load_shaped());
        assert!(!load.is_store_shaped());
        let store = load.swapped();
        assert!(store.is_store_shaped());
        assert!(!store.is_load_shaped());
        // Swapping twice is the identity.
        assert_eq!(store.swapped(), load);
    }

    #[test]
    fn logical_register_collection() {
        let d = load_desc();
        assert_eq!(d.logical_registers(), vec!["r1"]);
    }

    #[test]
    fn single_operand_swap_is_identity() {
        let d = InstructionDesc::new(
            OperationDesc::Fixed(Mnemonic::Movaps),
            vec![OperandDesc::Register(RegisterRef::logical("r1"))],
        );
        assert_eq!(d.swapped(), d);
    }
}
