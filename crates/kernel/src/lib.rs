//! # mc-kernel — kernel descriptions and generated programs
//!
//! This crate defines the two IRs that MicroCreator transforms between:
//!
//! 1. **[`KernelDesc`]** — the *description* of a kernel family, mirroring
//!    the paper's XML input format (Figure 6): abstract instructions whose
//!    operands may reference logical registers (`r1`) or register ranges
//!    (`%xmm` 0–8), an unrolling range, induction variables (with linkage,
//!    `last_induction` and `not_affected_unroll` markers) and branch
//!    information. A description denotes a *set* of concrete programs.
//! 2. **[`Program`]** — one concrete generated benchmark program: a label,
//!    a straight-line unrolled body of [`mc_asm::Inst`] values, induction
//!    updates and the back-branch, plus [`VariantMeta`] recording which
//!    choices produced it.
//!
//! The XML binding ([`xml`]) parses the paper's schema byte-for-byte and
//! serializes descriptions back to it.
//!
//! ## Generation semantics (as reverse-engineered from Figures 6 → 8)
//!
//! * Unroll copy `i` of an instruction whose memory operand uses induction
//!   register `r` gets displacement `offset + i * r.offset_step`.
//! * An XMM range operand rotates through `min..max` per copy
//!   (`%xmm0, %xmm1, %xmm2` for an unroll of 3), which "reduces register
//!   dependency" (§3.1).
//! * After the copies, each induction emits one update instruction:
//!   `addq $(increment × unroll), reg` — rendered as `subq` with the
//!   absolute value when negative (Figure 8's `sub $12, %rdi`).
//! * A *linked* induction advances in element units: its per-loop update is
//!   `increment × unroll × (linked.offset_step / element_bytes)`. For
//!   Figure 6 (movaps, 16-byte step, 4-byte elements, unroll 3) that is
//!   `-1 × 3 × 4 = -12`, reproducing Figure 8 exactly.
//! * An induction marked `not_affected_unroll` (Figure 9's `%eax` iteration
//!   counter) advances by `increment` once per loop iteration regardless of
//!   the unroll factor.
//! * The `last_induction` register drives the loop: its update instruction
//!   is emitted last so the conditional branch consumes its flags.

pub mod builder;
pub mod error;
pub mod induction;
pub mod instruction;
pub mod kernel;
pub mod operand;
pub mod program;
pub mod xml;

pub use error::{KernelError, KernelResult};
pub use induction::InductionDesc;
pub use instruction::{InstructionDesc, MoveSemantics, OperationDesc};
pub use kernel::{BranchInfo, KernelDesc, UnrollRange};
pub use operand::{ImmediateDesc, MemoryOperand, OperandDesc, RegisterRef};
pub use program::{MemDir, Program, VariantMeta};
