//! Description-level operands: the pre-register-allocation, pre-selection
//! forms that appear in the XML input.

use mc_asm::reg::Reg;
use std::fmt;

/// A register reference in a kernel description.
///
/// Three forms appear in the paper:
/// * `<name>r1</name>` — a *logical* register, bound to a physical register
///   by the register-allocation pass ("The hardware detection system
///   associates r1 to a physical register such as %rsi or %rdi", §3.1);
/// * `<phyName>%eax</phyName>` — an explicit physical register (Figure 9);
/// * `<phyName>%xmm</phyName><min>0</min><max>8</max>` — a *rotating range*
///   of XMM registers, "so as to generate a different XMM register per
///   unrolling iteration" (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegisterRef {
    /// Logical register bound during register allocation.
    Logical(String),
    /// Fixed physical register.
    Physical(Reg),
    /// XMM register rotating through `min..max` across unroll copies.
    XmmRange {
        /// First register index (inclusive).
        min: u8,
        /// One past the last register index (exclusive): Figure 6's
        /// `min=0, max=8` rotates `%xmm0`–`%xmm7`.
        max: u8,
    },
}

impl RegisterRef {
    /// Logical-register constructor.
    pub fn logical(name: impl Into<String>) -> Self {
        RegisterRef::Logical(name.into())
    }

    /// The logical name, if this is a logical reference.
    pub fn logical_name(&self) -> Option<&str> {
        match self {
            RegisterRef::Logical(n) => Some(n),
            _ => None,
        }
    }

    /// Resolves the reference for unroll copy `i`, using `binding` for
    /// logical names. Returns `None` if a logical name is unbound.
    pub fn resolve(&self, copy: u32, binding: &dyn Fn(&str) -> Option<Reg>) -> Option<Reg> {
        match self {
            RegisterRef::Logical(name) => binding(name),
            RegisterRef::Physical(r) => Some(*r),
            RegisterRef::XmmRange { min, max } => {
                let span = max.checked_sub(*min).filter(|s| *s > 0)?;
                Some(Reg::Xmm(min + (copy % u32::from(span)) as u8))
            }
        }
    }
}

impl fmt::Display for RegisterRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterRef::Logical(n) => write!(f, "{n}"),
            RegisterRef::Physical(r) => write!(f, "{r}"),
            RegisterRef::XmmRange { min, max } => write!(f, "%xmm[{min}..{max})"),
        }
    }
}

/// A memory operand in a description: base register reference plus constant
/// offset (the per-copy displacement step comes from the base register's
/// induction declaration, not from here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoryOperand {
    /// Base address register.
    pub base: RegisterRef,
    /// Constant byte offset (Figure 6's `<offset>0</offset>`).
    pub offset: i64,
    /// Optional index register and scale, for strided/indexed kernels.
    pub index: Option<(RegisterRef, u8)>,
}

impl MemoryOperand {
    /// Plain `offset(base)` operand.
    pub fn new(base: RegisterRef, offset: i64) -> Self {
        MemoryOperand { base, offset, index: None }
    }
}

/// An immediate whose value the immediate-selection pass picks; multiple
/// choices expand into separate program versions (§3.2: "the values of the
/// immediate variables. For each element, if there are multiple choices, a
/// separate version of the kernel is created").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImmediateDesc {
    /// Candidate values; must be non-empty.
    pub choices: Vec<i64>,
}

impl ImmediateDesc {
    /// Single-value immediate.
    pub fn fixed(v: i64) -> Self {
        ImmediateDesc { choices: vec![v] }
    }
}

/// Any operand of a description instruction, in AT&T order (sources first,
/// destination last).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OperandDesc {
    /// Register reference.
    Register(RegisterRef),
    /// Memory reference.
    Memory(MemoryOperand),
    /// Immediate with selection choices.
    Immediate(ImmediateDesc),
}

impl OperandDesc {
    /// The memory operand, if this is one.
    pub fn as_memory(&self) -> Option<&MemoryOperand> {
        match self {
            OperandDesc::Memory(m) => Some(m),
            _ => None,
        }
    }

    /// The register reference, if this is one.
    pub fn as_register(&self) -> Option<&RegisterRef> {
        match self {
            OperandDesc::Register(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_asm::reg::GprName;

    #[test]
    fn xmm_range_rotates_per_copy() {
        let r = RegisterRef::XmmRange { min: 0, max: 8 };
        let none = |_: &str| None;
        assert_eq!(r.resolve(0, &none), Some(Reg::Xmm(0)));
        assert_eq!(r.resolve(1, &none), Some(Reg::Xmm(1)));
        assert_eq!(r.resolve(7, &none), Some(Reg::Xmm(7)));
        assert_eq!(r.resolve(8, &none), Some(Reg::Xmm(0)), "wraps at max");
    }

    #[test]
    fn xmm_range_with_offset_min() {
        let r = RegisterRef::XmmRange { min: 4, max: 8 };
        let none = |_: &str| None;
        assert_eq!(r.resolve(0, &none), Some(Reg::Xmm(4)));
        assert_eq!(r.resolve(3, &none), Some(Reg::Xmm(7)));
        assert_eq!(r.resolve(4, &none), Some(Reg::Xmm(4)));
    }

    #[test]
    fn empty_xmm_range_fails_to_resolve() {
        let r = RegisterRef::XmmRange { min: 3, max: 3 };
        assert_eq!(r.resolve(0, &|_| None), None);
    }

    #[test]
    fn logical_resolution_uses_binding() {
        let r = RegisterRef::logical("r1");
        let rsi = Reg::gpr(GprName::Rsi);
        assert_eq!(r.resolve(5, &move |n| (n == "r1").then_some(rsi)), Some(rsi));
        assert_eq!(r.resolve(0, &|_| None), None);
    }

    #[test]
    fn physical_resolution_is_constant() {
        let eax = Reg::gpr32(GprName::Rax);
        let r = RegisterRef::Physical(eax);
        for copy in 0..4 {
            assert_eq!(r.resolve(copy, &|_| None), Some(eax));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(RegisterRef::logical("r1").to_string(), "r1");
        assert_eq!(RegisterRef::Physical(Reg::gpr(GprName::Rsi)).to_string(), "%rsi");
        assert_eq!(RegisterRef::XmmRange { min: 0, max: 8 }.to_string(), "%xmm[0..8)");
    }

    #[test]
    fn operand_accessors() {
        let mem = OperandDesc::Memory(MemoryOperand::new(RegisterRef::logical("r1"), 0));
        assert!(mem.as_memory().is_some());
        assert!(mem.as_register().is_none());
        let reg = OperandDesc::Register(RegisterRef::logical("r2"));
        assert!(reg.as_register().is_some());
    }
}
