//! XML binding for kernel descriptions — the paper's Figure 6 schema.
//!
//! ## Schema
//!
//! ```xml
//! <kernel name="loadstore">                 <!-- name attr optional -->
//!   <instruction>
//!     <operation>movaps</operation>         <!-- 1+ = selection choices -->
//!     <!-- or move semantics:
//!          <move_bytes>16</move_bytes>
//!          <aligned>true|false</aligned>          (optional)
//!          <double_precision>true|false</double_precision> (optional) -->
//!     <memory>                              <!-- operands in AT&T order -->
//!       <register> <name>r1</name> </register>
//!       <offset>0</offset>
//!     </memory>
//!     <register>
//!       <phyName>%xmm</phyName> <min>0</min> <max>8</max>
//!     </register>
//!     <swap_after_unroll/>                  <!-- or swap_before_unroll -->
//!     <repeat> <min>1</min> <max>4</max> </repeat>   <!-- optional -->
//!   </instruction>
//!   <unrolling> <min>1</min> <max>8</max> </unrolling>
//!   <induction>
//!     <register> <name>r1</name> </register>
//!     <increment>16</increment>             <!-- 1+ = stride choices -->
//!     <offset>16</offset>
//!   </induction>
//!   <induction>
//!     <register> <name>r0</name> </register>
//!     <increment>-1</increment>
//!     <linked> <register> <name>r1</name> </register> </linked>
//!     <last_induction/>
//!   </induction>
//!   <branch_information>
//!     <label>L6</label>
//!     <test>jge</test>
//!   </branch_information>
//! </kernel>
//! ```
//!
//! Everything in the paper's Figure 6 and Figure 9 parses unchanged; the
//! `<move_bytes>`, multiple-`<operation>`, multiple-`<increment>`,
//! `<immediate>` and `<repeat>` forms are the documented extensions backing
//! §3.1's "move semantics", §3.2's stride/immediate selection and
//! instruction repetition.

use crate::error::{KernelError, KernelResult};
use crate::induction::InductionDesc;
use crate::instruction::{InstructionDesc, MoveSemantics, OperationDesc};
use crate::kernel::{BranchInfo, KernelDesc, UnrollRange};
use crate::operand::{ImmediateDesc, MemoryOperand, OperandDesc, RegisterRef};
use mc_asm::inst::{Cond, Mnemonic};
use mc_asm::reg::Reg;
use mc_xmlite::Element;

/// Parses a kernel description document.
pub fn parse_kernel(text: &str) -> KernelResult<KernelDesc> {
    let root = Element::parse(text)?;
    kernel_from_element(&root)
}

/// Builds a kernel description from a parsed `<kernel>` element.
pub fn kernel_from_element(root: &Element) -> KernelResult<KernelDesc> {
    if root.name != "kernel" {
        return Err(KernelError::Invalid(format!(
            "expected <kernel> document root, found <{}>",
            root.name
        )));
    }
    let name = root.attribute("name").unwrap_or("kernel").to_owned();
    let branch_el =
        root.find("branch_information").ok_or_else(|| missing(root, "branch_information"))?;
    let branch = parse_branch(branch_el)?;

    let mut desc = KernelDesc::new(name, branch);
    if let Some(eb) = root.attribute("element_bytes") {
        desc.element_bytes =
            eb.parse().map_err(|_| invalid("element_bytes", eb, "an integer", root.line))?;
    }
    for inst_el in root.find_all("instruction") {
        desc.instructions.push(parse_instruction(inst_el)?);
    }
    if let Some(unroll_el) = root.find("unrolling") {
        desc.unrolling =
            UnrollRange { min: child_u32(unroll_el, "min")?, max: child_u32(unroll_el, "max")? };
    }
    for ind_el in root.find_all("induction") {
        desc.inductions.push(parse_induction(ind_el)?);
    }
    desc.validate()?;
    Ok(desc)
}

fn missing(parent: &Element, child: &str) -> KernelError {
    KernelError::MissingElement {
        parent: parent.name.clone(),
        child: child.into(),
        line: parent.line,
    }
}

fn invalid(element: &str, found: &str, expected: &str, line: usize) -> KernelError {
    KernelError::InvalidValue {
        element: element.into(),
        found: found.into(),
        expected: expected.into(),
        line,
    }
}

/// Source line of `el`'s named child, falling back to `el`'s own line —
/// errors about a leaf value should point at the leaf when possible.
fn line_of(el: &Element, child: &str) -> usize {
    el.find(child).map_or(el.line, |c| c.line)
}

fn child_u32(el: &Element, name: &str) -> KernelResult<u32> {
    let text = el.child_text(name).ok_or_else(|| missing(el, name))?;
    text.parse().map_err(|_| invalid(name, text, "a non-negative integer", line_of(el, name)))
}

fn parse_branch(el: &Element) -> KernelResult<BranchInfo> {
    let label = el.child_text("label").ok_or_else(|| missing(el, "label"))?;
    let test = el.child_text("test").ok_or_else(|| missing(el, "test"))?;
    let cond = test.strip_prefix('j').and_then(Cond::from_suffix).ok_or_else(|| {
        invalid("test", test, "a conditional jump such as `jge`", line_of(el, "test"))
    })?;
    Ok(BranchInfo::new(label, cond))
}

fn parse_register_ref(el: &Element) -> KernelResult<RegisterRef> {
    if let Some(name) = el.child_text("name") {
        return Ok(RegisterRef::logical(name));
    }
    let phy = el.child_text("phyName").ok_or_else(|| missing(el, "name or phyName"))?;
    let bare = phy.strip_prefix('%').unwrap_or(phy);
    if bare == "xmm" {
        // Range form: %xmm with min/max (Figure 6).
        let min = child_u32(el, "min")? as u8;
        let max = child_u32(el, "max")? as u8;
        if min >= max || max > 16 {
            return Err(invalid(
                "register",
                &format!("%xmm[{min}..{max})"),
                "0 ≤ min < max ≤ 16",
                el.line,
            ));
        }
        return Ok(RegisterRef::XmmRange { min, max });
    }
    let reg = Reg::from_name(bare)
        .ok_or_else(|| invalid("phyName", phy, "a register name", line_of(el, "phyName")))?;
    Ok(RegisterRef::Physical(reg))
}

fn parse_memory(el: &Element) -> KernelResult<MemoryOperand> {
    let reg_el = el.find("register").ok_or_else(|| missing(el, "register"))?;
    let base = parse_register_ref(reg_el)?;
    let offset = match el.child_text("offset") {
        Some(t) => {
            t.parse().map_err(|_| invalid("offset", t, "an integer", line_of(el, "offset")))?
        }
        None => 0,
    };
    let index = match el.find("index") {
        Some(idx_el) => {
            let idx_reg_el = idx_el.find("register").ok_or_else(|| missing(idx_el, "register"))?;
            let idx = parse_register_ref(idx_reg_el)?;
            let scale =
                match idx_el.child_text("scale") {
                    Some(t) => t.parse().ok().filter(|s| matches!(s, 1u8 | 2 | 4 | 8)).ok_or_else(
                        || invalid("scale", t, "1, 2, 4 or 8", line_of(idx_el, "scale")),
                    )?,
                    None => 1,
                };
            Some((idx, scale))
        }
        None => None,
    };
    Ok(MemoryOperand { base, offset, index })
}

fn parse_operation(el: &Element) -> KernelResult<OperationDesc> {
    let ops: Vec<(&str, usize)> =
        el.find_all("operation").filter_map(|o| o.text().map(|t| (t, o.line))).collect();
    if !ops.is_empty() {
        let mut mnemonics = Vec::with_capacity(ops.len());
        for (op, line) in ops {
            mnemonics.push(
                Mnemonic::from_name(op)
                    .ok_or_else(|| invalid("operation", op, "a mnemonic", line))?,
            );
        }
        return Ok(if mnemonics.len() == 1 {
            OperationDesc::Fixed(mnemonics[0])
        } else {
            OperationDesc::Choice(mnemonics)
        });
    }
    if let Some(bytes_text) = el.child_text("move_bytes") {
        let bytes_line = line_of(el, "move_bytes");
        let bytes: u8 = bytes_text
            .parse()
            .map_err(|_| invalid("move_bytes", bytes_text, "4, 8 or 16", bytes_line))?;
        let parse_flag = |name: &str| -> KernelResult<Option<bool>> {
            match el.child_text(name) {
                None => Ok(None),
                Some("true") => Ok(Some(true)),
                Some("false") => Ok(Some(false)),
                Some(other) => Err(invalid(name, other, "true or false", line_of(el, name))),
            }
        };
        let sem = MoveSemantics {
            bytes,
            aligned: parse_flag("aligned")?,
            double_precision: parse_flag("double_precision")?,
        };
        if sem.candidates().is_empty() {
            return Err(invalid(
                "move_bytes",
                bytes_text,
                "semantics matching ≥1 instruction",
                bytes_line,
            ));
        }
        return Ok(OperationDesc::Move(sem));
    }
    Err(missing(el, "operation"))
}

fn parse_instruction(el: &Element) -> KernelResult<InstructionDesc> {
    let operation = parse_operation(el)?;
    let mut operands = Vec::new();
    for child in el.elements() {
        match child.name.as_str() {
            "memory" => operands.push(OperandDesc::Memory(parse_memory(child)?)),
            "register" => operands.push(OperandDesc::Register(parse_register_ref(child)?)),
            "immediate" => {
                let mut choices = Vec::new();
                for v in child.find_all("value") {
                    let t = v.text().ok_or_else(|| missing(child, "value"))?;
                    choices.push(t.parse().map_err(|_| invalid("value", t, "an integer", v.line))?);
                }
                if choices.is_empty() {
                    return Err(missing(child, "value"));
                }
                operands.push(OperandDesc::Immediate(ImmediateDesc { choices }));
            }
            _ => {} // operation / markers / repeat handled elsewhere
        }
    }
    let repeat = match el.find("repeat") {
        Some(r) => Some((child_u32(r, "min")?, child_u32(r, "max")?)),
        None => None,
    };
    Ok(InstructionDesc {
        operation,
        operands,
        swap_before_unroll: el.has_child("swap_before_unroll"),
        swap_after_unroll: el.has_child("swap_after_unroll"),
        repeat,
    })
}

fn parse_induction(el: &Element) -> KernelResult<InductionDesc> {
    let reg_el = el.find("register").ok_or_else(|| missing(el, "register"))?;
    let register = parse_register_ref(reg_el)?;
    let mut increment_choices = Vec::new();
    for inc in el.find_all("increment") {
        let t = inc.text().ok_or_else(|| missing(el, "increment"))?;
        increment_choices
            .push(t.parse().map_err(|_| invalid("increment", t, "an integer", inc.line))?);
    }
    if increment_choices.is_empty() {
        return Err(missing(el, "increment"));
    }
    let offset_step = match el.child_text("offset") {
        Some(t) => {
            t.parse().map_err(|_| invalid("offset", t, "an integer", line_of(el, "offset")))?
        }
        None => increment_choices[0],
    };
    let linked = match el.find("linked") {
        Some(l) => {
            let r = l.find("register").ok_or_else(|| missing(l, "register"))?;
            Some(parse_register_ref(r)?)
        }
        None => None,
    };
    Ok(InductionDesc {
        register,
        increment_choices,
        offset_step,
        linked,
        last: el.has_child("last_induction"),
        not_affected_unroll: el.has_child("not_affected_unroll"),
    })
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a kernel description back to its XML document form.
pub fn kernel_to_xml(desc: &KernelDesc) -> String {
    kernel_to_element(desc).to_document_string()
}

/// Builds the `<kernel>` element tree for a description.
pub fn kernel_to_element(desc: &KernelDesc) -> Element {
    let mut root = Element::new("kernel")
        .attr("name", desc.name.clone())
        .attr("element_bytes", desc.element_bytes.to_string());
    for inst in &desc.instructions {
        root = root.child(instruction_to_element(inst));
    }
    root = root.child(
        Element::new("unrolling")
            .child(Element::with_text("min", desc.unrolling.min.to_string()))
            .child(Element::with_text("max", desc.unrolling.max.to_string())),
    );
    for ind in &desc.inductions {
        root = root.child(induction_to_element(ind));
    }
    root.child(
        Element::new("branch_information")
            .child(Element::with_text("label", desc.branch.label.clone()))
            .child(Element::with_text("test", desc.branch.mnemonic().name())),
    )
}

fn register_ref_to_element(r: &RegisterRef) -> Element {
    let mut el = Element::new("register");
    match r {
        RegisterRef::Logical(name) => el = el.child(Element::with_text("name", name.clone())),
        RegisterRef::Physical(reg) => {
            el = el.child(Element::with_text("phyName", reg.to_string()));
        }
        RegisterRef::XmmRange { min, max } => {
            el = el
                .child(Element::with_text("phyName", "%xmm"))
                .child(Element::with_text("min", min.to_string()))
                .child(Element::with_text("max", max.to_string()));
        }
    }
    el
}

fn instruction_to_element(inst: &InstructionDesc) -> Element {
    let mut el = Element::new("instruction");
    match &inst.operation {
        OperationDesc::Fixed(m) => el = el.child(Element::with_text("operation", m.name())),
        OperationDesc::Choice(ms) => {
            for m in ms {
                el = el.child(Element::with_text("operation", m.name()));
            }
        }
        OperationDesc::Move(sem) => {
            el = el.child(Element::with_text("move_bytes", sem.bytes.to_string()));
            if let Some(a) = sem.aligned {
                el = el.child(Element::with_text("aligned", a.to_string()));
            }
            if let Some(d) = sem.double_precision {
                el = el.child(Element::with_text("double_precision", d.to_string()));
            }
        }
    }
    for op in &inst.operands {
        el = match op {
            OperandDesc::Register(r) => el.child(register_ref_to_element(r)),
            OperandDesc::Memory(m) => {
                let mut mem = Element::new("memory")
                    .child(register_ref_to_element(&m.base))
                    .child(Element::with_text("offset", m.offset.to_string()));
                if let Some((idx, scale)) = &m.index {
                    mem = mem.child(
                        Element::new("index")
                            .child(register_ref_to_element(idx))
                            .child(Element::with_text("scale", scale.to_string())),
                    );
                }
                el.child(mem)
            }
            OperandDesc::Immediate(imm) => {
                let mut e = Element::new("immediate");
                for v in &imm.choices {
                    e = e.child(Element::with_text("value", v.to_string()));
                }
                el.child(e)
            }
        };
    }
    if inst.swap_before_unroll {
        el = el.child(Element::new("swap_before_unroll"));
    }
    if inst.swap_after_unroll {
        el = el.child(Element::new("swap_after_unroll"));
    }
    if let Some((min, max)) = inst.repeat {
        el = el.child(
            Element::new("repeat")
                .child(Element::with_text("min", min.to_string()))
                .child(Element::with_text("max", max.to_string())),
        );
    }
    el
}

fn induction_to_element(ind: &InductionDesc) -> Element {
    let mut el = Element::new("induction").child(register_ref_to_element(&ind.register));
    for inc in &ind.increment_choices {
        el = el.child(Element::with_text("increment", inc.to_string()));
    }
    el = el.child(Element::with_text("offset", ind.offset_step.to_string()));
    if let Some(linked) = &ind.linked {
        el = el.child(Element::new("linked").child(register_ref_to_element(linked)));
    }
    if ind.last {
        el = el.child(Element::new("last_induction"));
    }
    if ind.not_affected_unroll {
        el = el.child(Element::new("not_affected_unroll"));
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 6 document, verbatim modulo the `<kernel>` root.
    pub(crate) const FIGURE6_XML: &str = r#"
<kernel name="loadstore">
    <instruction>
        <operation>movaps</operation>
        <memory>
            <register> <name>r1</name> </register>
            <offset>0</offset>
        </memory>
        <register>
            <phyName>%xmm</phyName>
            <min>0</min>
            <max>8</max>
        </register>
        <swap_after_unroll/>
    </instruction>
    <unrolling>
        <min>1</min>
        <max>8</max>
    </unrolling>
    <induction>
        <register>
            <name>r1</name>
        </register>
        <increment>16</increment>
        <offset>16</offset>
    </induction>
    <induction>
        <register>
            <name>r0</name>
        </register>
        <increment>-1</increment>
        <linked>
            <register>
                <name>r1</name>
            </register>
        </linked>
        <last_induction/>
    </induction>
    <branch_information>
        <label>L6</label>
        <test>jge</test>
    </branch_information>
</kernel>"#;

    #[test]
    fn parses_figure6() {
        let k = parse_kernel(FIGURE6_XML).unwrap();
        assert_eq!(k.name, "loadstore");
        assert_eq!(k.instructions.len(), 1);
        let inst = &k.instructions[0];
        assert_eq!(inst.operation.fixed(), Some(Mnemonic::Movaps));
        assert!(inst.swap_after_unroll);
        assert!(!inst.swap_before_unroll);
        assert!(inst.is_load_shaped(), "memory-then-register is a load (§3.1)");
        assert_eq!(k.unrolling, UnrollRange { min: 1, max: 8 });
        assert_eq!(k.inductions.len(), 2);
        assert_eq!(k.inductions[0].primary_increment(), 16);
        assert_eq!(k.inductions[0].offset_step, 16);
        assert_eq!(k.inductions[1].primary_increment(), -1);
        assert_eq!(k.inductions[1].linked, Some(RegisterRef::logical("r1")));
        assert!(k.inductions[1].last);
        assert_eq!(k.branch.asm_label(), ".L6");
        assert_eq!(k.branch.test, Cond::Ge);
    }

    #[test]
    fn parses_figure9_induction() {
        // Figure 9: physical %eax iteration counter.
        let xml = r#"
<induction>
    <register>
        <phyName>%eax</phyName>
    </register>
    <increment>1</increment>
    <not_affected_unroll/>
</induction>"#;
        let el = Element::parse(xml).unwrap();
        let ind = parse_induction(&el).unwrap();
        assert!(ind.not_affected_unroll);
        assert_eq!(ind.primary_increment(), 1);
        assert!(matches!(ind.register, RegisterRef::Physical(_)));
    }

    #[test]
    fn roundtrip_figure6() {
        let k = parse_kernel(FIGURE6_XML).unwrap();
        let xml = kernel_to_xml(&k);
        let k2 = parse_kernel(&xml).unwrap();
        assert_eq!(k, k2);
    }

    #[test]
    fn parses_operation_choice() {
        let xml = FIGURE6_XML.replace(
            "<operation>movaps</operation>",
            "<operation>movaps</operation><operation>movups</operation>",
        );
        let k = parse_kernel(&xml).unwrap();
        assert_eq!(
            k.instructions[0].operation,
            OperationDesc::Choice(vec![Mnemonic::Movaps, Mnemonic::Movups])
        );
    }

    #[test]
    fn parses_move_semantics() {
        let xml = FIGURE6_XML.replace(
            "<operation>movaps</operation>",
            "<move_bytes>16</move_bytes><aligned>true</aligned>",
        );
        let k = parse_kernel(&xml).unwrap();
        match &k.instructions[0].operation {
            OperationDesc::Move(sem) => {
                assert_eq!(sem.bytes, 16);
                assert_eq!(sem.aligned, Some(true));
                assert_eq!(sem.double_precision, None);
            }
            other => panic!("expected move semantics, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unsatisfiable_move_semantics() {
        let xml =
            FIGURE6_XML.replace("<operation>movaps</operation>", "<move_bytes>32</move_bytes>");
        assert!(parse_kernel(&xml).is_err());
    }

    #[test]
    fn parses_stride_choices() {
        let xml = FIGURE6_XML.replace(
            "<increment>16</increment>",
            "<increment>16</increment><increment>32</increment><increment>64</increment>",
        );
        let k = parse_kernel(&xml).unwrap();
        assert_eq!(k.inductions[0].increment_choices, vec![16, 32, 64]);
    }

    #[test]
    fn errors_carry_the_source_line() {
        let bad_value = "<kernel>\n  <unrolling>\n    <min>nope</min>\n    <max>8</max>\n  \
                         </unrolling>\n  <branch_information><label>L6</label><test>jge</test>\
                         </branch_information>\n</kernel>";
        let err = parse_kernel(bad_value).unwrap_err();
        assert!(err.to_string().contains("(line 3)"), "{err}");

        let no_operation = "<kernel>\n  <instruction>\n    <memory><register><name>r1</name>\
                            </register></memory>\n  </instruction>\n  <branch_information>\
                            <label>L6</label><test>jge</test></branch_information>\n</kernel>";
        let err = parse_kernel(no_operation).unwrap_err();
        assert!(err.to_string().contains("<operation>"), "{err}");
        assert!(err.to_string().contains("(line 2)"), "{err}");
    }

    #[test]
    fn missing_branch_is_error() {
        let xml = "<kernel><instruction><operation>nop</operation></instruction></kernel>";
        let err = parse_kernel(xml).unwrap_err();
        assert!(err.to_string().contains("branch_information"), "{err}");
    }

    #[test]
    fn bad_mnemonic_is_error() {
        let xml = FIGURE6_XML.replace("movaps", "frobnicate");
        let err = parse_kernel(&xml).unwrap_err();
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }

    #[test]
    fn bad_test_is_error() {
        let xml = FIGURE6_XML.replace("<test>jge</test>", "<test>banana</test>");
        assert!(parse_kernel(&xml).is_err());
    }

    #[test]
    fn bad_xmm_range_is_error() {
        let xml = FIGURE6_XML.replace("<max>8</max>", "<max>0</max>");
        assert!(parse_kernel(&xml).is_err());
    }

    #[test]
    fn wrong_root_is_error() {
        let err = parse_kernel("<kern/>").unwrap_err();
        assert!(err.to_string().contains("<kernel>"), "{err}");
    }

    #[test]
    fn default_offset_is_increment() {
        let xml = FIGURE6_XML.replace("<offset>16</offset>", "");
        let k = parse_kernel(&xml).unwrap();
        assert_eq!(k.inductions[0].offset_step, 16);
    }

    #[test]
    fn immediate_operand_choices() {
        let xml = r#"
<kernel name="imm">
    <instruction>
        <operation>addq</operation>
        <immediate><value>1</value><value>2</value></immediate>
        <register><phyName>%rcx</phyName></register>
    </instruction>
    <unrolling><min>1</min><max>1</max></unrolling>
    <induction>
        <register><name>r0</name></register>
        <increment>-1</increment>
        <last_induction/>
    </induction>
    <branch_information><label>L0</label><test>jge</test></branch_information>
</kernel>"#;
        let k = parse_kernel(xml).unwrap();
        match &k.instructions[0].operands[0] {
            OperandDesc::Immediate(imm) => assert_eq!(imm.choices, vec![1, 2]),
            other => panic!("expected immediate, got {other:?}"),
        }
    }

    #[test]
    fn element_bytes_attribute() {
        let xml = FIGURE6_XML.replace(
            r#"<kernel name="loadstore">"#,
            r#"<kernel name="loadstore" element_bytes="8">"#,
        );
        let k = parse_kernel(&xml).unwrap();
        assert_eq!(k.element_bytes, 8);
    }

    #[test]
    fn memory_with_index_roundtrips() {
        let xml = r#"
<kernel name="indexed">
    <instruction>
        <operation>movsd</operation>
        <memory>
            <register><name>r1</name></register>
            <offset>0</offset>
            <index>
                <register><phyName>%rax</phyName></register>
                <scale>8</scale>
            </index>
        </memory>
        <register><phyName>%xmm0</phyName></register>
    </instruction>
    <unrolling><min>1</min><max>2</max></unrolling>
    <induction>
        <register><name>r1</name></register>
        <increment>8</increment>
    </induction>
    <induction>
        <register><name>r0</name></register>
        <increment>-1</increment>
        <linked><register><name>r1</name></register></linked>
        <last_induction/>
    </induction>
    <branch_information><label>L1</label><test>jg</test></branch_information>
</kernel>"#;
        let k = parse_kernel(xml).unwrap();
        let mem = k.instructions[0].operands[0].as_memory().unwrap();
        assert_eq!(mem.index.as_ref().unwrap().1, 8);
        let k2 = parse_kernel(&kernel_to_xml(&k)).unwrap();
        assert_eq!(k, k2);
    }
}
