//! Error type shared by kernel-description parsing and validation.

use std::fmt;

/// Result alias for kernel operations.
pub type KernelResult<T> = Result<T, KernelError>;

/// Errors produced while parsing or validating a kernel description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The XML was well-formed but missing a required element.
    MissingElement {
        /// Element that should have contained it.
        parent: String,
        /// The missing child element name.
        child: String,
        /// 1-based source line of the parent element; 0 if unknown
        /// (e.g. the tree was built in code rather than parsed).
        line: usize,
    },
    /// An element's text could not be interpreted.
    InvalidValue {
        /// The element whose value is bad.
        element: String,
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// 1-based source line of the offending element; 0 if unknown.
        line: usize,
    },
    /// The description is structurally invalid (e.g. no `last_induction`).
    Invalid(String),
    /// Underlying XML syntax error.
    Xml(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = |line: &usize| if *line > 0 { format!(" (line {line})") } else { String::new() };
        match self {
            KernelError::MissingElement { parent, child, line } => {
                write!(f, "missing `<{child}>` inside `<{parent}>`{}", at(line))
            }
            KernelError::InvalidValue { element, found, expected, line } => {
                write!(f, "invalid `<{element}>`: expected {expected}, found `{found}`{}", at(line))
            }
            KernelError::Invalid(msg) => write!(f, "invalid kernel description: {msg}"),
            KernelError::Xml(msg) => write!(f, "XML error: {msg}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<mc_xmlite::XmlError> for KernelError {
    fn from(e: mc_xmlite::XmlError) -> Self {
        KernelError::Xml(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = KernelError::MissingElement {
            parent: "instruction".into(),
            child: "operation".into(),
            line: 0,
        };
        assert!(e.to_string().contains("<operation>"));
        assert!(!e.to_string().contains("line"), "line 0 means unknown: {e}");
        let e = KernelError::InvalidValue {
            element: "min".into(),
            found: "x".into(),
            expected: "an integer".into(),
            line: 7,
        };
        assert!(e.to_string().contains("expected an integer"));
        assert!(e.to_string().contains("(line 7)"), "{e}");
        let e = KernelError::Invalid("no last induction".into());
        assert!(e.to_string().contains("no last induction"));
    }

    #[test]
    fn from_xml_error() {
        let xe = mc_xmlite::Element::parse("<a").unwrap_err();
        let ke: KernelError = xe.into();
        assert!(matches!(ke, KernelError::Xml(_)));
    }
}
