//! Concrete generated benchmark programs — MicroCreator's output and
//! MicroLauncher's input.

use mc_asm::format::{write_lines, AsmLine};
use mc_asm::inst::{Inst, Mnemonic};

/// Direction of one memory instruction in a generated kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDir {
    /// Memory → register.
    Load,
    /// Register → memory.
    Store,
}

impl MemDir {
    /// Single-letter code used in variant names (`LSL`).
    pub fn code(self) -> char {
        match self {
            MemDir::Load => 'L',
            MemDir::Store => 'S',
        }
    }
}

/// The generation choices that produced one program variant. MicroLauncher
/// copies this into its CSV output so results can be grouped by unroll
/// factor, instruction, or direction pattern, as the paper's figures do.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VariantMeta {
    /// Name of the source kernel description.
    pub kernel: String,
    /// Chosen unroll factor.
    pub unroll: u32,
    /// Primary memory-move mnemonic, when the variant revolves around one.
    pub mnemonic: Option<Mnemonic>,
    /// Load/store direction of each unrolled memory instruction, in body
    /// order (the `(Load|Store)+` pattern of §3.1).
    pub directions: Vec<MemDir>,
    /// Chosen stride per induction, in declaration order.
    pub strides: Vec<i64>,
    /// Chosen immediate values, in operand order.
    pub immediates: Vec<i64>,
    /// Chosen repetition count, if the description had a repeat range.
    pub repeat: Option<u32>,
    /// Free-form extra annotations from plugins.
    pub extra: Vec<(String, String)>,
}

impl VariantMeta {
    /// Number of loads among the unrolled memory instructions.
    pub fn load_count(&self) -> usize {
        self.directions.iter().filter(|d| matches!(d, MemDir::Load)).count()
    }

    /// Number of stores among the unrolled memory instructions.
    pub fn store_count(&self) -> usize {
        self.directions.iter().filter(|d| matches!(d, MemDir::Store)).count()
    }

    /// Deterministic, filesystem-safe variant name encoding the choices,
    /// e.g. `figure6_movaps_u3_SLS`.
    pub fn variant_name(&self) -> String {
        let mut name = self.kernel.clone();
        if let Some(m) = self.mnemonic {
            name.push('_');
            name.push_str(&m.name());
        }
        name.push_str(&format!("_u{}", self.unroll));
        if !self.directions.is_empty() {
            name.push('_');
            name.extend(self.directions.iter().map(|d| d.code()));
        }
        if self.strides.len() > 1 || self.strides.first().is_some_and(|s| *s != 1) {
            for s in &self.strides {
                name.push_str(&format!("_s{s}"));
            }
        }
        if let Some(r) = self.repeat {
            name.push_str(&format!("_r{r}"));
        }
        name
    }
}

/// One concrete benchmark program: assembly lines (label, body, induction
/// updates, branch) plus the metadata needed to run and report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Unique variant name (see [`VariantMeta::variant_name`]).
    pub name: String,
    /// Generation choices.
    pub meta: VariantMeta,
    /// The kernel text: a label, the unrolled body, induction updates and
    /// the conditional back-branch.
    pub lines: Vec<AsmLine>,
    /// Number of data arrays the kernel addresses (MicroLauncher's
    /// `--nbvectors`).
    pub nb_arrays: u32,
    /// Element size in bytes of the data streams.
    pub element_bytes: u8,
    /// Data elements consumed per loop iteration (the trip counter's
    /// per-loop decrement); MicroLauncher uses this to size arrays and
    /// normalize to cycles per iteration.
    pub elements_per_iteration: u64,
}

impl Program {
    /// All instructions in order (labels and comments skipped).
    pub fn instructions(&self) -> impl Iterator<Item = &Inst> {
        self.lines.iter().filter_map(|l| match l {
            AsmLine::Inst(i) => Some(i),
            _ => None,
        })
    }

    /// Instructions of the unrolled body only — everything before the
    /// induction updates: the memory/compute work of the kernel.
    ///
    /// Recognized by construction: the body is every instruction that is
    /// not an induction update (integer `add`/`sub` into a GPR) and not the
    /// branch. For robustness with hand-written kernels it falls back to
    /// "all but the branch".
    pub fn body_instructions(&self) -> Vec<&Inst> {
        let insts: Vec<&Inst> = self.instructions().collect();
        let without_branch: &[&Inst] = match insts.split_last() {
            Some((last, rest)) if last.mnemonic.is_branch() => rest,
            _ => &insts,
        };
        // Trailing run of integer add/sub updates = induction maintenance.
        let mut end = without_branch.len();
        while end > 0 {
            let inst = without_branch[end - 1];
            let is_update = matches!(inst.mnemonic, Mnemonic::Add(_) | Mnemonic::Sub(_))
                && inst.operands.first().and_then(mc_asm::inst::Operand::as_imm).is_some()
                && inst.store_ref().is_none();
            if is_update {
                end -= 1;
            } else {
                break;
            }
        }
        without_branch[..end].to_vec()
    }

    /// Number of load instructions in the body.
    pub fn load_count(&self) -> usize {
        self.body_instructions().iter().filter(|i| i.load_ref().is_some()).count()
    }

    /// Number of store instructions in the body.
    pub fn store_count(&self) -> usize {
        self.body_instructions().iter().filter(|i| i.store_ref().is_some()).count()
    }

    /// Bytes of memory traffic (loads + stores) per loop iteration.
    pub fn bytes_per_iteration(&self) -> u64 {
        self.instructions().map(|i| u64::from(i.load_bytes()) + u64::from(i.store_bytes())).sum()
    }

    /// Renders the program as an assembly text file body.
    pub fn to_asm_string(&self) -> String {
        write_lines(&self.lines)
    }

    /// Parses an assembly listing into a `Program` with default metadata —
    /// the path MicroLauncher takes for user-supplied `.s` files.
    pub fn from_asm_text(
        name: impl Into<String>,
        text: &str,
    ) -> Result<Program, mc_asm::parse::AsmParseError> {
        let lines = mc_asm::parse::parse_listing(text)?;
        Ok(Self::from_lines(name, lines))
    }

    /// Wraps pre-parsed lines as a `Program` with default metadata — used
    /// by the machine-code (object) input path.
    pub fn from_lines(name: impl Into<String>, lines: Vec<AsmLine>) -> Program {
        let name = name.into();
        Program {
            meta: VariantMeta { kernel: name.clone(), unroll: 1, ..VariantMeta::default() },
            name,
            lines,
            nb_arrays: 1,
            element_bytes: 4,
            elements_per_iteration: 1,
        }
    }

    /// Assembles this program to raw machine code (GNU-as-equivalent
    /// encodings; see `mc_asm::encode`).
    pub fn to_machine_code(&self) -> Result<Vec<u8>, mc_asm::encode::EncodeError> {
        Ok(mc_asm::encode::encode_program(&self.lines)?.bytes)
    }

    /// Disassembles raw machine code into a `Program` — MicroLauncher's
    /// object-file input (§4.1).
    pub fn from_machine_code(
        name: impl Into<String>,
        bytes: &[u8],
    ) -> Result<Program, mc_asm::decode::DecodeError> {
        let lines = mc_asm::decode::decode_listing(bytes)?;
        Ok(Self::from_lines(name, lines))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_asm::inst::{Cond, MemRef, Operand, Width};
    use mc_asm::reg::{GprName, Reg};

    /// Builds the paper's Figure 8 program (3×-unrolled store/load/store).
    pub(crate) fn figure8_program() -> Program {
        let rsi = Reg::gpr(GprName::Rsi);
        let rdi = Reg::gpr(GprName::Rdi);
        let lines = vec![
            AsmLine::Label(".L6".into()),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Movaps,
                Operand::Reg(Reg::xmm(0)),
                Operand::Mem(MemRef::base_disp(rsi, 0)),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Movaps,
                Operand::Mem(MemRef::base_disp(rsi, 16)),
                Operand::Reg(Reg::xmm(1)),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Movaps,
                Operand::Reg(Reg::xmm(2)),
                Operand::Mem(MemRef::base_disp(rsi, 32)),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Add(Width::Q),
                Operand::Imm(48),
                Operand::Reg(rsi),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Sub(Width::Q),
                Operand::Imm(12),
                Operand::Reg(rdi),
            )),
            AsmLine::Inst(Inst::branch(Mnemonic::Jcc(Cond::Ge), ".L6")),
        ];
        Program {
            name: "figure6_movaps_u3_SLS".into(),
            meta: VariantMeta {
                kernel: "figure6".into(),
                unroll: 3,
                mnemonic: Some(Mnemonic::Movaps),
                directions: vec![MemDir::Store, MemDir::Load, MemDir::Store],
                strides: vec![16],
                ..VariantMeta::default()
            },
            lines,
            nb_arrays: 1,
            element_bytes: 4,
            elements_per_iteration: 12,
        }
    }

    #[test]
    fn body_extraction_stops_before_induction_updates() {
        let p = figure8_program();
        let body = p.body_instructions();
        assert_eq!(body.len(), 3);
        assert!(body.iter().all(|i| i.mnemonic == Mnemonic::Movaps));
    }

    #[test]
    fn load_store_counts() {
        let p = figure8_program();
        assert_eq!(p.load_count(), 1);
        assert_eq!(p.store_count(), 2);
        assert_eq!(p.meta.load_count(), 1);
        assert_eq!(p.meta.store_count(), 2);
    }

    #[test]
    fn bytes_per_iteration_counts_all_memory_traffic() {
        let p = figure8_program();
        assert_eq!(p.bytes_per_iteration(), 48);
    }

    #[test]
    fn variant_name_encodes_choices() {
        let p = figure8_program();
        assert_eq!(p.meta.variant_name(), "figure6_movaps_u3_SLS_s16");
    }

    #[test]
    fn variant_name_minimal() {
        let m = VariantMeta {
            kernel: "k".into(),
            unroll: 1,
            strides: vec![1],
            ..VariantMeta::default()
        };
        assert_eq!(m.variant_name(), "k_u1");
    }

    #[test]
    fn asm_roundtrip_via_text() {
        let p = figure8_program();
        let text = p.to_asm_string();
        let reparsed = Program::from_asm_text("fig8", &text).unwrap();
        let original: Vec<&Inst> = p.instructions().collect();
        let parsed: Vec<&Inst> = reparsed.instructions().collect();
        assert_eq!(original, parsed);
    }

    #[test]
    fn body_without_branch_or_updates_is_whole_listing() {
        let text = "movaps (%rsi), %xmm0\nmovaps 16(%rsi), %xmm1\n";
        let p = Program::from_asm_text("raw", text).unwrap();
        assert_eq!(p.body_instructions().len(), 2);
    }

    #[test]
    fn machine_code_roundtrip() {
        let p = figure8_program();
        let code = p.to_machine_code().unwrap();
        assert!(!code.is_empty());
        let back = Program::from_machine_code("fig8_obj", &code).unwrap();
        assert_eq!(back.load_count(), p.load_count());
        assert_eq!(back.store_count(), p.store_count());
        assert_eq!(back.to_machine_code().unwrap(), code, "stable through the roundtrip");
    }

    #[test]
    fn rmw_add_to_memory_is_not_mistaken_for_update() {
        let text = "addq $1, (%rsi)\nsubq $12, %rdi\njge .L0\n";
        let p = Program::from_asm_text("rmw", text).unwrap();
        // The RMW add targets memory: body; the subq is an update.
        assert_eq!(p.body_instructions().len(), 1);
    }
}
