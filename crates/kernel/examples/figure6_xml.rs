//! Prints the paper's Figure 6 kernel description as XML — the input the
//! `microcreator`/`microlauncher` quick-start examples consume.
//!
//! ```bash
//! cargo run -q -p mc-kernel --example figure6_xml > descriptions/figure6.xml
//! ```

fn main() {
    print!("{}", mc_kernel::xml::kernel_to_xml(&mc_kernel::builder::figure6()));
}
