//! Generation configuration.

/// Configuration of the random-instruction-selection pass (§3.2:
/// "instruction repetition and random instruction selection").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSelection {
    /// How many random orderings/subsets to generate per candidate.
    pub variants: u32,
    /// Length of each generated kernel body (instructions are drawn with
    /// replacement from the description's body).
    pub length: u32,
}

/// Knobs controlling a generation run.
#[derive(Debug, Clone)]
pub struct CreatorConfig {
    /// Optional cap on the number of final programs (§3.2: "The user can
    /// limit the number of benchmark programs if it is superfluous").
    /// `None` keeps everything.
    pub limit: Option<usize>,
    /// Seed for every stochastic decision (random selection, limit
    /// sampling). Two runs with equal seeds produce identical programs.
    pub seed: u64,
    /// Enables the random-selection pass (whose gate is otherwise false).
    pub random_selection: Option<RandomSelection>,
    /// Emit Figure 8-style `#` comments into generated assembly.
    pub emit_comments: bool,
    /// Safety cap on the in-flight candidate set; exceeded means the
    /// cartesian expansion of the description is unreasonably large.
    pub max_candidates: usize,
}

impl Default for CreatorConfig {
    fn default() -> Self {
        CreatorConfig {
            limit: None,
            seed: 0x4d43_2012, // "MC" 2012
            random_selection: None,
            emit_comments: true,
            max_candidates: 100_000,
        }
    }
}

impl CreatorConfig {
    /// Sets the final-program cap.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables random instruction selection.
    pub fn with_random_selection(mut self, sel: RandomSelection) -> Self {
        self.random_selection = Some(sel);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_deterministic_and_unlimited() {
        let c = CreatorConfig::default();
        assert_eq!(c.limit, None);
        assert!(c.random_selection.is_none());
        assert!(c.emit_comments);
        assert!(c.max_candidates >= 10_000);
        // Same default seed across calls.
        assert_eq!(c.seed, CreatorConfig::default().seed);
    }

    #[test]
    fn builder_methods() {
        let c = CreatorConfig::default()
            .with_limit(42)
            .with_seed(7)
            .with_random_selection(RandomSelection { variants: 3, length: 5 });
        assert_eq!(c.limit, Some(42));
        assert_eq!(c.seed, 7);
        assert_eq!(c.random_selection.unwrap().variants, 3);
    }
}
