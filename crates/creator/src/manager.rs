//! The pass manager: ordered pass list with the plugin-facing mutation API
//! (add / remove / replace / re-gate — §3.3).

use crate::context::GenContext;
use crate::error::{CreatorError, CreatorResult};
use crate::pass::Pass;
use std::sync::Arc;

type GateOverride = Arc<dyn Fn(&GenContext) -> bool + Send + Sync>;

struct Entry {
    pass: Box<dyn Pass + Send + Sync>,
    gate_override: Option<GateOverride>,
}

impl Entry {
    fn gate(&self, ctx: &GenContext) -> bool {
        match &self.gate_override {
            Some(g) => g(ctx),
            None => self.pass.gate(ctx),
        }
    }
}

/// Ordered collection of passes.
#[derive(Default)]
pub struct PassManager {
    entries: Vec<Entry>,
}

impl PassManager {
    /// An empty manager.
    pub fn new() -> Self {
        PassManager { entries: Vec::new() }
    }

    /// The standard nineteen-pass MicroCreator pipeline.
    pub fn standard() -> Self {
        let mut pm = PassManager::new();
        for pass in crate::passes::standard_passes() {
            pm.entries.push(Entry { pass, gate_override: None });
        }
        pm
    }

    /// Pass names in execution order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.pass.name()).collect()
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, name: &str) -> CreatorResult<usize> {
        self.entries
            .iter()
            .position(|e| e.pass.name() == name)
            .ok_or_else(|| CreatorError::Plugin(format!("no pass named `{name}`")))
    }

    /// Appends a pass at the end.
    pub fn add_pass(&mut self, pass: Box<dyn Pass + Send + Sync>) {
        self.entries.push(Entry { pass, gate_override: None });
    }

    /// Inserts a pass before the named pass.
    pub fn insert_before(
        &mut self,
        name: &str,
        pass: Box<dyn Pass + Send + Sync>,
    ) -> CreatorResult<()> {
        let i = self.position(name)?;
        self.entries.insert(i, Entry { pass, gate_override: None });
        Ok(())
    }

    /// Inserts a pass after the named pass.
    pub fn insert_after(
        &mut self,
        name: &str,
        pass: Box<dyn Pass + Send + Sync>,
    ) -> CreatorResult<()> {
        let i = self.position(name)?;
        self.entries.insert(i + 1, Entry { pass, gate_override: None });
        Ok(())
    }

    /// Removes the named pass.
    pub fn remove_pass(&mut self, name: &str) -> CreatorResult<()> {
        let i = self.position(name)?;
        self.entries.remove(i);
        Ok(())
    }

    /// Replaces the named pass, keeping its position. "A user may replace
    /// or rewrite any of the internal passes with the fully exposed API"
    /// (§3.3).
    pub fn replace_pass(
        &mut self,
        name: &str,
        pass: Box<dyn Pass + Send + Sync>,
    ) -> CreatorResult<()> {
        let i = self.position(name)?;
        self.entries[i] = Entry { pass, gate_override: None };
        Ok(())
    }

    /// Overrides the named pass's gate. "MicroCreator also permits a
    /// redefinition of any pass gate" (§3.3).
    pub fn set_gate(
        &mut self,
        name: &str,
        gate: impl Fn(&GenContext) -> bool + Send + Sync + 'static,
    ) -> CreatorResult<()> {
        let i = self.position(name)?;
        self.entries[i].gate_override = Some(Arc::new(gate));
        Ok(())
    }

    /// Runs the pipeline over a context, recording per-pass statistics.
    /// Returns `(pass name, ran?, candidates after, programs after)` rows.
    ///
    /// When tracing is enabled (see `mc-trace`), each gated-in pass emits
    /// one `creator.pass` span carrying variant counts and wall time, and
    /// each gated-off pass emits one `creator.pass.skipped` event.
    pub fn run(&self, ctx: &mut GenContext) -> CreatorResult<Vec<(String, bool, usize, usize)>> {
        let mut stats = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            let ran = entry.gate(ctx);
            let variants_in = ctx.candidates.len();
            if ran {
                let mut span = mc_trace::span("creator.pass");
                entry.pass.run(ctx)?;
                if span.is_active() {
                    let variants_out = ctx.candidates.len();
                    span.field("pass", entry.pass.name());
                    span.field("variants_in", variants_in as u64);
                    span.field("variants_out", variants_out as u64);
                    span.field("pruned", variants_in.saturating_sub(variants_out) as u64);
                    span.field("programs", ctx.programs.len() as u64);
                }
            } else if mc_trace::enabled() {
                mc_trace::event(
                    "creator.pass.skipped",
                    vec![
                        ("pass", entry.pass.name().into()),
                        ("variants_in", (variants_in as u64).into()),
                    ],
                );
            }
            stats.push((
                entry.pass.name().to_owned(),
                ran,
                ctx.candidates.len(),
                ctx.programs.len(),
            ));
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::pass::FnPass;
    use mc_kernel::builder::figure6;

    fn mark_pass(name: &str, tag: &'static str) -> Box<dyn Pass + Send + Sync> {
        let name = name.to_owned();
        Box::new(FnPass::new(name, move |ctx: &mut GenContext| {
            for c in &mut ctx.candidates {
                c.meta.extra.push(("ran".into(), tag.into()));
            }
            Ok(())
        }))
    }

    fn ctx() -> GenContext {
        GenContext::new(figure6(), CreatorConfig::default())
    }

    #[test]
    fn standard_pipeline_has_nineteen_passes() {
        // §3.2: "The MicroCreator compiler currently contains nineteen
        // passes."
        assert_eq!(PassManager::standard().len(), 19);
    }

    #[test]
    fn standard_pipeline_order() {
        let pm = PassManager::standard();
        let names = pm.pass_names();
        assert_eq!(names.first(), Some(&"validate-input"));
        assert_eq!(names.last(), Some(&"codegen"));
        // The two operand-swap passes straddle unrolling (§3.2).
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("operand-swap-before") < pos("unrolling"));
        assert!(pos("unrolling") < pos("operand-swap-after"));
        assert!(pos("operand-swap-after") < pos("register-allocation"));
    }

    #[test]
    fn insert_before_and_after() {
        let mut pm = PassManager::new();
        pm.add_pass(mark_pass("a", "a"));
        pm.insert_before("a", mark_pass("pre", "pre")).unwrap();
        pm.insert_after("a", mark_pass("post", "post")).unwrap();
        assert_eq!(pm.pass_names(), vec!["pre", "a", "post"]);
    }

    #[test]
    fn remove_and_replace() {
        let mut pm = PassManager::new();
        pm.add_pass(mark_pass("a", "a"));
        pm.add_pass(mark_pass("b", "b"));
        pm.remove_pass("a").unwrap();
        assert_eq!(pm.pass_names(), vec!["b"]);
        pm.replace_pass("b", mark_pass("b2", "b2")).unwrap();
        assert_eq!(pm.pass_names(), vec!["b2"]);
    }

    #[test]
    fn unknown_pass_is_plugin_error() {
        let mut pm = PassManager::new();
        assert!(matches!(pm.remove_pass("ghost"), Err(CreatorError::Plugin(_))));
        assert!(matches!(pm.set_gate("ghost", |_| true), Err(CreatorError::Plugin(_))));
    }

    #[test]
    fn gate_override_skips_pass() {
        let mut pm = PassManager::new();
        pm.add_pass(mark_pass("skipme", "x"));
        pm.set_gate("skipme", |_| false).unwrap();
        let mut c = ctx();
        let stats = pm.run(&mut c).unwrap();
        assert!(!stats[0].1, "gate override suppressed the run");
        assert!(c.candidates[0].meta.extra.is_empty());
    }

    #[test]
    fn run_records_stats_in_order() {
        let mut pm = PassManager::new();
        pm.add_pass(mark_pass("one", "1"));
        pm.add_pass(mark_pass("two", "2"));
        let mut c = ctx();
        let stats = pm.run(&mut c).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "one");
        assert_eq!(stats[1].0, "two");
        assert!(stats.iter().all(|s| s.1));
        assert_eq!(c.candidates[0].meta.extra.len(), 2);
    }
}
