//! # mc-creator — MicroCreator
//!
//! MicroCreator "automatically creates micro-programs for evaluating effects
//! of minor changes in a program on an architecture" (§3). From a single
//! kernel description it expands every requested variation — instruction
//! selection, strides, immediates, operand swaps before and after
//! unrolling, unroll factors, register allocation — through a source-to-
//! source compiler of **nineteen passes** (§3.2, Figure 7), extensible via
//! a GCC-style plugin system (§3.3) in which every pass has a replaceable
//! *gate* deciding whether it runs.
//!
//! ```
//! use mc_creator::MicroCreator;
//! use mc_kernel::builder::figure6;
//!
//! let creator = MicroCreator::new();
//! let result = creator.generate(&figure6()).unwrap();
//! // The paper: "MicroCreator generated 510 benchmark program variations"
//! // from the Figure 6 input (unroll 1–8 × every (Load|Store)+ pattern).
//! assert_eq!(result.programs.len(), 510);
//! ```
//!
//! The pipeline (pass names in execution order):
//!
//! | # | pass | role |
//! |---|------|------|
//! | 1 | `validate-input` | structural validation of the description |
//! | 2 | `instruction-repetition` | expand `<repeat>` ranges |
//! | 3 | `instruction-selection` | expand operation choices / move semantics |
//! | 4 | `random-selection` | seeded random instruction orderings (gated off by default) |
//! | 5 | `stride-selection` | expand induction increment choices |
//! | 6 | `immediate-selection` | expand immediate value choices |
//! | 7 | `operand-swap-before` | load↔store swap before unrolling |
//! | 8 | `unroll-selection` | one candidate per unroll factor |
//! | 9 | `unrolling` | materialize unrolled copies |
//! | 10 | `operand-swap-after` | per-copy load↔store swap (all combinations) |
//! | 11 | `register-allocation` | bind logical registers per the SysV argument ABI |
//! | 12 | `xmm-rotation` | resolve rotating XMM ranges per copy |
//! | 13 | `concretize` | resolve displacements; build concrete instructions |
//! | 14 | `induction-insertion` | emit per-loop induction updates |
//! | 15 | `branch-insertion` | loop label and conditional back-branch |
//! | 16 | `peephole` | canonicalizations (drop `add $0`, …) |
//! | 17 | `dedup` | remove textually identical programs |
//! | 18 | `limit` | cap the number of programs (gated: only when configured) |
//! | 19 | `codegen` | final [`mc_kernel::Program`] values and names |

pub mod candidate;
pub mod config;
pub mod context;
pub mod emit;
pub mod error;
pub mod generator;
pub mod manager;
pub mod pass;
pub mod passes;
pub mod plugin;

pub use candidate::Candidate;
pub use config::{CreatorConfig, RandomSelection};
pub use context::GenContext;
pub use error::{CreatorError, CreatorResult};
pub use generator::{GenerationResult, MicroCreator, PassStat};
pub use manager::PassManager;
pub use pass::Pass;
pub use plugin::Plugin;
