//! Pass 15: branch insertion — assemble the final line list.
//!
//! Emits the loop label, the body, the induction tail, and the conditional
//! back-branch, with Figure 8's explanatory comments when enabled.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_asm::format::AsmLine;
use mc_asm::inst::Inst;

/// Builds `candidate.lines`.
pub struct BranchInsertion;

impl Pass for BranchInsertion {
    fn name(&self) -> &str {
        "branch-insertion"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        let comments = ctx.config.emit_comments;
        ctx.for_each(self.name(), |cand| {
            let label = cand.desc.branch.asm_label();
            let mut lines = Vec::with_capacity(cand.body.len() + cand.tail.len() + 4);
            lines.push(AsmLine::Label(label.clone()));
            if comments {
                lines.push(AsmLine::Comment("Unrolling iterations".into()));
            }
            lines.extend(cand.body.iter().cloned().map(AsmLine::Inst));
            if comments {
                lines.push(AsmLine::Comment("Induction variables".into()));
            }
            lines.extend(cand.tail.iter().cloned().map(AsmLine::Inst));
            lines.push(AsmLine::Inst(Inst::branch(cand.desc.branch.mnemonic(), label)));
            cand.lines = lines;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::passes::{
        concretize::Concretize, induction_insert::InductionInsertion, regalloc::RegisterAllocation,
        unroll_select::UnrollSelection, unrolling::Unrolling, xmm_rotation::XmmRotation,
    };
    use mc_kernel::builder::figure6;
    use mc_kernel::UnrollRange;

    fn pipeline_to_branch(comments: bool) -> GenContext {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(3);
        desc.instructions[0].swap_after_unroll = false;
        let cfg = CreatorConfig { emit_comments: comments, ..CreatorConfig::default() };
        let mut ctx = GenContext::new(desc, cfg);
        UnrollSelection.run(&mut ctx).unwrap();
        Unrolling.run(&mut ctx).unwrap();
        RegisterAllocation.run(&mut ctx).unwrap();
        XmmRotation.run(&mut ctx).unwrap();
        Concretize.run(&mut ctx).unwrap();
        InductionInsertion.run(&mut ctx).unwrap();
        BranchInsertion.run(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn figure8_shape_with_comments() {
        let ctx = pipeline_to_branch(true);
        let text = mc_asm::format::write_lines(&ctx.candidates[0].lines);
        let expected = "\
.L6:
\t#Unrolling iterations
\tmovaps (%rsi), %xmm0
\tmovaps 16(%rsi), %xmm1
\tmovaps 32(%rsi), %xmm2
\t#Induction variables
\taddq $48, %rsi
\tsubq $12, %rdi
\tjge .L6
";
        assert_eq!(text, expected);
    }

    #[test]
    fn no_comments_when_disabled() {
        let ctx = pipeline_to_branch(false);
        let text = mc_asm::format::write_lines(&ctx.candidates[0].lines);
        assert!(!text.contains('#'), "{text}");
        assert!(text.starts_with(".L6:\n"));
        assert!(text.ends_with("jge .L6\n"));
    }

    #[test]
    fn branch_targets_the_label() {
        let ctx = pipeline_to_branch(true);
        let last = ctx.candidates[0].lines.last().unwrap();
        match last {
            AsmLine::Inst(i) => assert_eq!(i.target_label(), Some(".L6")),
            other => panic!("expected branch, got {other:?}"),
        }
    }
}
