//! Pass 3: instruction selection — fix each instruction's operation.
//!
//! Expands `OperationDesc::Choice` lists and move-semantics descriptions
//! ("MicroCreator also allows the user to provide move semantics, such as
//! the number of bytes to be moved, without specifying exactly which
//! instruction to use", §3.1) into one candidate per combination.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_kernel::OperationDesc;

/// Fixes every instruction's mnemonic, one candidate per combination.
pub struct InstructionSelection;

impl Pass for InstructionSelection {
    fn name(&self) -> &str {
        "instruction-selection"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        let name = self.name().to_owned();
        ctx.expand(&name, |cand| {
            let axes: Vec<Vec<mc_asm::Mnemonic>> =
                cand.desc.instructions.iter().map(|i| i.operation.candidates()).collect();
            if let Some(pos) = axes.iter().position(Vec::is_empty) {
                return Err(crate::error::CreatorError::Pass {
                    pass: name.clone(),
                    message: format!("instruction {pos} has no operation candidates"),
                });
            }
            let mut out = Vec::new();
            let mut combo_indices = vec![0usize; axes.len()];
            loop {
                let mut next = cand.clone();
                for (inst, (axis, &idx)) in
                    next.desc.instructions.iter_mut().zip(axes.iter().zip(&combo_indices))
                {
                    inst.operation = OperationDesc::Fixed(axis[idx]);
                }
                // Group label for figures: the first memory-move mnemonic.
                next.meta.mnemonic = next
                    .desc
                    .instructions
                    .iter()
                    .filter_map(|i| i.operation.fixed())
                    .find(|m| m.mem_move().is_some());
                out.push(next);
                // Odometer increment over the axes.
                let mut i = axes.len();
                loop {
                    if i == 0 {
                        return Ok(out);
                    }
                    i -= 1;
                    combo_indices[i] += 1;
                    if combo_indices[i] < axes[i].len() {
                        break;
                    }
                    combo_indices[i] = 0;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::{figure6, KernelBuilder};
    use mc_kernel::MoveSemantics;

    #[test]
    fn fixed_operation_is_identity() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        InstructionSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
        assert_eq!(ctx.candidates[0].meta.mnemonic, Some(Mnemonic::Movaps));
    }

    #[test]
    fn choice_expands_one_per_mnemonic() {
        let mut desc = figure6();
        desc.instructions[0].operation =
            OperationDesc::Choice(vec![Mnemonic::Movaps, Mnemonic::Movups, Mnemonic::Movss]);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        InstructionSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 3);
        let picked: Vec<_> = ctx.candidates.iter().map(|c| c.meta.mnemonic.unwrap()).collect();
        assert_eq!(picked, vec![Mnemonic::Movaps, Mnemonic::Movups, Mnemonic::Movss]);
    }

    #[test]
    fn move_semantics_expand_to_matching_instructions() {
        let mut desc = figure6();
        desc.instructions[0].operation =
            OperationDesc::Move(MoveSemantics { bytes: 16, aligned: None, double_precision: None });
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        InstructionSelection.run(&mut ctx).unwrap();
        // movaps, movapd, movups, movupd — "aligned versus non-aligned
        // instructions" (§3.1).
        assert_eq!(ctx.candidates.len(), 4);
    }

    #[test]
    fn two_choice_instructions_multiply() {
        let mut desc = KernelBuilder::new("two")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .stream_instruction(Mnemonic::Movss, "r2", false)
            .build()
            .unwrap();
        desc.instructions[0].operation =
            OperationDesc::Choice(vec![Mnemonic::Movss, Mnemonic::Movsd]);
        desc.instructions[1].operation =
            OperationDesc::Choice(vec![Mnemonic::Movaps, Mnemonic::Movups]);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        InstructionSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 4);
        // All four combinations present and fixed.
        assert!(ctx.candidates.iter().all(|c| c
            .desc
            .instructions
            .iter()
            .all(|i| i.operation.fixed().is_some())));
    }

    #[test]
    fn four_group_study_counts() {
        // §5.1: "Four groups of these 510 benchmark programs … movss,
        // movsd, movaps, and movapd" — a four-way choice on the Figure 6
        // kernel yields four candidates here (the unroll/swap expansion
        // multiplies each to 510 downstream).
        let mut desc = figure6();
        desc.instructions[0].operation = OperationDesc::Choice(vec![
            Mnemonic::Movss,
            Mnemonic::Movsd,
            Mnemonic::Movaps,
            Mnemonic::Movapd,
        ]);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        InstructionSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 4);
    }
}
