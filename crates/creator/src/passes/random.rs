//! Pass 4: random instruction selection (gated off unless configured).
//!
//! §3.2: the instruction-selection phase also "handles … random instruction
//! selection. Instruction selection is a generic instruction scheduling
//! pass which generates as many microbenchmark programs the user requires."
//! When enabled, each candidate spawns `variants` new candidates whose body
//! is `length` instructions drawn (with replacement) from the description's
//! instruction pool, using the run's seeded RNG for reproducibility.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use rand::Rng;

/// Seeded random body construction.
pub struct RandomInstructionSelection;

impl Pass for RandomInstructionSelection {
    fn name(&self) -> &str {
        "random-selection"
    }

    fn gate(&self, ctx: &GenContext) -> bool {
        ctx.config.random_selection.is_some()
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        let Some(sel) = ctx.config.random_selection else {
            return Ok(());
        };
        // Draw all indices up front so `expand`'s closure stays `FnMut`
        // without borrowing the RNG from the context it mutates.
        let pool_sizes: Vec<usize> =
            ctx.candidates.iter().map(|c| c.desc.instructions.len()).collect();
        let mut draws: Vec<Vec<Vec<usize>>> = Vec::with_capacity(pool_sizes.len());
        for &pool in &pool_sizes {
            let mut per_candidate = Vec::with_capacity(sel.variants as usize);
            for _ in 0..sel.variants {
                let body: Vec<usize> =
                    (0..sel.length).map(|_| ctx.rng.gen_range(0..pool)).collect();
                per_candidate.push(body);
            }
            draws.push(per_candidate);
        }
        let mut cursor = 0usize;
        ctx.expand(self.name(), |cand| {
            let per_candidate = &draws[cursor];
            cursor += 1;
            let mut out = Vec::with_capacity(per_candidate.len());
            for (v, indices) in per_candidate.iter().enumerate() {
                let mut next = cand.clone();
                next.desc.instructions =
                    indices.iter().map(|&i| cand.desc.instructions[i].clone()).collect();
                // The drawn body supersedes any earlier mnemonic grouping.
                next.meta.mnemonic = next
                    .desc
                    .instructions
                    .iter()
                    .filter_map(|i| i.operation.fixed())
                    .find(|m| m.mem_move().is_some());
                next.meta.extra.push(("random_variant".into(), v.to_string()));
                out.push(next);
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CreatorConfig, RandomSelection};
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::KernelBuilder;

    fn two_inst_desc() -> mc_kernel::KernelDesc {
        KernelBuilder::new("pool")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .stream_instruction(Mnemonic::Movsd, "r2", false)
            .build()
            .unwrap()
    }

    #[test]
    fn gated_off_by_default() {
        let ctx = GenContext::new(two_inst_desc(), CreatorConfig::default());
        assert!(!RandomInstructionSelection.gate(&ctx));
    }

    #[test]
    fn generates_requested_variants_of_requested_length() {
        let cfg = CreatorConfig::default()
            .with_random_selection(RandomSelection { variants: 5, length: 7 });
        let mut ctx = GenContext::new(two_inst_desc(), cfg);
        assert!(RandomInstructionSelection.gate(&ctx));
        RandomInstructionSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 5);
        assert!(ctx.candidates.iter().all(|c| c.desc.instructions.len() == 7));
    }

    #[test]
    fn same_seed_same_bodies() {
        let cfg = || {
            CreatorConfig::default()
                .with_seed(1234)
                .with_random_selection(RandomSelection { variants: 3, length: 4 })
        };
        let mut a = GenContext::new(two_inst_desc(), cfg());
        let mut b = GenContext::new(two_inst_desc(), cfg());
        RandomInstructionSelection.run(&mut a).unwrap();
        RandomInstructionSelection.run(&mut b).unwrap();
        for (ca, cb) in a.candidates.iter().zip(&b.candidates) {
            assert_eq!(ca.desc.instructions, cb.desc.instructions);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = |s| {
            CreatorConfig::default()
                .with_seed(s)
                .with_random_selection(RandomSelection { variants: 8, length: 8 })
        };
        let mut a = GenContext::new(two_inst_desc(), cfg(1));
        let mut b = GenContext::new(two_inst_desc(), cfg(2));
        RandomInstructionSelection.run(&mut a).unwrap();
        RandomInstructionSelection.run(&mut b).unwrap();
        let bodies = |ctx: &GenContext| -> Vec<Vec<mc_kernel::InstructionDesc>> {
            ctx.candidates.iter().map(|c| c.desc.instructions.clone()).collect()
        };
        assert_ne!(bodies(&a), bodies(&b), "8×8 draws from 2 instructions should differ");
    }
}
