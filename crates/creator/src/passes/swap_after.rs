//! Pass 10: operand swap after unrolling.
//!
//! §3.2: "If the tool swaps after the unrolling, it creates the same two
//! benchmark programs but one program with a load instruction followed by a
//! store instruction also. In addition, a final program is created with a
//! store instruction followed by a load instruction." — i.e. each unrolled
//! copy of a marked instruction flips independently, producing every
//! `(Load|Store)+` combination: 2^k variants for k marked copies. This is
//! the pass that turns the Figure 6 input into 510 programs
//! (Σ_{u=1..8} 2^u = 510).

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;

/// Expands per-copy swaps into all direction combinations.
pub struct OperandSwapAfter;

impl Pass for OperandSwapAfter {
    fn name(&self) -> &str {
        "operand-swap-after"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.expand(self.name(), |cand| {
            let marked: Vec<usize> = cand
                .copies
                .iter()
                .enumerate()
                .filter(|(_, (inst, _))| inst.swap_after_unroll)
                .map(|(i, _)| i)
                .collect();
            if marked.len() >= usize::BITS as usize {
                return Err(crate::error::CreatorError::Pass {
                    pass: "operand-swap-after".into(),
                    message: format!("{} swap sites would overflow the mask", marked.len()),
                });
            }
            let mut out = Vec::with_capacity(1usize << marked.len());
            for mask in 0usize..(1 << marked.len()) {
                let mut next = cand.clone();
                for (bit, &idx) in marked.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        next.copies[idx].0 = next.copies[idx].0.swapped();
                    }
                    next.copies[idx].0.swap_after_unroll = false;
                }
                out.push(next);
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::passes::{unroll_select::UnrollSelection, unrolling::Unrolling};
    use mc_kernel::builder::figure6;
    use mc_kernel::UnrollRange;

    fn prepared_ctx(unroll: u32) -> GenContext {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(unroll);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        Unrolling.run(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn unroll_2_gives_all_four_patterns() {
        // The paper's worked example: LL, SS, LS, SL.
        let mut ctx = prepared_ctx(2);
        OperandSwapAfter.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 4);
        let patterns: Vec<String> = ctx
            .candidates
            .iter()
            .map(|c| {
                c.copies
                    .iter()
                    .map(|(inst, _)| if inst.is_load_shaped() { 'L' } else { 'S' })
                    .collect()
            })
            .collect();
        let mut sorted = patterns.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["LL", "LS", "SL", "SS"]);
    }

    #[test]
    fn unroll_range_1_to_8_gives_510_total() {
        // §3 / §5.1: "MicroCreator generated 510 benchmark program
        // variations" from the single Figure 6 file.
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        Unrolling.run(&mut ctx).unwrap();
        OperandSwapAfter.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 510);
    }

    #[test]
    fn unmarked_copies_pass_through() {
        let mut ctx = prepared_ctx(4);
        for (inst, _) in &mut ctx.candidates[0].copies {
            inst.swap_after_unroll = false;
        }
        OperandSwapAfter.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
    }

    #[test]
    fn markers_consumed() {
        let mut ctx = prepared_ctx(3);
        OperandSwapAfter.run(&mut ctx).unwrap();
        assert!(ctx.candidates.iter().all(|c| c.copies.iter().all(|(i, _)| !i.swap_after_unroll)));
    }
}
