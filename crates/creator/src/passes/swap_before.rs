//! Pass 7: operand swap before unrolling.
//!
//! §3.2: "Consider a twice unrolled load instruction. When the tool swaps
//! the operands before the unrolling, it generates either two loads or two
//! stores." Swapping before unrolling flips the *whole* instruction, so all
//! its unrolled copies share a direction.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;

/// Expands `swap_before_unroll` markers: original + swapped per marked
/// instruction (cartesian across marked instructions).
pub struct OperandSwapBefore;

impl Pass for OperandSwapBefore {
    fn name(&self) -> &str {
        "operand-swap-before"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.expand(self.name(), |cand| {
            let marked: Vec<usize> = cand
                .desc
                .instructions
                .iter()
                .enumerate()
                .filter(|(_, i)| i.swap_before_unroll)
                .map(|(idx, _)| idx)
                .collect();
            let mut out = Vec::with_capacity(1 << marked.len());
            for mask in 0u32..(1 << marked.len()) {
                let mut next = cand.clone();
                for (bit, &idx) in marked.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        next.desc.instructions[idx] = next.desc.instructions[idx].swapped();
                    }
                    next.desc.instructions[idx].swap_before_unroll = false;
                }
                out.push(next);
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::{figure6, KernelBuilder};

    #[test]
    fn unmarked_is_identity() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        OperandSwapBefore.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1, "figure6 uses swap_after, not swap_before");
    }

    #[test]
    fn marked_instruction_doubles() {
        let mut desc = KernelBuilder::new("sb")
            .stream_instruction(Mnemonic::Movaps, "r1", false)
            .build()
            .unwrap();
        desc.instructions[0].swap_before_unroll = true;
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        OperandSwapBefore.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 2);
        assert!(ctx.candidates[0].desc.instructions[0].is_load_shaped());
        assert!(ctx.candidates[1].desc.instructions[0].is_store_shaped());
        // Markers consumed.
        assert!(ctx.candidates.iter().all(|c| !c.desc.instructions[0].swap_before_unroll));
    }

    #[test]
    fn two_marked_instructions_quadruple() {
        let mut desc = KernelBuilder::new("sb2")
            .stream_instruction(Mnemonic::Movaps, "r1", false)
            .stream_instruction(Mnemonic::Movss, "r2", false)
            .build()
            .unwrap();
        desc.instructions[0].swap_before_unroll = true;
        desc.instructions[1].swap_before_unroll = true;
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        OperandSwapBefore.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 4);
    }
}
