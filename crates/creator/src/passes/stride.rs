//! Pass 5: stride selection.
//!
//! §3.2: "The creator then selects the strides for each induction variable
//! … For each element, if there are multiple choices, a separate version of
//! the kernel is created."

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;

/// Fixes each induction's increment, one candidate per combination.
pub struct StrideSelection;

impl Pass for StrideSelection {
    fn name(&self) -> &str {
        "stride-selection"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.expand(self.name(), |cand| {
            let axes: Vec<Vec<i64>> =
                cand.desc.inductions.iter().map(|i| i.increment_choices.clone()).collect();
            let had_choice = axes.iter().any(|a| a.len() > 1);
            let mut out = Vec::new();
            let mut idx = vec![0usize; axes.len()];
            loop {
                let mut next = cand.clone();
                next.chosen_increments = idx.iter().zip(&axes).map(|(&i, axis)| axis[i]).collect();
                for (k, ind) in next.desc.inductions.iter_mut().enumerate() {
                    let chosen = next.chosen_increments[k];
                    // Keep the Figure 6 coupling: when the offset step was
                    // implicitly the increment, a new stride moves the
                    // per-copy displacement spacing with it.
                    if ind.offset_step == ind.primary_increment() {
                        ind.offset_step = chosen;
                    }
                    ind.increment_choices = vec![chosen];
                }
                if had_choice {
                    next.meta.strides = next.chosen_increments.clone();
                }
                out.push(next);
                let mut i = axes.len();
                loop {
                    if i == 0 {
                        return Ok(out);
                    }
                    i -= 1;
                    idx[i] += 1;
                    if idx[i] < axes[i].len() {
                        break;
                    }
                    idx[i] = 0;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::{figure6, KernelBuilder};

    #[test]
    fn single_choice_is_identity_with_no_meta() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        StrideSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
        assert_eq!(ctx.candidates[0].chosen_increments, vec![16, -1]);
        assert!(ctx.candidates[0].meta.strides.is_empty(), "no real choice → no label");
    }

    #[test]
    fn multi_choice_expands_and_recouples_offset() {
        let desc = KernelBuilder::new("strided")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .strides("r1", &[4, 8, 16])
            .build()
            .unwrap();
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        StrideSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 3);
        let steps: Vec<i64> =
            ctx.candidates.iter().map(|c| c.desc.inductions[0].offset_step).collect();
        assert_eq!(steps, vec![4, 8, 16], "offset step follows the chosen stride");
        assert!(ctx.candidates.iter().all(|c| !c.meta.strides.is_empty()));
    }

    #[test]
    fn explicit_offset_step_is_preserved() {
        let mut desc = KernelBuilder::new("strided")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .strides("r1", &[4, 8])
            .build()
            .unwrap();
        desc.inductions[0].offset_step = 64; // decoupled by the user
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        StrideSelection.run(&mut ctx).unwrap();
        assert!(ctx.candidates.iter().all(|c| c.desc.inductions[0].offset_step == 64));
    }

    #[test]
    fn choices_on_two_inductions_multiply() {
        let mut desc = KernelBuilder::new("s2")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .stream_instruction(Mnemonic::Movss, "r2", false)
            .build()
            .unwrap();
        desc.inductions[0].increment_choices = vec![4, 8];
        desc.inductions[1].increment_choices = vec![4, 8, 16];
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        StrideSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 6);
    }

    #[test]
    fn inductions_are_singleton_after_pass() {
        let desc = KernelBuilder::new("strided")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .strides("r1", &[4, 8])
            .build()
            .unwrap();
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        StrideSelection.run(&mut ctx).unwrap();
        assert!(ctx.candidates.iter().all(|c| c
            .desc
            .inductions
            .iter()
            .all(|i| i.increment_choices.len() == 1)));
    }
}
