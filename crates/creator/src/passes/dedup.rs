//! Pass 17: deduplication — drop textually identical programs.
//!
//! Combining `swap_before_unroll` with `swap_after_unroll`, or symmetric
//! operand choices, can synthesize the same assembly text through different
//! choice paths; only the first occurrence is kept.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use std::collections::HashSet;

/// Removes duplicate candidates by rendered text.
pub struct Dedup;

impl Pass for Dedup {
    fn name(&self) -> &str {
        "dedup"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        let mut seen: HashSet<String> = HashSet::with_capacity(ctx.candidates.len());
        ctx.candidates.retain(|cand| {
            let key = mc_asm::format::write_lines(&cand.lines);
            seen.insert(key)
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::format::AsmLine;
    use mc_asm::parse::parse_instruction;
    use mc_kernel::builder::figure6;

    fn line(text: &str) -> AsmLine {
        AsmLine::Inst(parse_instruction(text).unwrap())
    }

    #[test]
    fn keeps_first_of_identical_pair() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        let mut dup = ctx.candidates[0].clone();
        ctx.candidates[0].lines = vec![line("movaps (%rsi), %xmm0")];
        dup.lines = vec![line("movaps (%rsi), %xmm0")];
        dup.meta.extra.push(("tag".into(), "second".into()));
        ctx.candidates.push(dup);
        Dedup.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
        assert!(ctx.candidates[0].meta.extra.is_empty(), "first occurrence won");
    }

    #[test]
    fn distinct_programs_survive() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        let mut other = ctx.candidates[0].clone();
        ctx.candidates[0].lines = vec![line("movaps (%rsi), %xmm0")];
        other.lines = vec![line("movaps (%rsi), %xmm1")];
        ctx.candidates.push(other);
        Dedup.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 2);
    }

    #[test]
    fn both_swaps_collapse_shared_patterns() {
        // swap_before × swap_after on one instruction at unroll 1 yields
        // {L,S} × {identity,flip} = 4 paths but only 2 distinct programs.
        use crate::generator::MicroCreator;
        let mut desc = figure6();
        desc.unrolling = mc_kernel::UnrollRange::fixed(1);
        desc.instructions[0].swap_before_unroll = true;
        let result = MicroCreator::new().generate(&desc).unwrap();
        assert_eq!(result.programs.len(), 2, "dedup collapsed the doubled pair");
    }
}
