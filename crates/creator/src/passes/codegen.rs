//! Pass 19: code generation — produce the final [`mc_kernel::Program`]
//! values ("Finally, the creator generates the obtained code", §3.2).

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_kernel::{MemDir, Program};
use std::collections::HashMap;

/// Converts every surviving candidate into a named program.
pub struct Codegen;

impl Pass for Codegen {
    fn name(&self) -> &str {
        "codegen"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        let mut name_counts: HashMap<String, u32> = HashMap::new();
        let mut programs = Vec::with_capacity(ctx.candidates.len());
        for cand in &ctx.candidates {
            let mut meta = cand.meta.clone();
            // The (Load|Store)+ direction pattern, read off the body.
            meta.directions = cand
                .body
                .iter()
                .filter_map(|inst| {
                    if inst.store_ref().is_some() {
                        Some(MemDir::Store)
                    } else if inst.load_ref().is_some() {
                        Some(MemDir::Load)
                    } else {
                        None
                    }
                })
                .collect();
            let base_name = meta.variant_name();
            let count = name_counts.entry(base_name.clone()).or_insert(0);
            let name =
                if *count == 0 { base_name.clone() } else { format!("{base_name}_v{count}") };
            *count += 1;
            programs.push(Program {
                name,
                nb_arrays: cand.desc.array_registers().len() as u32,
                element_bytes: cand.desc.element_bytes,
                elements_per_iteration: cand.elements_per_iter,
                lines: cand.lines.clone(),
                meta,
            });
        }
        ctx.programs = programs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::Codegen;
    use crate::generator::MicroCreator;
    use mc_kernel::builder::figure6;
    use mc_kernel::UnrollRange;

    #[test]
    fn names_are_unique_across_a_generation() {
        let result = MicroCreator::new().generate(&figure6()).unwrap();
        let mut names: Vec<&str> = result.programs.iter().map(|p| p.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn directions_match_body() {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(2);
        let result = MicroCreator::new().generate(&desc).unwrap();
        assert_eq!(result.programs.len(), 4);
        for p in &result.programs {
            assert_eq!(p.meta.directions.len(), 2);
            assert_eq!(p.meta.load_count(), p.load_count());
            assert_eq!(p.meta.store_count(), p.store_count());
        }
    }

    #[test]
    fn program_metadata_propagates() {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(3);
        let result = MicroCreator::new().generate(&desc).unwrap();
        for p in &result.programs {
            assert_eq!(p.nb_arrays, 1);
            assert_eq!(p.element_bytes, 4);
            assert_eq!(p.elements_per_iteration, 12, "3 copies × 4 floats");
            assert_eq!(p.meta.unroll, 3);
        }
    }
}
