//! Pass 11: register allocation.
//!
//! §3.1: "The hardware detection system associates r1 to a physical
//! register such as %rsi or %rdi." The binding follows MicroLauncher's
//! linkage contract (§4.4): the generated kernel is called as
//! `int myFunction(int n, void *a0, void *a1, …)`, so under the SysV AMD64
//! ABI the trip count lands in `%rdi` and the array pointers in
//! `%rsi, %rdx, %rcx, %r8, %r9`. Arrays beyond the five register arguments
//! are pre-loaded from the stack into scratch/callee-saved registers by the
//! launcher prologue — the binding continues `%r10, %r11, %rbx, %r12, %r13`.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_asm::reg::{GprName, Reg};

/// Binding order for array-pointer registers (after `%rdi` = trip count).
pub const ARRAY_REGS: [GprName; 10] = [
    GprName::Rsi,
    GprName::Rdx,
    GprName::Rcx,
    GprName::R8,
    GprName::R9,
    GprName::R10,
    GprName::R11,
    GprName::Rbx,
    GprName::R12,
    GprName::R13,
];

/// Binds logical registers to physical ones.
pub struct RegisterAllocation;

impl Pass for RegisterAllocation {
    fn name(&self) -> &str {
        "register-allocation"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.for_each(self.name(), |cand| {
            cand.binding.clear();
            // 1. Trip counter → %rdi.
            if let Some(last) = cand.desc.last_induction() {
                if let Some(name) = last.register.logical_name() {
                    cand.binding.insert(name.to_owned(), Reg::gpr(GprName::Rdi));
                }
            }
            // 2. Arrays in first-use order → the argument registers.
            let arrays = cand.desc.array_registers();
            if arrays.len() > ARRAY_REGS.len() {
                return Err(format!(
                    "kernel uses {} arrays but only {} array registers are available",
                    arrays.len(),
                    ARRAY_REGS.len()
                ));
            }
            let mut next_array = 0usize;
            for name in arrays {
                if cand.binding.contains_key(&name) {
                    continue; // the counter doubling as a base (unusual)
                }
                cand.binding.insert(name, Reg::gpr(ARRAY_REGS[next_array]));
                next_array += 1;
            }
            // 3. Any remaining logical registers (data/index registers) →
            //    leftover allocatable registers.
            let mut leftovers = ARRAY_REGS[next_array..].iter().copied();
            let mut remaining: Vec<String> = Vec::new();
            for inst in &cand.desc.instructions {
                for name in inst.logical_registers() {
                    if !cand.binding.contains_key(name) && !remaining.iter().any(|n| n == name) {
                        remaining.push(name.to_owned());
                    }
                }
            }
            for ind in &cand.desc.inductions {
                if let Some(name) = ind.register.logical_name() {
                    if !cand.binding.contains_key(name) && !remaining.iter().any(|n| n == name) {
                        remaining.push(name.to_owned());
                    }
                }
            }
            for name in remaining {
                let reg = leftovers
                    .next()
                    .ok_or_else(|| format!("ran out of registers binding `{name}`"))?;
                cand.binding.insert(name, Reg::gpr(reg));
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::{figure6, multi_array_traversal};

    #[test]
    fn figure6_binding_matches_figure8() {
        // Figure 8 uses %rsi for the array pointer and %rdi for the counter.
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        RegisterAllocation.run(&mut ctx).unwrap();
        let b = &ctx.candidates[0].binding;
        assert_eq!(b.get("r1"), Some(&Reg::gpr(GprName::Rsi)));
        assert_eq!(b.get("r0"), Some(&Reg::gpr(GprName::Rdi)));
    }

    #[test]
    fn eight_arrays_bind_distinct_registers() {
        // Figure 15 runs an 8-array traversal.
        let desc = multi_array_traversal(Mnemonic::Movss, 8);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        RegisterAllocation.run(&mut ctx).unwrap();
        let b = &ctx.candidates[0].binding;
        assert_eq!(b.len(), 9, "8 arrays + counter");
        let mut regs: Vec<Reg> = b.values().copied().collect();
        regs.sort_by_key(|r| format!("{r}"));
        regs.dedup();
        assert_eq!(regs.len(), 9, "all bindings distinct");
    }

    #[test]
    fn too_many_arrays_is_an_error() {
        let desc = multi_array_traversal(Mnemonic::Movss, 11);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        let err = RegisterAllocation.run(&mut ctx).unwrap_err();
        assert!(err.to_string().contains("11 arrays"), "{err}");
    }

    #[test]
    fn physical_registers_need_no_binding() {
        // Figure 9's %eax counter is already physical.
        let mut desc = figure6();
        desc.inductions.push(mc_kernel::InductionDesc {
            register: mc_kernel::RegisterRef::Physical(Reg::gpr32(GprName::Rax)),
            increment_choices: vec![1],
            offset_step: 0,
            linked: None,
            last: false,
            not_affected_unroll: true,
        });
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        RegisterAllocation.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates[0].binding.len(), 2, "only r0 and r1 bound");
    }
}
