//! Pass 14: induction insertion — emit the per-loop register updates.
//!
//! For Figure 6 at unroll 3 this produces Figure 8's
//! `add $48, %rsi` / `sub $12, %rdi` pair: the address induction advances
//! `16 × 3` bytes and the linked trip counter drops by
//! `1 × 3 × (16 / 4)` elements. The `last_induction` update is emitted
//! last so the loop branch consumes its flags.

use crate::candidate::Candidate;
use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_asm::inst::{Inst, Mnemonic, Operand, Width};
use mc_asm::reg::Reg;

/// Appends induction update instructions to `candidate.tail` and records
/// the per-iteration element count.
pub struct InductionInsertion;

impl Pass for InductionInsertion {
    fn name(&self) -> &str {
        "induction-insertion"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.for_each(self.name(), |cand| {
            let updates = per_loop_updates(cand)?;
            let mut tail = Vec::with_capacity(updates.len());
            let mut last_update: Option<Inst> = None;
            for (idx, delta) in updates {
                let ind = &cand.desc.inductions[idx];
                let reg = cand
                    .resolve_reg(&ind.register, 0)
                    .ok_or_else(|| format!("unbound induction register {}", ind.register))?;
                let width = match reg {
                    Reg::Gpr(g) => g.width,
                    Reg::Xmm(_) => {
                        return Err(format!("induction register {reg} must be a GPR"));
                    }
                };
                let inst = update_instruction(reg, width, delta);
                if ind.last {
                    cand.elements_per_iter = delta.unsigned_abs().max(1);
                    last_update = Some(inst);
                } else {
                    tail.push(inst);
                }
            }
            if let Some(inst) = last_update {
                tail.push(inst);
            }
            cand.tail = tail;
            Ok(())
        })
    }
}

/// `(induction index, per-loop delta)` for every induction, in declaration
/// order, with linked inductions scaled into element units.
pub fn per_loop_updates(cand: &Candidate) -> Result<Vec<(usize, i64)>, String> {
    let mut out = Vec::with_capacity(cand.desc.inductions.len());
    for (i, ind) in cand.desc.inductions.iter().enumerate() {
        let increment = cand.increment_for(i);
        let elements_per_copy = match &ind.linked {
            Some(linked) => {
                let target = cand
                    .desc
                    .inductions
                    .iter()
                    .position(|other| &other.register == linked)
                    .ok_or_else(|| format!("dangling link to {linked}"))?;
                cand.elements_per_copy(target)
            }
            None => 1,
        };
        out.push((i, ind.per_loop_update(increment, cand.unroll.max(1), elements_per_copy)));
    }
    Ok(out)
}

/// Builds `addq $d, reg` — canonicalized to `subq $|d|, reg` for negative
/// deltas, matching Figure 8's `sub $12, %rdi`.
fn update_instruction(reg: Reg, width: Width, delta: i64) -> Inst {
    if delta < 0 {
        Inst::binary(Mnemonic::Sub(width), Operand::Imm(-delta), Operand::Reg(reg))
    } else {
        Inst::binary(Mnemonic::Add(width), Operand::Imm(delta), Operand::Reg(reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::passes::regalloc::RegisterAllocation;
    use mc_asm::reg::GprName;
    use mc_kernel::builder::figure6;

    fn prepared(unroll: u32) -> GenContext {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        ctx.candidates[0].unroll = unroll;
        ctx.candidates[0].chosen_increments = vec![16, -1];
        RegisterAllocation.run(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn figure8_updates() {
        let mut ctx = prepared(3);
        InductionInsertion.run(&mut ctx).unwrap();
        let tail: Vec<String> = ctx.candidates[0].tail.iter().map(|i| i.to_string()).collect();
        assert_eq!(tail, vec!["addq $48, %rsi", "subq $12, %rdi"]);
        assert_eq!(ctx.candidates[0].elements_per_iter, 12);
    }

    #[test]
    fn unroll_1_updates() {
        let mut ctx = prepared(1);
        InductionInsertion.run(&mut ctx).unwrap();
        let tail: Vec<String> = ctx.candidates[0].tail.iter().map(|i| i.to_string()).collect();
        assert_eq!(tail, vec!["addq $16, %rsi", "subq $4, %rdi"]);
        assert_eq!(ctx.candidates[0].elements_per_iter, 4);
    }

    #[test]
    fn last_update_is_emitted_last() {
        // Reorder inductions so the counter comes first in the description;
        // the emitted tail must still end with the counter update.
        let mut desc = figure6();
        desc.inductions.swap(0, 1);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        ctx.candidates[0].unroll = 2;
        RegisterAllocation.run(&mut ctx).unwrap();
        InductionInsertion.run(&mut ctx).unwrap();
        let tail = &ctx.candidates[0].tail;
        assert_eq!(tail.last().unwrap().to_string(), "subq $8, %rdi");
    }

    #[test]
    fn unaffected_counter_uses_register_width() {
        // Figure 9: addl $1, %eax regardless of unrolling.
        let mut desc = figure6();
        desc.inductions.push(mc_kernel::InductionDesc {
            register: mc_kernel::RegisterRef::Physical(Reg::gpr32(GprName::Rax)),
            increment_choices: vec![1],
            offset_step: 0,
            linked: None,
            last: false,
            not_affected_unroll: true,
        });
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        ctx.candidates[0].unroll = 8;
        RegisterAllocation.run(&mut ctx).unwrap();
        InductionInsertion.run(&mut ctx).unwrap();
        let texts: Vec<String> = ctx.candidates[0].tail.iter().map(|i| i.to_string()).collect();
        assert!(texts.contains(&"addl $1, %eax".to_owned()), "{texts:?}");
    }
}
