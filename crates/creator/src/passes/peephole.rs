//! Pass 16: peephole canonicalization.
//!
//! Light clean-ups on the rendered lines: drop `add/sub $0` no-ops, and
//! normalize negative-immediate `add`/`sub` to their positive-immediate
//! duals so all generated programs use one spelling.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_asm::format::AsmLine;
use mc_asm::inst::{Inst, Mnemonic, Operand};

/// Canonicalizes generated lines.
pub struct Peephole;

impl Pass for Peephole {
    fn name(&self) -> &str {
        "peephole"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.for_each(self.name(), |cand| {
            let mut out = Vec::with_capacity(cand.lines.len());
            for line in cand.lines.drain(..) {
                match line {
                    AsmLine::Inst(inst) => {
                        if let Some(rewritten) = rewrite(inst) {
                            out.push(AsmLine::Inst(rewritten));
                        }
                    }
                    other => out.push(other),
                }
            }
            cand.lines = out;
            Ok(())
        })
    }
}

/// Returns the canonical form, or `None` to delete the instruction.
fn rewrite(inst: Inst) -> Option<Inst> {
    let (is_add, width) = match inst.mnemonic {
        Mnemonic::Add(w) => (true, w),
        Mnemonic::Sub(w) => (false, w),
        _ => return Some(inst),
    };
    // Only immediate-source register-destination forms are touched.
    let imm = match inst.operands.first().and_then(Operand::as_imm) {
        Some(v) => v,
        None => return Some(inst),
    };
    if inst.operands.len() != 2 || inst.operands[1].as_reg().is_none() {
        return Some(inst);
    }
    if imm == 0 {
        return None;
    }
    if imm < 0 {
        let flipped = if is_add { Mnemonic::Sub(width) } else { Mnemonic::Add(width) };
        return Some(Inst::binary(flipped, Operand::Imm(-imm), inst.operands[1].clone()));
    }
    Some(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Width;
    use mc_asm::parse::parse_instruction;
    use mc_kernel::builder::figure6;

    fn run_on(lines: Vec<AsmLine>) -> Vec<AsmLine> {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        ctx.candidates[0].lines = lines;
        Peephole.run(&mut ctx).unwrap();
        ctx.candidates.remove(0).lines
    }

    fn inst(text: &str) -> AsmLine {
        AsmLine::Inst(parse_instruction(text).unwrap())
    }

    #[test]
    fn drops_zero_updates() {
        let out = run_on(vec![inst("addq $0, %rsi"), inst("subq $0, %rdi"), inst("nop")]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn normalizes_negative_immediates() {
        let out = run_on(vec![inst("addq $-16, %rsi"), inst("subq $-4, %rdi")]);
        let texts: Vec<String> = out
            .iter()
            .map(|l| match l {
                AsmLine::Inst(i) => i.to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(texts, vec!["subq $16, %rsi", "addq $4, %rdi"]);
    }

    #[test]
    fn leaves_memory_destinations_alone() {
        let out = run_on(vec![inst("addq $0, (%rsi)")]);
        assert_eq!(out.len(), 1, "RMW to memory is semantically a touch; keep it");
    }

    #[test]
    fn leaves_labels_comments_and_other_instructions() {
        let out = run_on(vec![
            AsmLine::Label(".L6".into()),
            AsmLine::Comment("c".into()),
            inst("movaps (%rsi), %xmm0"),
            inst("jge .L6"),
        ]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn rewrite_preserves_positive_add() {
        let i = parse_instruction("addq $48, %rsi").unwrap();
        assert_eq!(rewrite(i.clone()), Some(i));
        let _ = Width::Q; // silence unused import in some cfgs
    }

    #[test]
    fn register_source_add_is_untouched() {
        // Figure 2 contains `addq %r11, %r8` — must survive the peephole.
        let out = run_on(vec![inst("addq %r11, %r8")]);
        assert_eq!(out.len(), 1);
    }
}
