//! Pass 13: concretization — resolve remaining references and build the
//! concrete instruction body.
//!
//! Displacement rule (Figures 6 → 8): copy `i` of an instruction whose
//! memory base is induction register `r` addresses
//! `offset + i × r.offset_step`, e.g. `0(%rsi)`, `16(%rsi)`, `32(%rsi)` for
//! the three movaps copies.

use crate::candidate::Candidate;
use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_asm::inst::{Inst, MemRef, Operand};
use mc_kernel::{InstructionDesc, OperandDesc};

/// Builds `candidate.body` from the resolved copy list.
pub struct Concretize;

impl Pass for Concretize {
    fn name(&self) -> &str {
        "concretize"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.for_each(self.name(), |cand| {
            let mut body = Vec::with_capacity(cand.copies.len());
            for (inst, copy) in &cand.copies {
                body.push(concretize_instruction(cand, inst, *copy)?);
            }
            cand.body = body;
            Ok(())
        })
    }
}

/// Lowers one description instruction at a given copy index.
pub fn concretize_instruction(
    cand: &Candidate,
    inst: &InstructionDesc,
    copy: u32,
) -> Result<Inst, String> {
    let mnemonic = inst
        .operation
        .fixed()
        .ok_or_else(|| "operation not fixed — instruction-selection did not run".to_owned())?;
    let mut operands = Vec::with_capacity(inst.operands.len());
    for op in &inst.operands {
        operands.push(match op {
            OperandDesc::Register(r) => Operand::Reg(
                cand.resolve_reg(r, copy)
                    .ok_or_else(|| format!("unbound register reference {r}"))?,
            ),
            OperandDesc::Immediate(imm) => {
                if imm.choices.len() != 1 {
                    return Err("immediate not selected — immediate-selection did not run".into());
                }
                Operand::Imm(imm.choices[0])
            }
            OperandDesc::Memory(mem) => {
                let base = cand
                    .resolve_reg(&mem.base, copy)
                    .ok_or_else(|| format!("unbound memory base {}", mem.base))?;
                // Displacement step from the base register's induction.
                let step = cand
                    .desc
                    .inductions
                    .iter()
                    .find(|ind| ind.register == mem.base)
                    .map(|ind| ind.offset_step)
                    .unwrap_or(0);
                let disp = mem.offset + i64::from(copy) * step;
                let index = match &mem.index {
                    Some((idx, scale)) => Some((
                        cand.resolve_reg(idx, copy)
                            .ok_or_else(|| format!("unbound index register {idx}"))?,
                        *scale,
                    )),
                    None => None,
                };
                Operand::Mem(MemRef { base: Some(base), index, disp })
            }
        });
    }
    Ok(Inst::new(mnemonic, operands))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::passes::{
        regalloc::RegisterAllocation, unroll_select::UnrollSelection, unrolling::Unrolling,
        xmm_rotation::XmmRotation,
    };
    use mc_kernel::builder::figure6;
    use mc_kernel::UnrollRange;

    fn run_through(unroll: u32) -> GenContext {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(unroll);
        // Disable the after-swap so the body stays all-loads.
        desc.instructions[0].swap_after_unroll = false;
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        Unrolling.run(&mut ctx).unwrap();
        RegisterAllocation.run(&mut ctx).unwrap();
        XmmRotation.run(&mut ctx).unwrap();
        Concretize.run(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn figure8_displacements_and_registers() {
        let ctx = run_through(3);
        let body = &ctx.candidates[0].body;
        let texts: Vec<String> = body.iter().map(|i| i.to_string()).collect();
        assert_eq!(
            texts,
            vec!["movaps (%rsi), %xmm0", "movaps 16(%rsi), %xmm1", "movaps 32(%rsi), %xmm2",]
        );
    }

    #[test]
    fn unroll_8_walks_full_stride_range() {
        let ctx = run_through(8);
        let disps: Vec<i64> =
            ctx.candidates[0].body.iter().map(|i| i.load_ref().unwrap().disp).collect();
        assert_eq!(disps, vec![0, 16, 32, 48, 64, 80, 96, 112]);
    }

    #[test]
    fn unfixed_operation_is_an_error() {
        let mut ctx = run_through(1);
        // Damage a copy: revert its operation to a choice.
        ctx.candidates[0].copies[0].0.operation = mc_kernel::OperationDesc::Choice(vec![
            mc_asm::Mnemonic::Movss,
            mc_asm::Mnemonic::Movsd,
        ]);
        let err = Concretize.run(&mut ctx).unwrap_err();
        assert!(err.to_string().contains("not fixed"), "{err}");
    }

    #[test]
    fn unbound_register_is_an_error() {
        let mut ctx = run_through(1);
        ctx.candidates[0].binding.clear();
        let err = Concretize.run(&mut ctx).unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
    }
}
