//! Pass 18: program-count limiting (gated: runs only when configured).
//!
//! §3.2: "The user can limit the number of benchmark programs if it is
//! superfluous." The first `limit` candidates (in generation order, which
//! is deterministic) are kept.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;

/// Truncates the candidate set to the configured cap.
pub struct Limit;

impl Pass for Limit {
    fn name(&self) -> &str {
        "limit"
    }

    fn gate(&self, ctx: &GenContext) -> bool {
        ctx.config.limit.is_some()
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        if let Some(cap) = ctx.config.limit {
            ctx.candidates.truncate(cap);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_kernel::builder::figure6;

    #[test]
    fn gated_off_without_limit() {
        let ctx = GenContext::new(figure6(), CreatorConfig::default());
        assert!(!Limit.gate(&ctx));
    }

    #[test]
    fn truncates_to_cap() {
        let cfg = CreatorConfig::default().with_limit(2);
        let mut ctx = GenContext::new(figure6(), cfg);
        let c = ctx.candidates[0].clone();
        ctx.candidates = vec![c.clone(), c.clone(), c.clone(), c];
        assert!(Limit.gate(&ctx));
        Limit.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 2);
    }

    #[test]
    fn cap_larger_than_set_is_noop() {
        let cfg = CreatorConfig::default().with_limit(100);
        let mut ctx = GenContext::new(figure6(), cfg);
        Limit.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
    }
}
