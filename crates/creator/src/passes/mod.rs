//! The nineteen standard MicroCreator passes (§3.2, Figure 7).
//!
//! Each pass lives in its own module; [`standard_passes`] assembles them in
//! pipeline order. Plugins manipulate the list through
//! [`crate::PassManager`].

pub mod branch_insert;
pub mod codegen;
pub mod concretize;
pub mod dedup;
pub mod immediate;
pub mod induction_insert;
pub mod limit;
pub mod peephole;
pub mod random;
pub mod regalloc;
pub mod repetition;
pub mod selection;
pub mod stride;
pub mod swap_after;
pub mod swap_before;
pub mod unroll_select;
pub mod unrolling;
pub mod validate;
pub mod xmm_rotation;

use crate::pass::Pass;

/// The standard pipeline, in execution order. Exactly nineteen passes, per
/// the paper: "The MicroCreator compiler currently contains nineteen
/// passes."
pub fn standard_passes() -> Vec<Box<dyn Pass + Send + Sync>> {
    vec![
        Box::new(validate::ValidateInput),
        Box::new(repetition::InstructionRepetition),
        Box::new(selection::InstructionSelection),
        Box::new(random::RandomInstructionSelection),
        Box::new(stride::StrideSelection),
        Box::new(immediate::ImmediateSelection),
        Box::new(swap_before::OperandSwapBefore),
        Box::new(unroll_select::UnrollSelection),
        Box::new(unrolling::Unrolling),
        Box::new(swap_after::OperandSwapAfter),
        Box::new(regalloc::RegisterAllocation),
        Box::new(xmm_rotation::XmmRotation),
        Box::new(concretize::Concretize),
        Box::new(induction_insert::InductionInsertion),
        Box::new(branch_insert::BranchInsertion),
        Box::new(peephole::Peephole),
        Box::new(dedup::Dedup),
        Box::new(limit::Limit),
        Box::new(codegen::Codegen),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn nineteen_passes_with_unique_names() {
        let passes = super::standard_passes();
        assert_eq!(passes.len(), 19);
        let mut names: Vec<&str> = passes.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "pass names must be unique");
    }
}
