//! Pass 2: instruction repetition — expand `<repeat>` ranges.
//!
//! §3.2: "The first instruction selection pass handles instruction
//! repetition and random instruction selection." An instruction carrying
//! `repeat = (min, max)` is replicated `k` times for every `k` in the
//! range, each count yielding a separate kernel version.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_kernel::InstructionDesc;

/// Expands repetition ranges into concrete instruction counts.
pub struct InstructionRepetition;

impl Pass for InstructionRepetition {
    fn name(&self) -> &str {
        "instruction-repetition"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.expand(self.name(), |cand| {
            // Per-instruction count choices: [1] for plain instructions,
            // min..=max for repeated ones.
            let choices: Vec<Vec<u32>> = cand
                .desc
                .instructions
                .iter()
                .map(|inst| match inst.repeat {
                    Some((min, max)) if min <= max => (min.max(1)..=max.max(1)).collect(),
                    Some(_) => vec![1],
                    None => vec![1],
                })
                .collect();
            let mut out = Vec::new();
            for combo in cartesian(&choices) {
                let mut next = cand.clone();
                next.desc.instructions = rebuild(&cand.desc.instructions, &combo);
                if let Some(&count) = combo
                    .iter()
                    .zip(&cand.desc.instructions)
                    .find_map(|(c, inst)| inst.repeat.is_some().then_some(c))
                {
                    next.meta.repeat = Some(count);
                }
                out.push(next);
            }
            Ok(out)
        })
    }
}

fn rebuild(instructions: &[InstructionDesc], counts: &[u32]) -> Vec<InstructionDesc> {
    let mut out = Vec::new();
    for (inst, &count) in instructions.iter().zip(counts) {
        for _ in 0..count {
            let mut copy = inst.clone();
            copy.repeat = None;
            out.push(copy);
        }
    }
    out
}

/// Cartesian product of choice lists (each inner list non-empty).
pub(crate) fn cartesian(choices: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut combos: Vec<Vec<u32>> = vec![Vec::new()];
    for axis in choices {
        let mut next = Vec::with_capacity(combos.len() * axis.len());
        for combo in &combos {
            for &v in axis {
                let mut c = combo.clone();
                c.push(v);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::{figure6, KernelBuilder};

    #[test]
    fn no_repeat_is_identity() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        InstructionRepetition.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
        assert_eq!(ctx.candidates[0].desc.instructions.len(), 1);
        assert_eq!(ctx.candidates[0].meta.repeat, None);
    }

    #[test]
    fn repeat_range_expands_counts() {
        let mut desc = KernelBuilder::new("rep")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .build()
            .unwrap();
        desc.instructions[0].repeat = Some((1, 4));
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        InstructionRepetition.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 4);
        let lens: Vec<usize> = ctx.candidates.iter().map(|c| c.desc.instructions.len()).collect();
        assert_eq!(lens, vec![1, 2, 3, 4]);
        assert_eq!(ctx.candidates[3].meta.repeat, Some(4));
        // The repeat marker is consumed.
        assert!(ctx.candidates.iter().all(|c| c
            .desc
            .instructions
            .iter()
            .all(|i| i.repeat.is_none())));
    }

    #[test]
    fn two_repeat_ranges_multiply() {
        let mut desc = KernelBuilder::new("rep2")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .stream_instruction(Mnemonic::Movsd, "r2", false)
            .build()
            .unwrap();
        desc.instructions[0].repeat = Some((1, 2));
        desc.instructions[1].repeat = Some((1, 3));
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        InstructionRepetition.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 6);
    }

    #[test]
    fn cartesian_shapes() {
        assert_eq!(cartesian(&[]).len(), 1);
        assert_eq!(cartesian(&[vec![1, 2], vec![3]]), vec![vec![1, 3], vec![2, 3]]);
        assert_eq!(cartesian(&[vec![1], vec![2], vec![3]]).len(), 1);
    }
}
