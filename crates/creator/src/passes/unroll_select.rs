//! Pass 8: unroll-factor selection — one candidate per factor in the
//! description's `<unrolling>` range.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_kernel::UnrollRange;

/// Fixes the unroll factor, one candidate per factor.
pub struct UnrollSelection;

impl Pass for UnrollSelection {
    fn name(&self) -> &str {
        "unroll-selection"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.expand(self.name(), |cand| {
            let mut out = Vec::with_capacity(cand.desc.unrolling.len());
            for factor in cand.desc.unrolling.factors() {
                let mut next = cand.clone();
                next.unroll = factor;
                next.meta.unroll = factor;
                next.desc.unrolling = UnrollRange::fixed(factor);
                out.push(next);
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_kernel::builder::figure6;

    #[test]
    fn expands_one_per_factor() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 8);
        let factors: Vec<u32> = ctx.candidates.iter().map(|c| c.unroll).collect();
        assert_eq!(factors, (1..=8).collect::<Vec<_>>());
        assert!(ctx.candidates.iter().all(|c| c.meta.unroll == c.unroll));
        assert!(ctx.candidates.iter().all(|c| c.desc.unrolling.len() == 1));
    }

    #[test]
    fn fixed_range_is_identity() {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(4);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
        assert_eq!(ctx.candidates[0].unroll, 4);
    }
}
