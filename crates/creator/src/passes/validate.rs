//! Pass 1: structural validation of the input description.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;

/// Rejects descriptions that violate the invariants the later passes rely
/// on (no instructions, zero unroll, missing/duplicate `last_induction`,
/// dangling links, memory bases without inductions).
pub struct ValidateInput;

impl Pass for ValidateInput {
    fn name(&self) -> &str {
        "validate-input"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        for cand in &ctx.candidates {
            cand.desc.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_kernel::builder::figure6;

    #[test]
    fn accepts_valid_description() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        ValidateInput.run(&mut ctx).unwrap();
    }

    #[test]
    fn rejects_invalid_description() {
        let mut desc = figure6();
        desc.instructions.clear();
        // Bypass the builder's validation by constructing the context raw.
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        ctx.candidates[0].desc = desc;
        assert!(ValidateInput.run(&mut ctx).is_err());
    }

    #[test]
    fn gate_defaults_to_true() {
        let ctx = GenContext::new(figure6(), CreatorConfig::default());
        assert!(ValidateInput.gate(&ctx));
    }
}
