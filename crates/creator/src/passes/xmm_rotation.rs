//! Pass 12: XMM rotation.
//!
//! §3.1: "When using XMM registers, provide their name with a minimum and
//! maximum field so as to generate a different XMM register per unrolling
//! iteration. Doing so reduces register dependency." Every
//! [`mc_kernel::RegisterRef::XmmRange`] in copy `i` resolves to
//! `%xmm(min + i mod (max−min))`; all ranges within one copy share the
//! register, so load → multiply → accumulate chains stay coherent.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_kernel::{OperandDesc, RegisterRef};

/// Resolves rotating XMM register ranges to physical registers.
pub struct XmmRotation;

impl Pass for XmmRotation {
    fn name(&self) -> &str {
        "xmm-rotation"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.for_each(self.name(), |cand| {
            for (inst, copy) in &mut cand.copies {
                for op in &mut inst.operands {
                    if let OperandDesc::Register(r @ RegisterRef::XmmRange { .. }) = op {
                        let resolved = r
                            .resolve(*copy, &|_| None)
                            .ok_or_else(|| format!("empty XMM range {r}"))?;
                        *r = RegisterRef::Physical(resolved);
                    }
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::passes::{unroll_select::UnrollSelection, unrolling::Unrolling};
    use mc_asm::reg::Reg;
    use mc_kernel::builder::figure6;
    use mc_kernel::UnrollRange;

    fn rotated_ctx(unroll: u32) -> GenContext {
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(unroll);
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        Unrolling.run(&mut ctx).unwrap();
        XmmRotation.run(&mut ctx).unwrap();
        ctx
    }

    fn xmm_of(inst: &mc_kernel::InstructionDesc) -> Reg {
        inst.operands
            .iter()
            .find_map(|op| match op {
                OperandDesc::Register(RegisterRef::Physical(r)) if r.is_xmm() => Some(*r),
                _ => None,
            })
            .expect("instruction has a resolved XMM operand")
    }

    #[test]
    fn figure8_rotation_xmm0_1_2() {
        let ctx = rotated_ctx(3);
        let regs: Vec<Reg> =
            ctx.candidates[0].copies.iter().map(|(inst, _)| xmm_of(inst)).collect();
        assert_eq!(regs, vec![Reg::xmm(0), Reg::xmm(1), Reg::xmm(2)]);
    }

    #[test]
    fn rotation_wraps_past_range() {
        // Unroll 8 with range [0,8): last copy gets %xmm7 (no wrap yet)…
        let ctx = rotated_ctx(8);
        let regs: Vec<Reg> =
            ctx.candidates[0].copies.iter().map(|(inst, _)| xmm_of(inst)).collect();
        assert_eq!(regs.last(), Some(&Reg::xmm(7)));
        // …and a narrower range wraps.
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(4);
        if let OperandDesc::Register(RegisterRef::XmmRange { max, .. }) =
            &mut desc.instructions[0].operands[1]
        {
            *max = 2;
        }
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        UnrollSelection.run(&mut ctx).unwrap();
        Unrolling.run(&mut ctx).unwrap();
        XmmRotation.run(&mut ctx).unwrap();
        let regs: Vec<Reg> =
            ctx.candidates[0].copies.iter().map(|(inst, _)| xmm_of(inst)).collect();
        assert_eq!(regs, vec![Reg::xmm(0), Reg::xmm(1), Reg::xmm(0), Reg::xmm(1)]);
    }

    #[test]
    fn logical_registers_untouched() {
        let ctx = rotated_ctx(2);
        for (inst, _) in &ctx.candidates[0].copies {
            let mem = inst.operands.iter().find_map(|o| o.as_memory()).unwrap();
            assert_eq!(mem.base.logical_name(), Some("r1"), "memory base still logical");
        }
    }
}
