//! Pass 9: unrolling — materialize the unrolled copy list.
//!
//! Copy `i` of the body (0-based) is tagged with its copy index; later
//! passes use the index for XMM rotation and displacement assignment.

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;

/// Replicates the body `unroll` times into `(instruction, copy_index)`
/// pairs.
pub struct Unrolling;

impl Pass for Unrolling {
    fn name(&self) -> &str {
        "unrolling"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.for_each(self.name(), |cand| {
            if cand.unroll == 0 {
                // A plugin removed unroll-selection: fall back to the
                // range's minimum so the pipeline still completes.
                cand.unroll = cand.desc.unrolling.min.max(1);
                cand.meta.unroll = cand.unroll;
            }
            cand.copies = (0..cand.unroll)
                .flat_map(|i| cand.desc.instructions.iter().map(move |inst| (inst.clone(), i)))
                .collect();
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::{figure6, KernelBuilder};

    #[test]
    fn copies_are_body_times_unroll() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        ctx.candidates[0].unroll = 3;
        Unrolling.run(&mut ctx).unwrap();
        let copies = &ctx.candidates[0].copies;
        assert_eq!(copies.len(), 3);
        assert_eq!(copies.iter().map(|(_, i)| *i).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn multi_instruction_body_interleaves_by_copy() {
        let desc = KernelBuilder::new("multi")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .stream_instruction(Mnemonic::Movsd, "r2", false)
            .build()
            .unwrap();
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        ctx.candidates[0].unroll = 2;
        Unrolling.run(&mut ctx).unwrap();
        let copies = &ctx.candidates[0].copies;
        assert_eq!(copies.len(), 4);
        // copy 0 of both instructions, then copy 1 of both.
        assert_eq!(copies.iter().map(|(_, i)| *i).collect::<Vec<_>>(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn missing_unroll_selection_falls_back_to_min() {
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        assert_eq!(ctx.candidates[0].unroll, 0);
        Unrolling.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates[0].unroll, 1);
        assert_eq!(ctx.candidates[0].copies.len(), 1);
    }
}
