//! Pass 6: immediate selection.
//!
//! §3.2: the creator selects "the values of the immediate variables. For
//! each element, if there are multiple choices, a separate version of the
//! kernel is created."

use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::pass::Pass;
use mc_kernel::{ImmediateDesc, OperandDesc};

/// Fixes every immediate operand's value, one candidate per combination.
pub struct ImmediateSelection;

impl Pass for ImmediateSelection {
    fn name(&self) -> &str {
        "immediate-selection"
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        ctx.expand(self.name(), |cand| {
            // Locate every immediate operand: (instruction, operand) paths.
            let mut paths = Vec::new();
            let mut axes: Vec<Vec<i64>> = Vec::new();
            for (ii, inst) in cand.desc.instructions.iter().enumerate() {
                for (oi, op) in inst.operands.iter().enumerate() {
                    if let OperandDesc::Immediate(imm) = op {
                        paths.push((ii, oi));
                        axes.push(imm.choices.clone());
                    }
                }
            }
            if axes.is_empty() {
                return Ok(vec![cand.clone()]);
            }
            let had_choice = axes.iter().any(|a| a.len() > 1);
            let mut out = Vec::new();
            let mut idx = vec![0usize; axes.len()];
            loop {
                let mut next = cand.clone();
                let chosen: Vec<i64> = idx.iter().zip(&axes).map(|(&i, a)| a[i]).collect();
                for (&(ii, oi), &v) in paths.iter().zip(&chosen) {
                    next.desc.instructions[ii].operands[oi] =
                        OperandDesc::Immediate(ImmediateDesc::fixed(v));
                }
                if had_choice {
                    next.meta.immediates = chosen;
                }
                out.push(next);
                let mut i = axes.len();
                loop {
                    if i == 0 {
                        return Ok(out);
                    }
                    i -= 1;
                    idx[i] += 1;
                    if idx[i] < axes[i].len() {
                        break;
                    }
                    idx[i] = 0;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_asm::inst::{Mnemonic, Width};
    use mc_kernel::builder::KernelBuilder;
    use mc_kernel::{InstructionDesc, OperationDesc, RegisterRef};

    fn desc_with_immediates(choices: Vec<i64>) -> mc_kernel::KernelDesc {
        KernelBuilder::new("imm")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .instruction(InstructionDesc::new(
                OperationDesc::Fixed(Mnemonic::Add(Width::Q)),
                vec![
                    OperandDesc::Immediate(ImmediateDesc { choices }),
                    OperandDesc::Register(RegisterRef::Physical(mc_asm::Reg::gpr(
                        mc_asm::reg::GprName::Rcx,
                    ))),
                ],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn no_immediates_is_identity() {
        let desc = KernelBuilder::new("plain")
            .stream_instruction(Mnemonic::Movss, "r1", false)
            .build()
            .unwrap();
        let mut ctx = GenContext::new(desc, CreatorConfig::default());
        ImmediateSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
    }

    #[test]
    fn single_value_identity_without_meta() {
        let mut ctx = GenContext::new(desc_with_immediates(vec![8]), CreatorConfig::default());
        ImmediateSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 1);
        assert!(ctx.candidates[0].meta.immediates.is_empty());
    }

    #[test]
    fn choices_expand() {
        let mut ctx =
            GenContext::new(desc_with_immediates(vec![1, 2, 4]), CreatorConfig::default());
        ImmediateSelection.run(&mut ctx).unwrap();
        assert_eq!(ctx.candidates.len(), 3);
        let values: Vec<i64> = ctx.candidates.iter().map(|c| c.meta.immediates[0]).collect();
        assert_eq!(values, vec![1, 2, 4]);
        // All immediates are singletons afterwards.
        for c in &ctx.candidates {
            for inst in &c.desc.instructions {
                for op in &inst.operands {
                    if let OperandDesc::Immediate(imm) = op {
                        assert_eq!(imm.choices.len(), 1);
                    }
                }
            }
        }
    }
}
