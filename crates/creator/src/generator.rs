//! The MicroCreator facade.

use crate::config::CreatorConfig;
use crate::context::GenContext;
use crate::error::CreatorResult;
use crate::manager::PassManager;
use crate::plugin::Plugin;
use mc_kernel::{KernelDesc, Program};

/// Per-pass statistics from one generation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name.
    pub pass: String,
    /// Whether the gate allowed the pass to run.
    pub ran: bool,
    /// Candidates alive after the pass.
    pub candidates: usize,
    /// Programs finished after the pass.
    pub programs: usize,
}

/// Result of one generation run.
#[derive(Debug, Clone)]
pub struct GenerationResult {
    /// The generated benchmark programs.
    pub programs: Vec<Program>,
    /// Per-pass statistics in pipeline order.
    pub stats: Vec<PassStat>,
}

/// MicroCreator: expands a kernel description into its benchmark programs.
pub struct MicroCreator {
    pm: PassManager,
    config: CreatorConfig,
}

impl Default for MicroCreator {
    fn default() -> Self {
        Self::new()
    }
}

impl MicroCreator {
    /// A creator with the standard 19-pass pipeline and default config.
    pub fn new() -> Self {
        MicroCreator { pm: PassManager::standard(), config: CreatorConfig::default() }
    }

    /// A creator with a custom configuration.
    pub fn with_config(config: CreatorConfig) -> Self {
        MicroCreator { pm: PassManager::standard(), config }
    }

    /// Mutable access to the pipeline (for direct pass surgery).
    pub fn pass_manager(&mut self) -> &mut PassManager {
        &mut self.pm
    }

    /// The active configuration.
    pub fn config(&self) -> &CreatorConfig {
        &self.config
    }

    /// Runs a plugin's `pluginInit` against this creator's pipeline.
    pub fn register_plugin(&mut self, plugin: &dyn Plugin) -> CreatorResult<()> {
        plugin.init(&mut self.pm)
    }

    /// Generates every program variant for a description.
    pub fn generate(&self, desc: &KernelDesc) -> CreatorResult<GenerationResult> {
        let mut ctx = GenContext::new(desc.clone(), self.config.clone());
        let raw_stats = self.pm.run(&mut ctx)?;
        let stats = raw_stats
            .into_iter()
            .map(|(pass, ran, candidates, programs)| PassStat { pass, ran, candidates, programs })
            .collect();
        Ok(GenerationResult { programs: ctx.programs, stats })
    }

    /// Parses a kernel description XML document and generates its programs.
    pub fn generate_from_xml(&self, xml: &str) -> CreatorResult<GenerationResult> {
        let desc = mc_kernel::xml::parse_kernel(xml)?;
        self.generate(&desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_asm::inst::Mnemonic;
    use mc_kernel::builder::figure6;
    use mc_kernel::{OperationDesc, UnrollRange};

    #[test]
    fn figure6_generates_510_programs() {
        // §3: "MicroCreator generated 510 benchmark program variations"
        // from the (Load|Store)+ file: Σ_{u=1..8} 2^u = 510.
        let result = MicroCreator::new().generate(&figure6()).unwrap();
        assert_eq!(result.programs.len(), 510);
    }

    #[test]
    fn four_instruction_study_exceeds_two_thousand() {
        // §3: "MicroCreator automatically generates more than two thousand
        // benchmark programs from a single input file" — the four-mnemonic
        // variant of Figure 6: 4 × 510 = 2040.
        let mut desc = figure6();
        desc.instructions[0].operation = OperationDesc::Choice(vec![
            Mnemonic::Movss,
            Mnemonic::Movsd,
            Mnemonic::Movaps,
            Mnemonic::Movapd,
        ]);
        let result = MicroCreator::new().generate(&desc).unwrap();
        assert_eq!(result.programs.len(), 2040);
        assert!(result.programs.len() > 2000);
    }

    #[test]
    fn stats_cover_all_nineteen_passes() {
        let result = MicroCreator::new().generate(&figure6()).unwrap();
        assert_eq!(result.stats.len(), 19);
        assert_eq!(result.stats[0].pass, "validate-input");
        assert_eq!(result.stats[18].pass, "codegen");
        // Gated-off passes are recorded as not-run.
        let random = result.stats.iter().find(|s| s.pass == "random-selection").unwrap();
        assert!(!random.ran);
        let limit = result.stats.iter().find(|s| s.pass == "limit").unwrap();
        assert!(!limit.ran);
    }

    #[test]
    fn limit_config_caps_output() {
        let creator = MicroCreator::with_config(CreatorConfig::default().with_limit(25));
        let result = creator.generate(&figure6()).unwrap();
        assert_eq!(result.programs.len(), 25);
    }

    #[test]
    fn generate_from_xml_matches_builder() {
        let xml = mc_kernel::xml::kernel_to_xml(&figure6());
        let from_xml = MicroCreator::new().generate_from_xml(&xml).unwrap();
        let from_builder = MicroCreator::new().generate(&figure6()).unwrap();
        assert_eq!(from_xml.programs.len(), from_builder.programs.len());
        for (a, b) in from_xml.programs.iter().zip(&from_builder.programs) {
            assert_eq!(a.to_asm_string(), b.to_asm_string());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MicroCreator::new().generate(&figure6()).unwrap();
        let b = MicroCreator::new().generate(&figure6()).unwrap();
        let texts = |r: &GenerationResult| -> Vec<String> {
            r.programs.iter().map(|p| p.to_asm_string()).collect()
        };
        assert_eq!(texts(&a), texts(&b));
    }

    #[test]
    fn figure8_text_is_among_the_generated_programs() {
        // The exact Figure 8 output (modulo the explicit `0(%rsi)` spelling)
        // must be one of the 510.
        let result = MicroCreator::new().generate(&figure6()).unwrap();
        let expected = "\
.L6:
\t#Unrolling iterations
\tmovaps %xmm0, (%rsi)
\tmovaps 16(%rsi), %xmm1
\tmovaps %xmm2, 32(%rsi)
\t#Induction variables
\taddq $48, %rsi
\tsubq $12, %rdi
\tjge .L6
";
        assert!(
            result.programs.iter().any(|p| p.to_asm_string() == expected),
            "Figure 8 kernel not found among generated programs"
        );
    }

    #[test]
    fn invalid_description_fails_at_validate() {
        let mut desc = figure6();
        desc.unrolling = UnrollRange { min: 3, max: 1 };
        let err = MicroCreator::new().generate(&desc).unwrap_err();
        assert!(err.to_string().contains("unroll"), "{err}");
    }
}
