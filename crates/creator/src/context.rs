//! Shared mutable state threaded through the passes.

use crate::candidate::Candidate;
use crate::config::CreatorConfig;
use crate::error::{CreatorError, CreatorResult};
use mc_kernel::Program;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generation context: configuration, the in-flight candidate set, the
/// finished programs, and the seeded RNG every stochastic pass must use.
pub struct GenContext {
    /// Run configuration.
    pub config: CreatorConfig,
    /// In-flight candidates; expansion passes grow this set.
    pub candidates: Vec<Candidate>,
    /// Finished programs (filled by the `codegen` pass).
    pub programs: Vec<Program>,
    /// The seeded RNG (determinism contract: passes draw only from here).
    pub rng: StdRng,
}

impl GenContext {
    /// Creates a context holding the seed candidate for one description.
    pub fn new(desc: mc_kernel::KernelDesc, config: CreatorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        GenContext { config, candidates: vec![Candidate::seed(desc)], programs: Vec::new(), rng }
    }

    /// Replaces every candidate with the expansion `f` produces for it,
    /// enforcing the candidate-explosion cap. `pass` names the caller for
    /// error reporting.
    pub fn expand<F>(&mut self, pass: &str, mut f: F) -> CreatorResult<()>
    where
        F: FnMut(&Candidate) -> CreatorResult<Vec<Candidate>>,
    {
        let mut next = Vec::with_capacity(self.candidates.len());
        for cand in &self.candidates {
            let produced = f(cand)?;
            next.extend(produced);
            if next.len() > self.config.max_candidates {
                return Err(CreatorError::TooManyCandidates {
                    cap: self.config.max_candidates,
                    pass: pass.to_owned(),
                });
            }
        }
        self.candidates = next;
        Ok(())
    }

    /// Applies an in-place transformation to every candidate.
    pub fn for_each<F>(&mut self, pass: &str, mut f: F) -> CreatorResult<()>
    where
        F: FnMut(&mut Candidate) -> Result<(), String>,
    {
        for cand in &mut self.candidates {
            f(cand).map_err(|message| CreatorError::Pass { pass: pass.into(), message })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_kernel::builder::figure6;

    fn ctx() -> GenContext {
        GenContext::new(figure6(), CreatorConfig::default())
    }

    #[test]
    fn starts_with_one_seed() {
        let c = ctx();
        assert_eq!(c.candidates.len(), 1);
        assert!(c.programs.is_empty());
    }

    #[test]
    fn expand_replaces_candidates() {
        let mut c = ctx();
        c.expand("test", |cand| Ok(vec![cand.clone(), cand.clone(), cand.clone()])).unwrap();
        assert_eq!(c.candidates.len(), 3);
        c.expand("test", |_| Ok(vec![])).unwrap();
        assert!(c.candidates.is_empty());
    }

    #[test]
    fn expand_enforces_cap() {
        let mut c = ctx();
        c.config.max_candidates = 5;
        let err = c.expand("exploder", |cand| Ok(vec![cand.clone(); 10])).unwrap_err();
        assert!(matches!(err, CreatorError::TooManyCandidates { cap: 5, .. }));
    }

    #[test]
    fn for_each_reports_pass_name() {
        let mut c = ctx();
        let err = c.for_each("failing-pass", |_| Err("broke".into())).unwrap_err();
        assert_eq!(err.to_string(), "pass `failing-pass` failed: broke");
    }

    #[test]
    fn rng_is_seed_deterministic() {
        use rand::Rng;
        let mut a = GenContext::new(figure6(), CreatorConfig::default().with_seed(9));
        let mut b = GenContext::new(figure6(), CreatorConfig::default().with_seed(9));
        let va: u64 = a.rng.gen();
        let vb: u64 = b.rng.gen();
        assert_eq!(va, vb);
    }
}
