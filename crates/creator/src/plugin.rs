//! The plugin system (§3.3).
//!
//! "To further augment the possibilities for various users, MicroCreator
//! provides a plugin system resembling the GCC technique. … The user must
//! provide an initialization function named `pluginInit` … The user can
//! easily add, remove, or modify a pass without recompiling the system."
//!
//! The original tool loads plugins from dynamic libraries; this
//! reproduction keeps the same surface as a trait: [`Plugin::init`] is the
//! `pluginInit` entry point, handed the [`PassManager`] so the plugin can
//! add, remove, replace or re-gate passes (the "fully exposed API").

use crate::error::CreatorResult;
use crate::manager::PassManager;

/// A MicroCreator plugin.
pub trait Plugin {
    /// Plugin name (for diagnostics).
    fn name(&self) -> &str;

    /// The `pluginInit` entry point: mutate the pass pipeline.
    fn init(&self, pm: &mut PassManager) -> CreatorResult<()>;
}

/// A plugin built from a closure.
pub struct FnPlugin<F>
where
    F: Fn(&mut PassManager) -> CreatorResult<()>,
{
    name: String,
    init: F,
}

impl<F> FnPlugin<F>
where
    F: Fn(&mut PassManager) -> CreatorResult<()>,
{
    /// Wraps a closure as a plugin.
    pub fn new(name: impl Into<String>, init: F) -> Self {
        FnPlugin { name: name.into(), init }
    }
}

impl<F> Plugin for FnPlugin<F>
where
    F: Fn(&mut PassManager) -> CreatorResult<()>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self, pm: &mut PassManager) -> CreatorResult<()> {
        (self.init)(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use crate::context::GenContext;
    use crate::generator::MicroCreator;
    use crate::pass::FnPass;
    use mc_kernel::builder::figure6;
    use mc_kernel::UnrollRange;

    #[test]
    fn plugin_can_regate_a_pass() {
        // Disable the operand-swap-after pass: figure6 then generates one
        // program per unroll factor instead of 2^u.
        let plugin = FnPlugin::new("no-swaps", |pm: &mut PassManager| {
            pm.set_gate("operand-swap-after", |_| false)
        });
        let mut creator = MicroCreator::new();
        creator.register_plugin(&plugin).unwrap();
        let result = creator.generate(&figure6()).unwrap();
        assert_eq!(result.programs.len(), 8, "8 unroll factors, swaps disabled");
    }

    #[test]
    fn plugin_can_replace_a_pass() {
        // Replace unroll-selection with a fixed-factor version.
        let plugin = FnPlugin::new("fixed-unroll", |pm: &mut PassManager| {
            pm.replace_pass(
                "unroll-selection",
                Box::new(FnPass::new("unroll-selection", |ctx: &mut GenContext| {
                    for c in &mut ctx.candidates {
                        c.unroll = 4;
                        c.meta.unroll = 4;
                        c.desc.unrolling = UnrollRange::fixed(4);
                    }
                    Ok(())
                })),
            )
        });
        let mut creator = MicroCreator::new();
        creator.register_plugin(&plugin).unwrap();
        let result = creator.generate(&figure6()).unwrap();
        assert_eq!(result.programs.len(), 16, "2^4 swap patterns at unroll 4");
        assert!(result.programs.iter().all(|p| p.meta.unroll == 4));
    }

    #[test]
    fn plugin_can_add_a_pass() {
        let plugin = FnPlugin::new("tagger", |pm: &mut PassManager| {
            pm.insert_after(
                "codegen",
                Box::new(FnPass::new("tag-programs", |ctx: &mut GenContext| {
                    for p in &mut ctx.programs {
                        p.meta.extra.push(("tagged".into(), "yes".into()));
                    }
                    Ok(())
                })),
            )
        });
        let mut creator = MicroCreator::new();
        creator.register_plugin(&plugin).unwrap();
        let mut desc = figure6();
        desc.unrolling = UnrollRange::fixed(1);
        let result = creator.generate(&desc).unwrap();
        assert!(result
            .programs
            .iter()
            .all(|p| p.meta.extra.contains(&("tagged".into(), "yes".into()))));
    }

    #[test]
    fn plugin_errors_propagate() {
        let plugin = FnPlugin::new("broken", |pm: &mut PassManager| pm.remove_pass("no-such-pass"));
        let mut creator = MicroCreator::new();
        let err = creator.register_plugin(&plugin).unwrap_err();
        assert!(err.to_string().contains("no-such-pass"), "{err}");
    }

    #[test]
    fn plugin_can_remove_a_pass() {
        let plugin =
            FnPlugin::new("no-peephole", |pm: &mut PassManager| pm.remove_pass("peephole"));
        let mut creator = MicroCreator::new();
        creator.register_plugin(&plugin).unwrap();
        assert_eq!(creator.pass_manager().len(), 18);
        let ctx = GenContext::new(figure6(), CreatorConfig::default());
        drop(ctx);
    }
}
