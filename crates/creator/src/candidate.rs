//! The unit of work flowing through the pass pipeline.

use mc_asm::format::AsmLine;
use mc_asm::inst::Inst;
use mc_asm::reg::Reg;
use mc_kernel::{InstructionDesc, KernelDesc, VariantMeta};
use std::collections::BTreeMap;

/// One in-flight program variant. Passes progressively concretize it:
/// description-level fields first, then the unrolled copy list, then bound
/// registers and concrete instructions, and finally the rendered lines.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The (progressively specialized) kernel description.
    pub desc: KernelDesc,
    /// Choices made so far.
    pub meta: VariantMeta,
    /// Chosen unroll factor; 0 until `unroll-selection` runs.
    pub unroll: u32,
    /// Chosen increment per induction (aligned with `desc.inductions`);
    /// empty until `stride-selection` runs.
    pub chosen_increments: Vec<i64>,
    /// Unrolled copies as `(instruction, copy_index)`; empty until
    /// `unrolling` runs.
    pub copies: Vec<(InstructionDesc, u32)>,
    /// Logical-register binding; empty until `register-allocation` runs.
    pub binding: BTreeMap<String, Reg>,
    /// Concrete loop body; empty until `concretize` runs.
    pub body: Vec<Inst>,
    /// Induction updates (and any other loop tail); empty until
    /// `induction-insertion` runs.
    pub tail: Vec<Inst>,
    /// Final rendered lines; empty until `branch-insertion` runs.
    pub lines: Vec<AsmLine>,
    /// Data elements the loop consumes per iteration (the trip counter's
    /// per-loop decrement); set by `induction-insertion`.
    pub elements_per_iter: u64,
}

impl Candidate {
    /// Wraps a fresh description as the single seed candidate.
    pub fn seed(desc: KernelDesc) -> Self {
        let meta = VariantMeta { kernel: desc.name.clone(), ..VariantMeta::default() };
        Candidate {
            desc,
            meta,
            unroll: 0,
            chosen_increments: Vec::new(),
            copies: Vec::new(),
            binding: BTreeMap::new(),
            body: Vec::new(),
            tail: Vec::new(),
            lines: Vec::new(),
            elements_per_iter: 1,
        }
    }

    /// The chosen increment for induction `i`, falling back to the
    /// description's primary choice before stride selection has run.
    pub fn increment_for(&self, i: usize) -> i64 {
        self.chosen_increments
            .get(i)
            .copied()
            .unwrap_or_else(|| self.desc.inductions[i].primary_increment())
    }

    /// Elements each unrolled copy consumes on the stream of induction `i`
    /// (offset step in bytes ÷ element size), minimum 1.
    pub fn elements_per_copy(&self, i: usize) -> i64 {
        let step = self.desc.inductions[i].offset_step.abs();
        (step / i64::from(self.desc.element_bytes)).max(1)
    }

    /// Resolves a register reference for a given copy index using this
    /// candidate's binding.
    pub fn resolve_reg(&self, r: &mc_kernel::RegisterRef, copy: u32) -> Option<Reg> {
        r.resolve(copy, &|name| self.binding.get(name).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_kernel::builder::figure6;

    #[test]
    fn seed_starts_unspecialized() {
        let c = Candidate::seed(figure6());
        assert_eq!(c.unroll, 0);
        assert!(c.copies.is_empty());
        assert!(c.body.is_empty());
        assert_eq!(c.meta.kernel, "loadstore");
    }

    #[test]
    fn increment_falls_back_to_primary() {
        let c = Candidate::seed(figure6());
        assert_eq!(c.increment_for(0), 16);
        assert_eq!(c.increment_for(1), -1);
        let mut c2 = c;
        c2.chosen_increments = vec![32, -1];
        assert_eq!(c2.increment_for(0), 32);
    }

    #[test]
    fn elements_per_copy_for_movaps_floats() {
        let c = Candidate::seed(figure6());
        // 16-byte step, 4-byte elements → 4 elements per copy (Figure 8).
        assert_eq!(c.elements_per_copy(0), 4);
        // The counter itself has offset_step 0 → clamp to 1.
        assert_eq!(c.elements_per_copy(1), 1);
    }
}
