//! The pass abstraction.

use crate::context::GenContext;
use crate::error::CreatorResult;

/// One compiler pass. "As opposed to general compiler passes, the passes in
/// MicroCreator are entirely independent" (§3.3): each consumes and updates
/// the candidate set in [`GenContext`] without ordering side-channels, so
/// plugins may add, remove, replace, or re-gate passes freely.
pub trait Pass {
    /// Unique pass name (used by the plugin API to address passes).
    fn name(&self) -> &str;

    /// The gate: whether the pass should execute for this run. "Most
    /// internal passes are performed because their gates always return
    /// true. A user may modify it so as not to always execute the pass"
    /// (§3.3).
    fn gate(&self, _ctx: &GenContext) -> bool {
        true
    }

    /// Executes the pass.
    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()>;
}

/// A pass built from closures — convenient for plugins and tests.
pub struct FnPass<G, R>
where
    G: Fn(&GenContext) -> bool,
    R: Fn(&mut GenContext) -> CreatorResult<()>,
{
    name: String,
    gate: G,
    run: R,
}

impl<R> FnPass<fn(&GenContext) -> bool, R>
where
    R: Fn(&mut GenContext) -> CreatorResult<()>,
{
    /// A pass with an always-true gate.
    pub fn new(name: impl Into<String>, run: R) -> Self {
        FnPass { name: name.into(), gate: |_| true, run }
    }
}

impl<G, R> FnPass<G, R>
where
    G: Fn(&GenContext) -> bool,
    R: Fn(&mut GenContext) -> CreatorResult<()>,
{
    /// A pass with an explicit gate.
    pub fn gated(name: impl Into<String>, gate: G, run: R) -> Self {
        FnPass { name: name.into(), gate, run }
    }
}

impl<G, R> Pass for FnPass<G, R>
where
    G: Fn(&GenContext) -> bool,
    R: Fn(&mut GenContext) -> CreatorResult<()>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn gate(&self, ctx: &GenContext) -> bool {
        (self.gate)(ctx)
    }

    fn run(&self, ctx: &mut GenContext) -> CreatorResult<()> {
        (self.run)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CreatorConfig;
    use mc_kernel::builder::figure6;

    #[test]
    fn fn_pass_runs() {
        let p = FnPass::new("clear", |ctx: &mut GenContext| {
            ctx.candidates.clear();
            Ok(())
        });
        let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
        assert_eq!(p.name(), "clear");
        assert!(p.gate(&ctx));
        p.run(&mut ctx).unwrap();
        assert!(ctx.candidates.is_empty());
    }

    #[test]
    fn gated_pass_reports_gate() {
        let p = FnPass::gated("never", |_| false, |_| Ok(()));
        let ctx = GenContext::new(figure6(), CreatorConfig::default());
        assert!(!p.gate(&ctx));
    }
}
