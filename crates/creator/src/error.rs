//! Errors produced during generation.

use std::fmt;

/// Result alias for generation operations.
pub type CreatorResult<T> = Result<T, CreatorError>;

/// Errors from MicroCreator's pass pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CreatorError {
    /// The input description was invalid.
    Kernel(mc_kernel::KernelError),
    /// A pass failed.
    Pass {
        /// Name of the failing pass.
        pass: String,
        /// What went wrong.
        message: String,
    },
    /// The candidate set exceeded the configured safety cap — the
    /// description's cartesian expansion is too large.
    TooManyCandidates {
        /// The configured cap.
        cap: usize,
        /// Pass at which the cap was exceeded.
        pass: String,
    },
    /// A plugin failed to initialize or referenced an unknown pass.
    Plugin(String),
    /// Filesystem error while emitting programs.
    Io(String),
}

impl fmt::Display for CreatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CreatorError::Kernel(e) => write!(f, "{e}"),
            CreatorError::Pass { pass, message } => write!(f, "pass `{pass}` failed: {message}"),
            CreatorError::TooManyCandidates { cap, pass } => write!(
                f,
                "candidate explosion: more than {cap} candidates after pass `{pass}` \
                 (raise CreatorConfig::max_candidates or narrow the description)"
            ),
            CreatorError::Plugin(m) => write!(f, "plugin error: {m}"),
            CreatorError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for CreatorError {}

impl From<mc_kernel::KernelError> for CreatorError {
    fn from(e: mc_kernel::KernelError) -> Self {
        CreatorError::Kernel(e)
    }
}

impl From<std::io::Error> for CreatorError {
    fn from(e: std::io::Error) -> Self {
        CreatorError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = CreatorError::Pass { pass: "unrolling".into(), message: "boom".into() };
        assert!(e.to_string().contains("unrolling"));
        let e = CreatorError::TooManyCandidates { cap: 10, pass: "operand-swap-after".into() };
        assert!(e.to_string().contains("10"));
        let e = CreatorError::Plugin("no such pass".into());
        assert!(e.to_string().contains("no such pass"));
    }

    #[test]
    fn conversions() {
        let ke = mc_kernel::KernelError::Invalid("x".into());
        assert!(matches!(CreatorError::from(ke), CreatorError::Kernel(_)));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(CreatorError::from(io), CreatorError::Io(_)));
    }
}
