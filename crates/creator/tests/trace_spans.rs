//! Tracing contract of the pipeline: a full `PassManager::standard()` run
//! over the Figure 6 kernel emits exactly one `creator.pass` span per
//! gated-in pass, one `creator.pass.skipped` event per gated-off pass, and
//! the variants-in/out counts telescope through the pipeline.
//!
//! The tracer is process-global, so everything lives in one `#[test]` —
//! this file is its own test binary and no other test in it touches the
//! global sink.

use mc_creator::{CreatorConfig, GenContext, MicroCreator, PassManager};
use mc_kernel::builder::figure6;
use mc_trace::{EventKind, MemorySink, TraceEvent, Value};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The tracer is process-global and the harness runs tests on threads:
/// every test that generates (and could emit) takes this lock.
fn tracer_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn field_u64(e: &TraceEvent, key: &str) -> u64 {
    e.field(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing {key}: {e:?}"))
}

fn field_str<'a>(e: &'a TraceEvent, key: &str) -> &'a str {
    e.field(key).and_then(Value::as_str).unwrap_or_else(|| panic!("missing {key}: {e:?}"))
}

#[test]
fn standard_run_over_figure6_emits_one_span_per_gated_in_pass() {
    let _guard = tracer_lock();
    let sink = Arc::new(MemorySink::new());
    mc_trace::install(sink.clone());
    let pm = PassManager::standard();
    let mut ctx = GenContext::new(figure6(), CreatorConfig::default());
    let stats = pm.run(&mut ctx).expect("figure6 generates");
    mc_trace::uninstall();
    let events = sink.events();

    // Ground truth from the returned stats.
    let ran: Vec<&str> = stats.iter().filter(|s| s.1).map(|(name, ..)| name.as_str()).collect();
    let skipped: Vec<&str> =
        stats.iter().filter(|s| !s.1).map(|(name, ..)| name.as_str()).collect();
    assert_eq!(ran.len() + skipped.len(), 19, "standard pipeline is 19 passes");
    assert!(!ran.is_empty());

    // Exactly one span per gated-in pass, in pipeline order.
    let spans: Vec<&TraceEvent> = events.iter().filter(|e| e.name == "creator.pass").collect();
    assert!(spans.iter().all(|e| e.kind == EventKind::Span));
    assert_eq!(
        spans.iter().map(|e| field_str(e, "pass")).collect::<Vec<_>>(),
        ran,
        "one span per executed pass"
    );

    // Exactly one skipped event per gated-off pass.
    let skips: Vec<&TraceEvent> =
        events.iter().filter(|e| e.name == "creator.pass.skipped").collect();
    assert!(skips.iter().all(|e| e.kind == EventKind::Event));
    assert_eq!(skips.iter().map(|e| field_str(e, "pass")).collect::<Vec<_>>(), skipped);

    // Variant counts telescope: each recorded event's variants_in equals
    // the previous one's variants_out (skipped passes change nothing).
    let mut expected_in = 1u64; // the pipeline starts from the seeded description
    for event in events.iter().filter(|e| e.name.starts_with("creator.pass")) {
        assert_eq!(
            field_u64(event, "variants_in"),
            expected_in,
            "telescoping broke at {}",
            field_str(event, "pass")
        );
        if event.name == "creator.pass" {
            expected_in = field_u64(event, "variants_out");
        }
    }

    // The spans' final state agrees with the stats rows and the pruned
    // field is consistent.
    for span in &spans {
        let vin = field_u64(span, "variants_in");
        let vout = field_u64(span, "variants_out");
        assert_eq!(field_u64(span, "pruned"), vin.saturating_sub(vout));
        assert!(span.duration_micros.is_some(), "spans carry wall time");
    }
    let last = spans.last().unwrap();
    assert_eq!(field_u64(last, "programs") as usize, ctx.programs.len());

    // Figure 6 pins the corpus: 510 programs (§5, the running example).
    assert_eq!(ctx.programs.len(), 510);
}

#[test]
fn untraced_generation_emits_nothing_and_matches_traced_output() {
    let _guard = tracer_lock();
    // No sink installed: generation still works and produces the same
    // corpus — tracing must be observation, not behavior.
    let result = MicroCreator::new().generate(&figure6()).expect("generates");
    assert_eq!(result.programs.len(), 510);
    assert_eq!(result.stats.len(), 19);
}
