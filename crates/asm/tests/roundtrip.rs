//! Property tests: every formattable instruction parses back to itself.

use mc_asm::inst::{Cond, Inst, MemRef, Mnemonic, Operand, Width};
use mc_asm::parse::parse_instruction;
use mc_asm::reg::{GprName, Reg};
use proptest::prelude::*;

fn width_strategy() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B), Just(Width::W), Just(Width::L), Just(Width::Q)]
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::E),
        Just(Cond::Ne),
        Just(Cond::G),
        Just(Cond::Ge),
        Just(Cond::L),
        Just(Cond::Le),
        Just(Cond::A),
        Just(Cond::Ae),
        Just(Cond::B),
        Just(Cond::Be),
        Just(Cond::S),
        Just(Cond::Ns),
    ]
}

fn gpr_strategy() -> impl Strategy<Value = Reg> {
    (0usize..16, width_strategy())
        .prop_map(|(i, w)| Reg::Gpr(mc_asm::reg::Gpr { name: GprName::ALL[i], width: w }))
}

fn reg_strategy() -> impl Strategy<Value = Reg> {
    prop_oneof![gpr_strategy(), (0u8..16).prop_map(Reg::Xmm)]
}

fn gpr64_strategy() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::gpr(GprName::ALL[i]))
}

fn mem_strategy() -> impl Strategy<Value = MemRef> {
    (
        prop::option::of(gpr64_strategy()),
        prop::option::of((gpr64_strategy(), prop::sample::select(vec![1u8, 2, 4, 8]))),
        -4096i64..4096,
    )
        .prop_filter_map("must reference something", |(base, index, disp)| {
            if base.is_none() && index.is_none() {
                if disp > 0 {
                    Some(MemRef { base, index, disp })
                } else {
                    None
                }
            } else {
                Some(MemRef { base, index, disp })
            }
        })
}

fn two_op_mnemonic() -> impl Strategy<Value = Mnemonic> {
    prop_oneof![
        width_strategy().prop_map(Mnemonic::Add),
        width_strategy().prop_map(Mnemonic::Sub),
        width_strategy().prop_map(Mnemonic::Cmp),
        width_strategy().prop_map(Mnemonic::Mov),
        Just(Mnemonic::Movss),
        Just(Mnemonic::Movsd),
        Just(Mnemonic::Movaps),
        Just(Mnemonic::Movapd),
        Just(Mnemonic::Movups),
        Just(Mnemonic::Addsd),
        Just(Mnemonic::Mulsd),
        Just(Mnemonic::Addps),
        Just(Mnemonic::Mulps),
        Just(Mnemonic::Xorps),
    ]
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (-65536i64..65536).prop_map(Operand::Imm),
        reg_strategy().prop_map(Operand::Reg),
        mem_strategy().prop_map(Operand::Mem),
    ]
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (
            two_op_mnemonic(),
            operand_strategy(),
            prop_oneof![
                reg_strategy().prop_map(Operand::Reg),
                mem_strategy().prop_map(Operand::Mem)
            ]
        )
            .prop_map(|(m, s, d)| Inst::binary(m, s, d)),
        cond_strategy().prop_map(|c| Inst::branch(Mnemonic::Jcc(c), ".L6")),
        Just(Inst::branch(Mnemonic::Jmp, ".Lloop")),
        Just(Inst::nullary(Mnemonic::Ret)),
        Just(Inst::nullary(Mnemonic::Nop)),
        (width_strategy(), gpr_strategy())
            .prop_map(|(w, r)| Inst::new(Mnemonic::Dec(w), vec![Operand::Reg(r)])),
    ]
}

proptest! {
    #[test]
    fn format_parse_roundtrip(inst in inst_strategy()) {
        let text = inst.to_string();
        let parsed = parse_instruction(&text)
            .unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        prop_assert_eq!(parsed, inst);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse_instruction(&s);
        let _ = mc_asm::parse::parse_listing(&s);
    }

    #[test]
    fn loads_and_stores_are_disjoint_for_pure_moves(
        m in prop_oneof![Just(Mnemonic::Movss), Just(Mnemonic::Movaps), Just(Mnemonic::Movsd)],
        mem in mem_strategy(),
        x in 0u8..16,
        to_mem in any::<bool>(),
    ) {
        let inst = if to_mem {
            Inst::binary(m, Operand::Reg(Reg::Xmm(x)), Operand::Mem(mem))
        } else {
            Inst::binary(m, Operand::Mem(mem), Operand::Reg(Reg::Xmm(x)))
        };
        prop_assert!(inst.load_ref().is_some() != inst.store_ref().is_some());
        let moved = inst.load_bytes().max(inst.store_bytes());
        prop_assert_eq!(moved, m.mem_move().unwrap().bytes);
    }

    #[test]
    fn regs_read_written_are_sorted_and_deduped(inst in inst_strategy()) {
        for v in [inst.regs_read(), inst.regs_written()] {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(v, sorted);
        }
    }
}
