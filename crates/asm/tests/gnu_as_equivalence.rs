//! Byte-for-byte equivalence with GNU `as`: every instruction form the
//! encoder supports must produce exactly the bytes binutils produces,
//! including branch relaxation. Self-skips when binutils is unavailable.

#![cfg(target_arch = "x86_64")]

use mc_asm::encode::{encode_instruction, encode_program};
use mc_asm::parse::{parse_instruction, parse_listing};
use std::process::Command;

fn binutils_available() -> bool {
    Command::new("as").arg("--version").output().is_ok_and(|o| o.status.success())
        && Command::new("objcopy").arg("--version").output().is_ok_and(|o| o.status.success())
}

/// Assembles `text` with GNU as and returns the raw .text bytes.
fn gnu_assemble(text: &str) -> Result<Vec<u8>, String> {
    let dir = std::env::temp_dir().join(format!("mc_as_{}_{:x}", std::process::id(), fnv(text)));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let src = dir.join("t.s");
    let obj = dir.join("t.o");
    let bin = dir.join("t.bin");
    std::fs::write(&src, text).map_err(|e| e.to_string())?;
    let out =
        Command::new("as").arg("-o").arg(&obj).arg(&src).output().map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("as failed: {}", String::from_utf8_lossy(&out.stderr)));
    }
    let out = Command::new("objcopy")
        .arg("-O")
        .arg("binary")
        .arg("--only-section=.text")
        .arg(&obj)
        .arg(&bin)
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("objcopy failed: {}", String::from_utf8_lossy(&out.stderr)));
    }
    let bytes = std::fs::read(&bin).map_err(|e| e.to_string())?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(bytes)
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn hexdump(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect::<Vec<_>>().join(" ")
}

/// The instruction corpus: every mnemonic family × addressing-mode shape
/// the encoder supports.
fn corpus() -> Vec<String> {
    let mut cases: Vec<String> = vec![
        "nop",
        "ret",
        // Integer ALU, imm8/imm32, rr, rm, mr — several widths.
        "addq $1, %rax",
        "addq $48, %rsi",
        "addq $1000, %rsi",
        "addq $-16, %rdx",
        "addl $1, %eax",
        "addw $5, %cx",
        "addb $3, %al",
        "addb $3, %sil",
        "subq $12, %rdi",
        "subl $100000, %ebx",
        "andq $15, %r8",
        "orq $8, %r9",
        "xorq $255, %r10",
        "cmpq $0, %r11",
        "cmpl %eax, %edi",
        "cmpq %r12, %r13",
        "addq %rax, %rbx",
        "addq %rax, (%rsi)",
        "addq (%rsi), %rax",
        "addq %r15, 8(%r14)",
        "subq (%rbx,%rcx,4), %rdx",
        "testq %rax, %rax",
        "testl %edi, %edi",
        "testq $7, %rcx",
        "testq $7, %rax",
        "testb $1, %al",
        "testl $66000, %eax",
        "addl $100000, %eax",
        "cmpq $200, %rax",
        "subb $9, %al",
        "andq $4, %rax",
        "orl $3, %eax",
        // mov family.
        "movq %rsi, %rdi",
        "movl %eax, %ebx",
        "movw %ax, %bx",
        "movb %al, %bl",
        "movq (%rsi), %rax",
        "movq %rax, (%rsi)",
        "movl 4(%rdi), %ecx",
        "movq $7, %rax",
        "movq $-1, %rbx",
        "movl $1, %eax",
        "movl $100000, %edx",
        "movb $5, %al",
        "movq $0, 16(%rsp)",
        "movl $9, (%r8)",
        // lea.
        "leaq 8(%rsi,%rdi,4), %rax",
        "leaq (%rdx), %rbx",
        "leal 1(%eax... skip",
        // inc/dec/neg/shifts.
        "incq %rax",
        "decq %rcx",
        "incl %edx",
        "decb %bl",
        "negq %rsi",
        "shlq $4, %rax",
        "shrq $3, %rbx",
        "shlq $1, %rcx",
        "shrl $2, %edi",
        // imul.
        "imulq %rbx, %rax",
        "imulq (%rsi), %rdx",
        "imull %ecx, %eax",
        // rsp/rbp/r12/r13 quirks.
        "movq (%rsp), %rax",
        "movq (%rbp), %rax",
        "movq (%r12), %rax",
        "movq (%r13), %rax",
        "movq 8(%rsp), %rdx",
        "addq $1, (%r13)",
        // Displacement widths.
        "movq 127(%rsi), %rax",
        "movq 128(%rsi), %rax",
        "movq -128(%rsi), %rax",
        "movq -129(%rsi), %rax",
    ]
    .into_iter()
    .filter(|c| !c.contains("skip"))
    .map(str::to_owned)
    .collect();

    // SSE moves: all mnemonics × load/store × plain/disp/indexed bases,
    // low and high xmm/GPR numbers.
    for m in ["movss", "movsd", "movaps", "movapd", "movups", "movupd", "movdqa", "movdqu"] {
        cases.push(format!("{m} (%rsi), %xmm0"));
        cases.push(format!("{m} %xmm0, (%rsi)"));
        cases.push(format!("{m} 16(%rsi), %xmm1"));
        cases.push(format!("{m} %xmm2, 32(%rsi)"));
        cases.push(format!("{m} (%rdx,%rax,8), %xmm3"));
        cases.push(format!("{m} %xmm9, (%r8)"));
        cases.push(format!("{m} (%r13), %xmm12"));
        cases.push(format!("{m} %xmm1, %xmm2"));
        cases.push(format!("{m} %xmm10, %xmm11"));
    }
    for m in ["movntps", "movntpd"] {
        cases.push(format!("{m} %xmm0, (%rsi)"));
        cases.push(format!("{m} %xmm8, 64(%r11)"));
    }
    // SSE arithmetic.
    for m in [
        "addss", "addsd", "addps", "addpd", "subss", "subsd", "subps", "subpd", "mulss", "mulsd",
        "mulps", "mulpd", "divss", "divsd", "divps", "divpd", "xorps", "xorpd", "sqrtsd", "maxsd",
        "minsd",
    ] {
        cases.push(format!("{m} %xmm0, %xmm1"));
        cases.push(format!("{m} (%rsi), %xmm2"));
        cases.push(format!("{m} 8(%r9), %xmm14"));
        cases.push(format!("{m} %xmm13, %xmm4"));
    }
    cases
}

#[test]
fn every_supported_instruction_matches_binutils() {
    if !binutils_available() {
        eprintln!("skipping: binutils not available");
        return;
    }
    // Batch: assemble the whole corpus as one unit (one `as` invocation),
    // then compare instruction by instruction via offsets.
    let cases = corpus();
    let mut ours: Vec<(String, Vec<u8>)> = Vec::with_capacity(cases.len());
    for text in &cases {
        let inst = parse_instruction(text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
        let bytes = encode_instruction(&inst).unwrap_or_else(|e| panic!("encode {text}: {e}"));
        ours.push((text.clone(), bytes));
    }
    let listing: String = cases.iter().map(|c| format!("\t{c}\n")).collect::<String>();
    let reference = gnu_assemble(&listing).expect("binutils assembles the corpus");
    let mut offset = 0usize;
    for (text, bytes) in &ours {
        let end = (offset + bytes.len()).min(reference.len());
        let theirs = &reference[offset..end];
        assert_eq!(
            bytes.as_slice(),
            theirs,
            "`{text}`: ours [{}] vs as [{}]",
            hexdump(bytes),
            hexdump(theirs)
        );
        offset += bytes.len();
    }
    assert_eq!(offset, reference.len(), "trailing reference bytes unaccounted for");
}

#[test]
fn whole_programs_match_binutils_including_relaxation() {
    if !binutils_available() {
        eprintln!("skipping: binutils not available");
        return;
    }
    let programs = [
        // Figure 8, short backward branch.
        "\
.L6:
\tmovaps %xmm0, (%rsi)
\tmovaps 16(%rsi), %xmm1
\tmovaps %xmm2, 32(%rsi)
\taddq $48, %rsi
\tsubq $12, %rdi
\tjge .L6
",
        // Figure 2's inner kernel.
        "\
.L3:
\tmovsd (%rdx,%rax,8), %xmm0
\taddq $1, %rax
\tmulsd (%r8), %xmm0
\taddq %r11, %r8
\tcmpl %eax, %edi
\taddsd %xmm0, %xmm1
\tmovsd %xmm1, (%r10,%r9,1)
\tjg .L3
",
        // Forward jump over a block, then a long backward loop.
        &{
            let mut s = String::from("\tjmp .Lend\n.Lloop:\n");
            for i in 0..40 {
                s.push_str(&format!("\tmovaps {}(%rsi), %xmm{}\n", i * 16, i % 8));
            }
            s.push_str("\tsubq $160, %rdi\n\tjge .Lloop\n.Lend:\n\tret\n");
            s
        },
    ];
    for text in programs {
        let lines = parse_listing(text).unwrap();
        let ours = encode_program(&lines).unwrap();
        let theirs = gnu_assemble(text).expect("as assembles");
        assert_eq!(
            ours.bytes,
            theirs,
            "program mismatch:\n{text}\nours:   {}\ntheirs: {}",
            hexdump(&ours.bytes),
            hexdump(&theirs)
        );
    }
}
