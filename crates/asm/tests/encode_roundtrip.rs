//! Property tests: encode → decode is the identity on the supported
//! subset, for single instructions and for whole labelled programs.

use mc_asm::decode::{decode_instruction, decode_listing};
use mc_asm::encode::{encode_instruction, encode_program};
use mc_asm::format::write_lines;
use mc_asm::inst::{Inst, MemRef, Mnemonic, Operand, Width};
use mc_asm::parse::parse_listing;
use mc_asm::reg::{GprName, Reg};
use proptest::prelude::*;

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::L), Just(Width::Q)]
}

fn gpr64() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::gpr(GprName::ALL[i]))
}

fn gpr(w: Width) -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(move |i| Reg::Gpr(mc_asm::reg::Gpr { name: GprName::ALL[i], width: w }))
}

fn mem() -> impl Strategy<Value = MemRef> {
    (
        gpr64(),
        prop::option::of((
            (0usize..16).prop_filter("rsp cannot index", |&i| GprName::ALL[i] != GprName::Rsp),
            prop::sample::select(vec![1u8, 2, 4, 8]),
        )),
        prop::sample::select(vec![0i64, 4, 16, 127, 128, -8, -128, -4096, 100_000]),
    )
        .prop_map(|(base, index, disp)| MemRef {
            base: Some(base),
            index: index.map(|(i, s)| (Reg::gpr(GprName::ALL[i]), s)),
            disp,
        })
}

fn sse_move() -> impl Strategy<Value = Inst> {
    let mnemonic = prop::sample::select(vec![
        Mnemonic::Movss,
        Mnemonic::Movsd,
        Mnemonic::Movaps,
        Mnemonic::Movapd,
        Mnemonic::Movups,
        Mnemonic::Movdqu,
    ]);
    (mnemonic, mem(), 0u8..16, any::<bool>()).prop_map(|(m, mem, x, store)| {
        if store {
            Inst::binary(m, Operand::Reg(Reg::Xmm(x)), Operand::Mem(mem))
        } else {
            Inst::binary(m, Operand::Mem(mem), Operand::Reg(Reg::Xmm(x)))
        }
    })
}

fn sse_arith() -> impl Strategy<Value = Inst> {
    let mnemonic = prop::sample::select(vec![
        Mnemonic::Addss,
        Mnemonic::Addsd,
        Mnemonic::Mulsd,
        Mnemonic::Subpd,
        Mnemonic::Divps,
        Mnemonic::Xorps,
    ]);
    (mnemonic, 0u8..16, 0u8..16, prop::option::of(mem())).prop_map(|(m, a, b, src_mem)| {
        match src_mem {
            Some(mem) => Inst::binary(m, Operand::Mem(mem), Operand::Reg(Reg::Xmm(b))),
            None => Inst::binary(m, Operand::Reg(Reg::Xmm(a)), Operand::Reg(Reg::Xmm(b))),
        }
    })
}

fn int_alu() -> impl Strategy<Value = Inst> {
    (
        prop::sample::select(vec![0u8, 1, 2, 3, 4]),
        width(),
        prop::sample::select(vec![0i64, 1, 12, 48, 127, 128, 1000, -1, -128, 100_000]),
        gpr64(),
        prop::option::of(mem()),
        any::<bool>(),
    )
        .prop_map(|(which, w, imm, reg64, maybe_mem, use_imm)| {
            let m = match which {
                0 => Mnemonic::Add(w),
                1 => Mnemonic::Sub(w),
                2 => Mnemonic::And(w),
                3 => Mnemonic::Xor(w),
                _ => Mnemonic::Cmp(w),
            };
            let reg = match (reg64, w) {
                (Reg::Gpr(g), w) => Reg::Gpr(mc_asm::reg::Gpr { name: g.name, width: w }),
                (other, _) => other,
            };
            match (use_imm, maybe_mem) {
                (true, Some(mem)) => Inst::binary(m, Operand::Imm(imm), Operand::Mem(mem)),
                (true, None) => Inst::binary(m, Operand::Imm(imm), Operand::Reg(reg)),
                (false, Some(mem)) => Inst::binary(m, Operand::Reg(reg), Operand::Mem(mem)),
                (false, None) => Inst::binary(m, Operand::Reg(reg), Operand::Reg(reg)),
            }
        })
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![sse_move(), sse_arith(), int_alu()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_identity(inst in any_inst()) {
        let bytes = match encode_instruction(&inst) {
            Ok(b) => b,
            // A few generated forms are legitimately unsupported
            // (e.g. imm out of i32 range); skip those.
            Err(_) => return Ok(()),
        };
        let decoded = decode_instruction(&bytes, 0)
            .unwrap_or_else(|e| panic!("{inst} [{bytes:02x?}]: {e}"));
        prop_assert_eq!(decoded.len, bytes.len());
        prop_assert_eq!(decoded.inst.to_string(), inst.to_string());
        // Idempotent: re-encoding the decoded form gives the same bytes.
        let again = encode_instruction(&decoded.inst).unwrap();
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn program_roundtrip_with_random_bodies(
        insts in prop::collection::vec(any_inst(), 1..24),
        backward in any::<bool>(),
    ) {
        // Wrap the body in a loop: label, body, decrement, branch.
        let mut text = String::from(".Ltop:\n");
        for i in &insts {
            if encode_instruction(i).is_err() {
                return Ok(());
            }
            text.push_str(&format!("\t{i}\n"));
        }
        text.push_str("\tsubq $1, %rdi\n");
        if backward {
            text.push_str("\tjge .Ltop\n");
        } else {
            text.push_str("\tjge .Lout\n.Lout:\n");
        }
        let lines = parse_listing(&text).unwrap();
        let encoded = encode_program(&lines).unwrap();
        let decoded = decode_listing(&encoded.bytes).unwrap();
        let reencoded = encode_program(&decoded).unwrap();
        prop_assert_eq!(
            &reencoded.bytes,
            &encoded.bytes,
            "bytes diverged for:\n{}\nvs decoded:\n{}",
            text,
            write_lines(&decoded)
        );
    }
}
