//! Register model: the 16 general-purpose registers with their four width
//! views, and the 16 SSE `%xmm` registers.

use crate::inst::Width;
use std::fmt;

/// Architectural name of a general-purpose register (width-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum GprName {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl GprName {
    /// All sixteen GPRs in encoding order.
    pub const ALL: [GprName; 16] = [
        GprName::Rax,
        GprName::Rbx,
        GprName::Rcx,
        GprName::Rdx,
        GprName::Rsi,
        GprName::Rdi,
        GprName::Rbp,
        GprName::Rsp,
        GprName::R8,
        GprName::R9,
        GprName::R10,
        GprName::R11,
        GprName::R12,
        GprName::R13,
        GprName::R14,
        GprName::R15,
    ];

    /// Registers MicroCreator's register allocator may hand out for kernel
    /// pointers and counters. `%rsp`/`%rbp` are reserved for the stack frame
    /// and `%rax` for the returned iteration count (the MicroLauncher
    /// linkage contract, §4.4 of the paper).
    pub const ALLOCATABLE: [GprName; 11] = [
        GprName::Rsi,
        GprName::Rdi,
        GprName::Rdx,
        GprName::Rcx,
        GprName::R8,
        GprName::R9,
        GprName::R10,
        GprName::R11,
        GprName::Rbx,
        GprName::R12,
        GprName::R13,
    ];

    /// AT&T name of the 64-bit view without the `%` sigil.
    pub fn base_name(self) -> &'static str {
        match self {
            GprName::Rax => "rax",
            GprName::Rbx => "rbx",
            GprName::Rcx => "rcx",
            GprName::Rdx => "rdx",
            GprName::Rsi => "rsi",
            GprName::Rdi => "rdi",
            GprName::Rbp => "rbp",
            GprName::Rsp => "rsp",
            GprName::R8 => "r8",
            GprName::R9 => "r9",
            GprName::R10 => "r10",
            GprName::R11 => "r11",
            GprName::R12 => "r12",
            GprName::R13 => "r13",
            GprName::R14 => "r14",
            GprName::R15 => "r15",
        }
    }

    /// AT&T name (without `%`) of the view with the given width, e.g.
    /// `Rax` at `Width::L` is `eax` and `R8` at `Width::W` is `r8w`.
    pub fn name_for_width(self, width: Width) -> String {
        let base = self.base_name();
        if let Some(num) = base.strip_prefix('r').filter(|s| s.chars().all(|c| c.is_ascii_digit()))
        {
            return match width {
                Width::Q => format!("r{num}"),
                Width::L => format!("r{num}d"),
                Width::W => format!("r{num}w"),
                Width::B => format!("r{num}b"),
            };
        }
        // Legacy registers: rax/eax/ax/al, rsi/esi/si/sil, ...
        let stem = &base[1..]; // "ax", "si", ...
        match width {
            Width::Q => format!("r{stem}"),
            Width::L => format!("e{stem}"),
            Width::W => stem.to_owned(),
            Width::B => {
                if stem.ends_with('x') {
                    format!("{}l", &stem[..1]) // al, bl, cl, dl
                } else {
                    format!("{stem}l") // sil, dil, bpl, spl
                }
            }
        }
    }
}

/// A general-purpose register *view*: name plus access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gpr {
    /// The architectural register.
    pub name: GprName,
    /// The accessed width (`%rax` vs `%eax` vs `%ax` vs `%al`).
    pub width: Width,
}

impl Gpr {
    /// 64-bit view of a register.
    pub fn q(name: GprName) -> Self {
        Gpr { name, width: Width::Q }
    }

    /// 32-bit view of a register.
    pub fn l(name: GprName) -> Self {
        Gpr { name, width: Width::L }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.name.name_for_width(self.width))
    }
}

/// Any register operand: a GPR view or an SSE register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// General-purpose register view.
    Gpr(Gpr),
    /// `%xmm0`–`%xmm15`.
    Xmm(u8),
}

impl Reg {
    /// Convenience constructor for a 64-bit GPR.
    pub fn gpr(name: GprName) -> Self {
        Reg::Gpr(Gpr::q(name))
    }

    /// Convenience constructor for a 32-bit GPR view.
    pub fn gpr32(name: GprName) -> Self {
        Reg::Gpr(Gpr::l(name))
    }

    /// Convenience constructor for `%xmmN`. Panics if `n > 15`.
    pub fn xmm(n: u8) -> Self {
        assert!(n < 16, "xmm register index {n} out of range");
        Reg::Xmm(n)
    }

    /// The architectural identity used for dependence analysis: all width
    /// views of one GPR alias the same physical register.
    pub fn arch_id(self) -> ArchReg {
        match self {
            Reg::Gpr(g) => ArchReg::Gpr(g.name),
            Reg::Xmm(n) => ArchReg::Xmm(n),
        }
    }

    /// True for `%xmm` registers.
    pub fn is_xmm(self) -> bool {
        matches!(self, Reg::Xmm(_))
    }

    /// Parses an AT&T register name *without* the `%` sigil.
    pub fn from_name(name: &str) -> Option<Reg> {
        if let Some(num) = name.strip_prefix("xmm") {
            let n: u8 = num.parse().ok()?;
            return (n < 16).then_some(Reg::Xmm(n));
        }
        for gpr in GprName::ALL {
            for width in [Width::Q, Width::L, Width::W, Width::B] {
                if gpr.name_for_width(width) == name {
                    return Some(Reg::Gpr(Gpr { name: gpr, width }));
                }
            }
        }
        None
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Gpr(g) => write!(f, "{g}"),
            Reg::Xmm(n) => write!(f, "%xmm{n}"),
        }
    }
}

/// Width-erased register identity, the unit of data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchReg {
    /// A general-purpose register (any width view).
    Gpr(GprName),
    /// An SSE register.
    Xmm(u8),
    /// The RFLAGS register, written by ALU ops and read by conditional
    /// branches.
    Flags,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_width_names() {
        assert_eq!(GprName::Rax.name_for_width(Width::Q), "rax");
        assert_eq!(GprName::Rax.name_for_width(Width::L), "eax");
        assert_eq!(GprName::Rax.name_for_width(Width::W), "ax");
        assert_eq!(GprName::Rax.name_for_width(Width::B), "al");
        assert_eq!(GprName::Rsi.name_for_width(Width::B), "sil");
        assert_eq!(GprName::Rbp.name_for_width(Width::L), "ebp");
    }

    #[test]
    fn numbered_width_names() {
        assert_eq!(GprName::R8.name_for_width(Width::Q), "r8");
        assert_eq!(GprName::R8.name_for_width(Width::L), "r8d");
        assert_eq!(GprName::R8.name_for_width(Width::W), "r8w");
        assert_eq!(GprName::R8.name_for_width(Width::B), "r8b");
        assert_eq!(GprName::R15.name_for_width(Width::L), "r15d");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::gpr(GprName::Rsi).to_string(), "%rsi");
        assert_eq!(Reg::gpr32(GprName::Rax).to_string(), "%eax");
        assert_eq!(Reg::xmm(3).to_string(), "%xmm3");
    }

    #[test]
    fn from_name_roundtrips_all_gpr_views() {
        for gpr in GprName::ALL {
            for width in [Width::Q, Width::L, Width::W, Width::B] {
                let name = gpr.name_for_width(width);
                let parsed = Reg::from_name(&name).unwrap_or_else(|| panic!("parse {name}"));
                assert_eq!(parsed, Reg::Gpr(Gpr { name: gpr, width }));
            }
        }
    }

    #[test]
    fn from_name_roundtrips_xmm() {
        for n in 0..16u8 {
            assert_eq!(Reg::from_name(&format!("xmm{n}")), Some(Reg::Xmm(n)));
        }
        assert_eq!(Reg::from_name("xmm16"), None);
        assert_eq!(Reg::from_name("xmm"), None);
    }

    #[test]
    fn from_name_rejects_garbage() {
        assert_eq!(Reg::from_name("foo"), None);
        assert_eq!(Reg::from_name(""), None);
        assert_eq!(Reg::from_name("raxx"), None);
    }

    #[test]
    fn arch_id_merges_width_views() {
        assert_eq!(Reg::gpr(GprName::Rax).arch_id(), Reg::gpr32(GprName::Rax).arch_id());
        assert_ne!(Reg::gpr(GprName::Rax).arch_id(), Reg::gpr(GprName::Rbx).arch_id());
        assert_ne!(Reg::xmm(0).arch_id(), Reg::xmm(1).arch_id());
    }

    #[test]
    fn allocatable_excludes_reserved() {
        assert!(!GprName::ALLOCATABLE.contains(&GprName::Rax));
        assert!(!GprName::ALLOCATABLE.contains(&GprName::Rsp));
        assert!(!GprName::ALLOCATABLE.contains(&GprName::Rbp));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xmm_constructor_bounds() {
        let _ = Reg::xmm(16);
    }
}
