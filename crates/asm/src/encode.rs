//! x86-64 machine-code encoder for the modelled subset.
//!
//! MicroLauncher's input list includes *object files* (§4.1); this module
//! provides the byte-level half of that path: every instruction the
//! formatter can print also encodes to the bytes GNU `as` would produce
//! (verified byte-for-byte in `tests/gnu_as_equivalence.rs` on hosts with
//! binutils). Branches are relaxed to their short (rel8) forms exactly as
//! GNU `as` does.

use crate::format::AsmLine;
use crate::inst::{Cond, Inst, MemRef, Mnemonic, Operand, Width};
use crate::reg::{Gpr, GprName, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The instruction form has no encoding in the supported subset.
    Unsupported(String),
    /// A branch targets an unknown label.
    UnknownLabel(String),
    /// An immediate is out of range for the instruction form.
    ImmediateRange(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Unsupported(m) => write!(f, "unsupported encoding: {m}"),
            EncodeError::UnknownLabel(l) => write!(f, "unknown branch target `{l}`"),
            EncodeError::ImmediateRange(m) => write!(f, "immediate out of range: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// An assembled instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedProgram {
    /// The machine code.
    pub bytes: Vec<u8>,
    /// Label name → byte offset.
    pub labels: BTreeMap<String, usize>,
    /// Byte offset of each encoded instruction, in line order.
    pub instruction_offsets: Vec<usize>,
}

/// Register encoding number (3 bits + extension).
fn gpr_number(name: GprName) -> u8 {
    match name {
        GprName::Rax => 0,
        GprName::Rcx => 1,
        GprName::Rdx => 2,
        GprName::Rbx => 3,
        GprName::Rsp => 4,
        GprName::Rbp => 5,
        GprName::Rsi => 6,
        GprName::Rdi => 7,
        GprName::R8 => 8,
        GprName::R9 => 9,
        GprName::R10 => 10,
        GprName::R11 => 11,
        GprName::R12 => 12,
        GprName::R13 => 13,
        GprName::R14 => 14,
        GprName::R15 => 15,
    }
}

/// Condition-code number for `0F 8x` / `7x` opcodes.
fn cond_number(c: Cond) -> u8 {
    match c {
        Cond::B => 0x2,
        Cond::Ae => 0x3,
        Cond::E => 0x4,
        Cond::Ne => 0x5,
        Cond::Be => 0x6,
        Cond::A => 0x7,
        Cond::S => 0x8,
        Cond::Ns => 0x9,
        Cond::L => 0xC,
        Cond::Ge => 0xD,
        Cond::Le => 0xE,
        Cond::G => 0xF,
    }
}

/// One assembling unit under construction.
struct Asm {
    bytes: Vec<u8>,
    rex: u8,
    rex_needed: bool,
    prefix66: bool,
    sse_prefix: Option<u8>,
}

impl Asm {
    fn new() -> Self {
        Asm {
            bytes: Vec::with_capacity(8),
            rex: 0x40,
            rex_needed: false,
            prefix66: false,
            sse_prefix: None,
        }
    }

    fn rex_w(&mut self) {
        self.rex |= 0x08;
        self.rex_needed = true;
    }

    fn rex_r(&mut self, high: bool) {
        if high {
            self.rex |= 0x04;
            self.rex_needed = true;
        }
    }

    fn rex_x(&mut self, high: bool) {
        if high {
            self.rex |= 0x02;
            self.rex_needed = true;
        }
    }

    fn rex_b(&mut self, high: bool) {
        if high {
            self.rex |= 0x01;
            self.rex_needed = true;
        }
    }

    /// 8-bit register operands `sil/dil/bpl/spl` need an empty REX.
    fn rex_for_byte_reg(&mut self, g: Gpr) {
        if g.width == Width::B
            && matches!(g.name, GprName::Rsi | GprName::Rdi | GprName::Rbp | GprName::Rsp)
        {
            self.rex_needed = true;
        }
    }

    fn opcode(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    fn modrm(&mut self, mode: u8, reg: u8, rm: u8) {
        self.bytes.push((mode << 6) | ((reg & 7) << 3) | (rm & 7));
    }

    fn imm8(&mut self, v: i8) {
        self.bytes.push(v as u8);
    }

    fn imm32(&mut self, v: i32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Emits the ModRM (+SIB +disp) for a memory operand, with `reg` in the
    /// register field. REX bits for base/index must be set *before* this.
    fn mem_operand(&mut self, reg: u8, mem: &MemRef) -> Result<(), EncodeError> {
        let disp = mem.disp;
        let disp32: i32 = disp
            .try_into()
            .map_err(|_| EncodeError::ImmediateRange(format!("displacement {disp}")))?;
        match (mem.base, mem.index) {
            (None, None) => {
                // Absolute disp32: mod=00 rm=100, SIB base=101 index=100.
                self.modrm(0b00, reg, 0b100);
                self.bytes.push(0x25);
                self.imm32(disp32);
            }
            (Some(Reg::Gpr(base)), None) => {
                let b = gpr_number(base.name);
                let needs_sib = b & 7 == 4; // rsp/r12 collide with SIB escape
                let forced_disp = b & 7 == 5; // rbp/r13 collide with disp32 form
                let (mode, short): (u8, Option<i8>) = if disp == 0 && !forced_disp {
                    (0b00, None)
                } else if let Ok(d8) = i8::try_from(disp) {
                    (0b01, Some(d8))
                } else {
                    (0b10, None)
                };
                if needs_sib {
                    self.modrm(mode, reg, 0b100);
                    self.bytes.push((0b100 << 3) | (b & 7));
                } else {
                    self.modrm(mode, reg, b);
                }
                match (mode, short) {
                    (0b01, Some(d8)) => self.imm8(d8),
                    (0b10, _) => self.imm32(disp32),
                    _ => {}
                }
            }
            (base, Some((Reg::Gpr(index), scale))) => {
                if index.name == GprName::Rsp {
                    return Err(EncodeError::Unsupported("%rsp cannot index".into()));
                }
                let scale_bits = match scale {
                    1 => 0b00,
                    2 => 0b01,
                    4 => 0b10,
                    8 => 0b11,
                    s => return Err(EncodeError::Unsupported(format!("scale {s}"))),
                };
                let x = gpr_number(index.name);
                match base {
                    Some(Reg::Gpr(b)) => {
                        let bnum = gpr_number(b.name);
                        let forced_disp = bnum & 7 == 5;
                        let (mode, short): (u8, Option<i8>) = if disp == 0 && !forced_disp {
                            (0b00, None)
                        } else if let Ok(d8) = i8::try_from(disp) {
                            (0b01, Some(d8))
                        } else {
                            (0b10, None)
                        };
                        self.modrm(mode, reg, 0b100);
                        self.bytes.push((scale_bits << 6) | ((x & 7) << 3) | (bnum & 7));
                        match (mode, short) {
                            (0b01, Some(d8)) => self.imm8(d8),
                            (0b10, _) => self.imm32(disp32),
                            _ => {}
                        }
                    }
                    None => {
                        // Index without base: mod=00 rm=100, SIB base=101, disp32.
                        self.modrm(0b00, reg, 0b100);
                        self.bytes.push((scale_bits << 6) | ((x & 7) << 3) | 0b101);
                        self.imm32(disp32);
                    }
                    Some(Reg::Xmm(_)) => {
                        return Err(EncodeError::Unsupported("xmm as base register".into()))
                    }
                }
            }
            (Some(Reg::Xmm(_)), _) | (_, Some((Reg::Xmm(_), _))) => {
                return Err(EncodeError::Unsupported("xmm in address".into()))
            }
        }
        Ok(())
    }

    /// Finalizes the byte sequence: legacy prefixes, REX, opcode, operands.
    fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes.len() + 3);
        if let Some(p) = self.sse_prefix {
            out.push(p);
        }
        if self.prefix66 {
            out.push(0x66);
        }
        if self.rex_needed || self.rex != 0x40 {
            out.push(self.rex);
        }
        out.extend_from_slice(&self.bytes);
        out
    }
}

/// SSE opcode table entry: (mandatory prefix, load opcode, store opcode).
/// `None` in a slot means the direction is not encodable.
fn sse_move_opcodes(m: Mnemonic) -> Option<(Option<u8>, Option<u8>, Option<u8>)> {
    Some(match m {
        Mnemonic::Movss => (Some(0xF3), Some(0x10), Some(0x11)),
        Mnemonic::Movsd => (Some(0xF2), Some(0x10), Some(0x11)),
        Mnemonic::Movups => (None, Some(0x10), Some(0x11)),
        Mnemonic::Movupd => (Some(0x66), Some(0x10), Some(0x11)),
        Mnemonic::Movaps => (None, Some(0x28), Some(0x29)),
        Mnemonic::Movapd => (Some(0x66), Some(0x28), Some(0x29)),
        Mnemonic::Movdqa => (Some(0x66), Some(0x6F), Some(0x7F)),
        Mnemonic::Movdqu => (Some(0xF3), Some(0x6F), Some(0x7F)),
        Mnemonic::Movntps => (None, None, Some(0x2B)),
        Mnemonic::Movntpd => (Some(0x66), None, Some(0x2B)),
        _ => return None,
    })
}

/// SSE arithmetic table: (mandatory prefix, opcode).
fn sse_arith_opcode(m: Mnemonic) -> Option<(Option<u8>, u8)> {
    Some(match m {
        Mnemonic::Addps => (None, 0x58),
        Mnemonic::Addpd => (Some(0x66), 0x58),
        Mnemonic::Addss => (Some(0xF3), 0x58),
        Mnemonic::Addsd => (Some(0xF2), 0x58),
        Mnemonic::Mulps => (None, 0x59),
        Mnemonic::Mulpd => (Some(0x66), 0x59),
        Mnemonic::Mulss => (Some(0xF3), 0x59),
        Mnemonic::Mulsd => (Some(0xF2), 0x59),
        Mnemonic::Subps => (None, 0x5C),
        Mnemonic::Subpd => (Some(0x66), 0x5C),
        Mnemonic::Subss => (Some(0xF3), 0x5C),
        Mnemonic::Subsd => (Some(0xF2), 0x5C),
        Mnemonic::Divps => (None, 0x5E),
        Mnemonic::Divpd => (Some(0x66), 0x5E),
        Mnemonic::Divss => (Some(0xF3), 0x5E),
        Mnemonic::Divsd => (Some(0xF2), 0x5E),
        Mnemonic::Xorps => (None, 0x57),
        Mnemonic::Xorpd => (Some(0x66), 0x57),
        Mnemonic::Sqrtsd => (Some(0xF2), 0x51),
        Mnemonic::Maxsd => (Some(0xF2), 0x5F),
        Mnemonic::Minsd => (Some(0xF2), 0x5D),
        _ => return None,
    })
}

/// Integer ALU group: `/digit` for the imm forms plus the rr/rm opcodes
/// (store = `op r/m, r`, load = `op r, r/m`), 32/64-bit base opcodes.
fn alu_group(m: Mnemonic) -> Option<(u8, u8, u8)> {
    // (modrm /digit for 0x81/0x83 imm forms, store opcode, load opcode)
    Some(match m {
        Mnemonic::Add(_) => (0, 0x01, 0x03),
        Mnemonic::Or(_) => (1, 0x09, 0x0B),
        Mnemonic::And(_) => (4, 0x21, 0x23),
        Mnemonic::Sub(_) => (5, 0x29, 0x2B),
        Mnemonic::Xor(_) => (6, 0x31, 0x33),
        Mnemonic::Cmp(_) => (7, 0x39, 0x3B),
        _ => return None,
    })
}

/// Sets width-dependent prefixes; returns true when the byte forms apply.
fn apply_width(asm: &mut Asm, width: Width) -> bool {
    match width {
        Width::Q => {
            asm.rex_w();
            false
        }
        Width::L => false,
        Width::W => {
            asm.prefix66 = true;
            false
        }
        Width::B => true,
    }
}

fn gpr_operand(op: &Operand) -> Option<Gpr> {
    match op {
        Operand::Reg(Reg::Gpr(g)) => Some(*g),
        _ => None,
    }
}

/// Encodes one non-branch instruction to bytes.
pub fn encode_instruction(inst: &Inst) -> Result<Vec<u8>, EncodeError> {
    use Mnemonic::*;
    let unsupported = || EncodeError::Unsupported(inst.to_string());
    let mut asm = Asm::new();
    let m = inst.mnemonic;

    if m.is_branch() {
        return Err(EncodeError::Unsupported(
            "branches are encoded by encode_program (they need label offsets)".into(),
        ));
    }

    // SSE data movement.
    if let Some((prefix, load_op, store_op)) = sse_move_opcodes(m) {
        asm.sse_prefix = None;
        let (xmm, rm_operand, opcode) = match (&inst.operands[0], &inst.operands[1]) {
            // load: xmm ← r/m
            (src, Operand::Reg(Reg::Xmm(x))) => (*x, src.clone(), load_op.ok_or_else(unsupported)?),
            // store: r/m ← xmm
            (Operand::Reg(Reg::Xmm(x)), dst) => {
                (*x, dst.clone(), store_op.ok_or_else(unsupported)?)
            }
            _ => return Err(unsupported()),
        };
        if let Some(p) = prefix {
            asm.sse_prefix = Some(p);
        }
        asm.rex_r(xmm >= 8);
        match &rm_operand {
            Operand::Mem(mem) => {
                set_mem_rex(&mut asm, mem);
                asm.opcode(&[0x0F, opcode]);
                asm.mem_operand(xmm, mem)?;
            }
            Operand::Reg(Reg::Xmm(other)) => {
                asm.rex_b(*other >= 8);
                asm.opcode(&[0x0F, opcode]);
                asm.modrm(0b11, xmm, *other);
            }
            _ => return Err(unsupported()),
        }
        return Ok(asm.finish());
    }

    // SSE arithmetic: xmm ← xmm ⊙ r/m.
    if let Some((prefix, opcode)) = sse_arith_opcode(m) {
        let Operand::Reg(Reg::Xmm(dst)) = inst.operands[1] else {
            return Err(unsupported());
        };
        if let Some(p) = prefix {
            asm.sse_prefix = Some(p);
        }
        asm.rex_r(dst >= 8);
        match &inst.operands[0] {
            Operand::Mem(mem) => {
                set_mem_rex(&mut asm, mem);
                asm.opcode(&[0x0F, opcode]);
                asm.mem_operand(dst, mem)?;
            }
            Operand::Reg(Reg::Xmm(src)) => {
                asm.rex_b(*src >= 8);
                asm.opcode(&[0x0F, opcode]);
                asm.modrm(0b11, dst, *src);
            }
            _ => return Err(unsupported()),
        }
        return Ok(asm.finish());
    }

    match m {
        Nop => return Ok(vec![0x90]),
        Ret => return Ok(vec![0xC3]),
        Add(w) | Or(w) | And(w) | Sub(w) | Xor(w) | Cmp(w) => {
            let (digit, store_op, load_op) = alu_group(m).expect("alu group covered");
            let byte_form = apply_width(&mut asm, w);
            match (&inst.operands[0], &inst.operands[1]) {
                (Operand::Imm(v), dst) => {
                    encode_alu_imm(&mut asm, digit, *v, dst, byte_form)?;
                }
                (Operand::Reg(Reg::Gpr(src)), Operand::Reg(Reg::Gpr(dst))) => {
                    asm.rex_for_byte_reg(*src);
                    asm.rex_for_byte_reg(*dst);
                    asm.rex_r(gpr_number(src.name) >= 8);
                    asm.rex_b(gpr_number(dst.name) >= 8);
                    asm.opcode(&[if byte_form { store_op - 1 } else { store_op }]);
                    asm.modrm(0b11, gpr_number(src.name), gpr_number(dst.name));
                }
                (Operand::Reg(Reg::Gpr(src)), Operand::Mem(mem)) => {
                    asm.rex_for_byte_reg(*src);
                    asm.rex_r(gpr_number(src.name) >= 8);
                    set_mem_rex(&mut asm, mem);
                    asm.opcode(&[if byte_form { store_op - 1 } else { store_op }]);
                    asm.mem_operand(gpr_number(src.name), mem)?;
                }
                (Operand::Mem(mem), Operand::Reg(Reg::Gpr(dst))) => {
                    asm.rex_for_byte_reg(*dst);
                    asm.rex_r(gpr_number(dst.name) >= 8);
                    set_mem_rex(&mut asm, mem);
                    asm.opcode(&[if byte_form { load_op - 1 } else { load_op }]);
                    asm.mem_operand(gpr_number(dst.name), mem)?;
                }
                _ => return Err(unsupported()),
            }
        }
        Test(w) => {
            let byte_form = apply_width(&mut asm, w);
            match (&inst.operands[0], &inst.operands[1]) {
                (Operand::Reg(Reg::Gpr(src)), Operand::Reg(Reg::Gpr(dst))) => {
                    asm.rex_r(gpr_number(src.name) >= 8);
                    asm.rex_b(gpr_number(dst.name) >= 8);
                    asm.opcode(&[if byte_form { 0x84 } else { 0x85 }]);
                    asm.modrm(0b11, gpr_number(src.name), gpr_number(dst.name));
                }
                (Operand::Imm(v), dst) => {
                    // test has accumulator short forms A8/A9.
                    if gpr_operand(dst).is_some_and(|g| g.name == GprName::Rax) {
                        asm.opcode(&[if byte_form { 0xA8 } else { 0xA9 }]);
                        emit_imm_for_width(&mut asm, *v, w)?;
                    } else {
                        let rm = rm_of(dst).ok_or_else(unsupported)?;
                        prepare_rm(&mut asm, &rm);
                        asm.opcode(&[if byte_form { 0xF6 } else { 0xF7 }]);
                        emit_rm(&mut asm, 0, &rm)?;
                        emit_imm_for_width(&mut asm, *v, w)?;
                    }
                }
                _ => return Err(unsupported()),
            }
        }
        Mov(w) => {
            let byte_form = apply_width(&mut asm, w);
            match (&inst.operands[0], &inst.operands[1]) {
                (Operand::Imm(v), Operand::Reg(Reg::Gpr(dst))) => {
                    asm.rex_for_byte_reg(*dst);
                    asm.rex_b(gpr_number(dst.name) >= 8);
                    if w == Width::Q {
                        // GNU as: movq $imm32, %r64 → C7 /0 id (sign-extended).
                        let v32: i32 = (*v)
                            .try_into()
                            .map_err(|_| EncodeError::ImmediateRange(inst.to_string()))?;
                        asm.opcode(&[0xC7]);
                        asm.modrm(0b11, 0, gpr_number(dst.name));
                        asm.imm32(v32);
                    } else if byte_form {
                        asm.opcode(&[0xB0 + (gpr_number(dst.name) & 7)]);
                        asm.imm8(
                            i8::try_from(*v)
                                .map_err(|_| EncodeError::ImmediateRange(inst.to_string()))?,
                        );
                    } else {
                        // B8+r io — GNU as's pick for 16/32-bit mov imm.
                        asm.opcode(&[0xB8 + (gpr_number(dst.name) & 7)]);
                        if w == Width::W {
                            let v16: i16 = (*v)
                                .try_into()
                                .map_err(|_| EncodeError::ImmediateRange(inst.to_string()))?;
                            asm.bytes.extend_from_slice(&v16.to_le_bytes());
                        } else {
                            let v32 = (*v) as i32;
                            asm.imm32(v32);
                        }
                    }
                }
                (Operand::Imm(v), Operand::Mem(mem)) => {
                    set_mem_rex(&mut asm, mem);
                    asm.opcode(&[if byte_form { 0xC6 } else { 0xC7 }]);
                    asm.mem_operand(0, mem)?;
                    emit_imm_for_width(&mut asm, *v, w)?;
                }
                (Operand::Reg(Reg::Gpr(src)), Operand::Reg(Reg::Gpr(dst))) => {
                    asm.rex_for_byte_reg(*src);
                    asm.rex_for_byte_reg(*dst);
                    asm.rex_r(gpr_number(src.name) >= 8);
                    asm.rex_b(gpr_number(dst.name) >= 8);
                    asm.opcode(&[if byte_form { 0x88 } else { 0x89 }]);
                    asm.modrm(0b11, gpr_number(src.name), gpr_number(dst.name));
                }
                (Operand::Reg(Reg::Gpr(src)), Operand::Mem(mem)) => {
                    asm.rex_for_byte_reg(*src);
                    asm.rex_r(gpr_number(src.name) >= 8);
                    set_mem_rex(&mut asm, mem);
                    asm.opcode(&[if byte_form { 0x88 } else { 0x89 }]);
                    asm.mem_operand(gpr_number(src.name), mem)?;
                }
                (Operand::Mem(mem), Operand::Reg(Reg::Gpr(dst))) => {
                    asm.rex_for_byte_reg(*dst);
                    asm.rex_r(gpr_number(dst.name) >= 8);
                    set_mem_rex(&mut asm, mem);
                    asm.opcode(&[if byte_form { 0x8A } else { 0x8B }]);
                    asm.mem_operand(gpr_number(dst.name), mem)?;
                }
                _ => return Err(unsupported()),
            }
        }
        Lea(w) => {
            if w != Width::Q && w != Width::L {
                return Err(unsupported());
            }
            apply_width(&mut asm, w);
            let (Operand::Mem(mem), Some(Operand::Reg(Reg::Gpr(dst)))) =
                (&inst.operands[0], inst.operands.get(1))
            else {
                return Err(unsupported());
            };
            asm.rex_r(gpr_number(dst.name) >= 8);
            set_mem_rex(&mut asm, mem);
            asm.opcode(&[0x8D]);
            asm.mem_operand(gpr_number(dst.name), mem)?;
        }
        Inc(w) | Dec(w) => {
            let byte_form = apply_width(&mut asm, w);
            let digit = if matches!(m, Inc(_)) { 0 } else { 1 };
            let rm = rm_of(&inst.operands[0]).ok_or_else(unsupported)?;
            prepare_rm(&mut asm, &rm);
            asm.opcode(&[if byte_form { 0xFE } else { 0xFF }]);
            emit_rm(&mut asm, digit, &rm)?;
        }
        Neg(w) => {
            let byte_form = apply_width(&mut asm, w);
            let rm = rm_of(&inst.operands[0]).ok_or_else(unsupported)?;
            prepare_rm(&mut asm, &rm);
            asm.opcode(&[if byte_form { 0xF6 } else { 0xF7 }]);
            emit_rm(&mut asm, 3, &rm)?;
        }
        Shl(w) | Shr(w) => {
            let byte_form = apply_width(&mut asm, w);
            let digit = if matches!(m, Shl(_)) { 4 } else { 5 };
            let Operand::Imm(amount) = inst.operands[0] else {
                return Err(unsupported());
            };
            let rm = rm_of(&inst.operands[1]).ok_or_else(unsupported)?;
            prepare_rm(&mut asm, &rm);
            if amount == 1 {
                asm.opcode(&[if byte_form { 0xD0 } else { 0xD1 }]);
                emit_rm(&mut asm, digit, &rm)?;
            } else {
                asm.opcode(&[if byte_form { 0xC0 } else { 0xC1 }]);
                emit_rm(&mut asm, digit, &rm)?;
                asm.imm8(
                    i8::try_from(amount)
                        .map_err(|_| EncodeError::ImmediateRange(inst.to_string()))?,
                );
            }
        }
        Imul(w) => {
            if w == Width::B {
                return Err(unsupported());
            }
            apply_width(&mut asm, w);
            let Operand::Reg(Reg::Gpr(dst)) = inst.operands[1] else {
                return Err(unsupported());
            };
            asm.rex_r(gpr_number(dst.name) >= 8);
            match &inst.operands[0] {
                Operand::Reg(Reg::Gpr(src)) => {
                    asm.rex_b(gpr_number(src.name) >= 8);
                    asm.opcode(&[0x0F, 0xAF]);
                    asm.modrm(0b11, gpr_number(dst.name), gpr_number(src.name));
                }
                Operand::Mem(mem) => {
                    set_mem_rex(&mut asm, mem);
                    asm.opcode(&[0x0F, 0xAF]);
                    asm.mem_operand(gpr_number(dst.name), mem)?;
                }
                _ => return Err(unsupported()),
            }
        }
        _ => return Err(unsupported()),
    }
    Ok(asm.finish())
}

/// Either side of a ModRM r/m slot.
enum RmSlot {
    Reg(Gpr),
    Mem(MemRef),
}

fn rm_of(op: &Operand) -> Option<RmSlot> {
    match op {
        Operand::Reg(Reg::Gpr(g)) => Some(RmSlot::Reg(*g)),
        Operand::Mem(m) => Some(RmSlot::Mem(*m)),
        _ => None,
    }
}

fn prepare_rm(asm: &mut Asm, rm: &RmSlot) {
    match rm {
        RmSlot::Reg(g) => {
            asm.rex_for_byte_reg(*g);
            asm.rex_b(gpr_number(g.name) >= 8);
        }
        RmSlot::Mem(mem) => set_mem_rex(asm, mem),
    }
}

fn emit_rm(asm: &mut Asm, digit: u8, rm: &RmSlot) -> Result<(), EncodeError> {
    match rm {
        RmSlot::Reg(g) => {
            asm.modrm(0b11, digit, gpr_number(g.name));
            Ok(())
        }
        RmSlot::Mem(mem) => asm.mem_operand(digit, mem),
    }
}

fn set_mem_rex(asm: &mut Asm, mem: &MemRef) {
    if let Some(Reg::Gpr(b)) = mem.base {
        asm.rex_b(gpr_number(b.name) >= 8);
    }
    if let Some((Reg::Gpr(i), _)) = mem.index {
        asm.rex_x(gpr_number(i.name) >= 8);
    }
}

/// ALU immediate forms: 83 /digit ib (sign-extended) or 81 /digit id;
/// byte operands use 80 /digit ib.
fn encode_alu_imm(
    asm: &mut Asm,
    digit: u8,
    v: i64,
    dst: &Operand,
    byte_form: bool,
) -> Result<(), EncodeError> {
    // Accumulator short forms (`04+8·digit ib` / `05+8·digit iw/id`) — the
    // encodings GNU as prefers when they are no longer than the generic
    // ModRM form.
    if let Some(g) = gpr_operand(dst) {
        if g.name == GprName::Rax {
            if byte_form {
                asm.opcode(&[digit * 8 + 4]);
                asm.imm8(i8::try_from(v).map_err(|_| EncodeError::ImmediateRange(format!("{v}")))?);
                return Ok(());
            }
            if i8::try_from(v).is_err() {
                asm.opcode(&[digit * 8 + 5]);
                emit_imm_for_width(asm, v, if asm.prefix66 { Width::W } else { Width::L })?;
                return Ok(());
            }
        }
    }
    let rm = rm_of(dst).ok_or_else(|| EncodeError::Unsupported("imm to non-r/m".into()))?;
    prepare_rm(asm, &rm);
    if byte_form {
        asm.opcode(&[0x80]);
        emit_rm(asm, digit, &rm)?;
        asm.imm8(i8::try_from(v).map_err(|_| EncodeError::ImmediateRange(format!("{v}")))?);
    } else if let Ok(v8) = i8::try_from(v) {
        asm.opcode(&[0x83]);
        emit_rm(asm, digit, &rm)?;
        asm.imm8(v8);
    } else {
        let v32: i32 = v.try_into().map_err(|_| EncodeError::ImmediateRange(format!("{v}")))?;
        asm.opcode(&[0x81]);
        emit_rm(asm, digit, &rm)?;
        asm.imm32(v32);
    }
    Ok(())
}

fn emit_imm_for_width(asm: &mut Asm, v: i64, w: Width) -> Result<(), EncodeError> {
    match w {
        Width::B => {
            asm.imm8(i8::try_from(v).map_err(|_| EncodeError::ImmediateRange(format!("{v}")))?)
        }
        Width::W => {
            let v16: i16 = v.try_into().map_err(|_| EncodeError::ImmediateRange(format!("{v}")))?;
            asm.bytes.extend_from_slice(&v16.to_le_bytes());
        }
        Width::L | Width::Q => {
            let v32: i32 = v.try_into().map_err(|_| EncodeError::ImmediateRange(format!("{v}")))?;
            asm.imm32(v32);
        }
    }
    Ok(())
}

/// Assembles a full listing, resolving labels with GNU-as-style branch
/// relaxation (short rel8 forms where the displacement fits).
pub fn encode_program(lines: &[AsmLine]) -> Result<EncodedProgram, EncodeError> {
    // Pre-encode every non-branch instruction once.
    enum Item {
        Fixed(Vec<u8>),
        Branch { cond: Option<Cond>, target: String, short: bool },
        Label(String),
    }
    let mut items = Vec::new();
    for line in lines {
        match line {
            AsmLine::Label(l) => items.push(Item::Label(l.clone())),
            AsmLine::Comment(_) | AsmLine::Directive(_) => {}
            AsmLine::Inst(inst) => {
                if inst.mnemonic.is_branch() {
                    let target = inst
                        .target_label()
                        .ok_or_else(|| EncodeError::Unsupported(inst.to_string()))?
                        .to_owned();
                    let cond = match inst.mnemonic {
                        Mnemonic::Jcc(c) => Some(c),
                        _ => None,
                    };
                    // Start optimistic (short) and grow as needed.
                    items.push(Item::Branch { cond, target, short: true });
                } else {
                    items.push(Item::Fixed(encode_instruction(inst)?));
                }
            }
        }
    }

    let branch_len = |cond: Option<Cond>, short: bool| -> usize {
        match (cond, short) {
            (_, true) => 2,
            (None, false) => 5,
            (Some(_), false) => 6,
        }
    };

    // Relax until the layout is stable.
    loop {
        // Compute offsets under the current size assumptions.
        let mut offset = 0usize;
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        let mut offsets = Vec::with_capacity(items.len());
        for item in &items {
            offsets.push(offset);
            match item {
                Item::Fixed(bytes) => offset += bytes.len(),
                Item::Branch { cond, short, .. } => offset += branch_len(*cond, *short),
                Item::Label(l) => {
                    labels.insert(l.clone(), offset);
                }
            }
        }
        // Grow any short branch whose displacement no longer fits.
        let mut grew = false;
        for (i, item) in items.iter_mut().enumerate() {
            if let Item::Branch { cond, target, short } = item {
                if !*short {
                    continue;
                }
                let target_off = *labels
                    .get(target.as_str())
                    .ok_or_else(|| EncodeError::UnknownLabel(target.clone()))?
                    as i64;
                let end = offsets[i] as i64 + branch_len(*cond, true) as i64;
                let rel = target_off - end;
                if i8::try_from(rel).is_err() {
                    *short = false;
                    grew = true;
                }
            }
        }
        if grew {
            continue;
        }

        // Stable: emit.
        let mut bytes = Vec::with_capacity(offset);
        let mut instruction_offsets = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                Item::Label(_) => {}
                Item::Fixed(b) => {
                    instruction_offsets.push(offsets[i]);
                    bytes.extend_from_slice(b);
                }
                Item::Branch { cond, target, short } => {
                    instruction_offsets.push(offsets[i]);
                    let target_off = labels[target.as_str()] as i64;
                    let end = offsets[i] as i64 + branch_len(*cond, *short) as i64;
                    let rel = target_off - end;
                    match (cond, short) {
                        (None, true) => {
                            bytes.push(0xEB);
                            bytes.push(rel as i8 as u8);
                        }
                        (Some(c), true) => {
                            bytes.push(0x70 + cond_number(*c));
                            bytes.push(rel as i8 as u8);
                        }
                        (None, false) => {
                            bytes.push(0xE9);
                            bytes.extend_from_slice(&(rel as i32).to_le_bytes());
                        }
                        (Some(c), false) => {
                            bytes.push(0x0F);
                            bytes.push(0x80 + cond_number(*c));
                            bytes.extend_from_slice(&(rel as i32).to_le_bytes());
                        }
                    }
                }
            }
        }
        return Ok(EncodedProgram { bytes, labels, instruction_offsets });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_instruction, parse_listing};

    fn enc(text: &str) -> Vec<u8> {
        encode_instruction(&parse_instruction(text).unwrap())
            .unwrap_or_else(|e| panic!("{text}: {e}"))
    }

    #[test]
    fn known_encodings() {
        // Spot checks against GNU as output (full corpus equivalence in
        // tests/gnu_as_equivalence.rs).
        assert_eq!(enc("nop"), vec![0x90]);
        assert_eq!(enc("ret"), vec![0xC3]);
        assert_eq!(enc("addq $1, %rax"), vec![0x48, 0x83, 0xC0, 0x01]);
        assert_eq!(enc("addq $48, %rsi"), vec![0x48, 0x83, 0xC6, 0x30]);
        assert_eq!(enc("subq $12, %rdi"), vec![0x48, 0x83, 0xEF, 0x0C]);
        assert_eq!(enc("addq $1000, %rsi"), vec![0x48, 0x81, 0xC6, 0xE8, 0x03, 0x00, 0x00]);
        assert_eq!(enc("addl $1, %eax"), vec![0x83, 0xC0, 0x01]);
        assert_eq!(enc("movaps (%rsi), %xmm0"), vec![0x0F, 0x28, 0x06]);
        assert_eq!(enc("movaps %xmm0, (%rsi)"), vec![0x0F, 0x29, 0x06]);
        assert_eq!(enc("movaps 16(%rsi), %xmm1"), vec![0x0F, 0x28, 0x4E, 0x10]);
        assert_eq!(enc("movss (%rsi), %xmm0"), vec![0xF3, 0x0F, 0x10, 0x06]);
        assert_eq!(enc("movsd (%rdx,%rax,8), %xmm0"), vec![0xF2, 0x0F, 0x10, 0x04, 0xC2]);
        assert_eq!(enc("mulsd (%r8), %xmm0"), vec![0xF2, 0x41, 0x0F, 0x59, 0x00]);
        assert_eq!(enc("addsd %xmm0, %xmm1"), vec![0xF2, 0x0F, 0x58, 0xC8]);
        assert_eq!(enc("cmpl %eax, %edi"), vec![0x39, 0xC7]);
        assert_eq!(enc("movq %rsi, %rdi"), vec![0x48, 0x89, 0xF7]);
        assert_eq!(enc("movl $1, %eax"), vec![0xB8, 0x01, 0x00, 0x00, 0x00]);
        assert_eq!(enc("movq $7, %rax"), vec![0x48, 0xC7, 0xC0, 0x07, 0x00, 0x00, 0x00]);
        assert_eq!(enc("leaq 8(%rsi,%rdi,4), %rax"), vec![0x48, 0x8D, 0x44, 0xBE, 0x08]);
        assert_eq!(enc("decq %rcx"), vec![0x48, 0xFF, 0xC9]);
        assert_eq!(enc("movntps %xmm0, 64(%r11)"), vec![0x41, 0x0F, 0x2B, 0x43, 0x40]);
        assert_eq!(enc("xorl %eax, %eax"), vec![0x31, 0xC0]);
    }

    #[test]
    fn rsp_rbp_addressing_quirks() {
        // rsp base needs SIB; rbp base needs an explicit disp.
        assert_eq!(enc("movq (%rsp), %rax"), vec![0x48, 0x8B, 0x04, 0x24]);
        assert_eq!(enc("movq (%rbp), %rax"), vec![0x48, 0x8B, 0x45, 0x00]);
        assert_eq!(enc("movq (%r12), %rax"), vec![0x49, 0x8B, 0x04, 0x24]);
        assert_eq!(enc("movq (%r13), %rax"), vec![0x49, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn displacement_width_selection() {
        assert_eq!(enc("movq 127(%rsi), %rax").len(), 4, "disp8");
        assert_eq!(enc("movq 128(%rsi), %rax").len(), 7, "disp32");
        assert_eq!(enc("movq -128(%rsi), %rax").len(), 4, "disp8 negative");
        assert_eq!(enc("movq -129(%rsi), %rax").len(), 7, "disp32 negative");
    }

    #[test]
    fn figure8_program_assembles_with_short_branch() {
        let listing = "\
.L6:
movaps %xmm0, (%rsi)
movaps 16(%rsi), %xmm1
movaps %xmm2, 32(%rsi)
addq $48, %rsi
subq $12, %rdi
jge .L6
";
        let lines = parse_listing(listing).unwrap();
        let encoded = encode_program(&lines).unwrap();
        assert_eq!(encoded.labels[".L6"], 0);
        // Backward short jge: 0x7D rel8.
        let n = encoded.bytes.len();
        assert_eq!(encoded.bytes[n - 2], 0x7D);
        let rel = encoded.bytes[n - 1] as i8;
        assert_eq!(n as i64 + i64::from(rel), 0, "branch lands on .L6");
    }

    #[test]
    fn long_branches_relax_to_rel32() {
        // 50 movaps (4 bytes each with disp8… actually 3-4) push the
        // backward branch past -128.
        let mut listing = String::from(".L0:\n");
        for i in 0..50 {
            listing.push_str(&format!("movaps {}(%rsi), %xmm1\n", i * 16));
        }
        listing.push_str("jge .L0\n");
        let lines = parse_listing(&listing).unwrap();
        let encoded = encode_program(&lines).unwrap();
        let n = encoded.bytes.len();
        // Last 6 bytes: 0F 8D rel32.
        assert_eq!(&encoded.bytes[n - 6..n - 4], &[0x0F, 0x8D]);
        let rel = i32::from_le_bytes(encoded.bytes[n - 4..].try_into().unwrap());
        assert_eq!(n as i64 + i64::from(rel), 0);
    }

    #[test]
    fn unknown_label_is_an_error() {
        let lines = parse_listing("jmp .Lnowhere\n").unwrap();
        assert!(matches!(encode_program(&lines), Err(EncodeError::UnknownLabel(_))));
    }

    #[test]
    fn unsupported_forms_error_cleanly() {
        let i = parse_instruction("imulb $3, %al");
        // imul byte form doesn't parse as 2-op; construct directly instead.
        assert!(i.is_err() || encode_instruction(&i.unwrap()).is_err());
    }
}
