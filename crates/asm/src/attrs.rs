//! Static per-instruction attributes consumed by the simulator's timing
//! model and by MicroCreator's instruction-selection passes.
//!
//! Attributes here are micro-architecture *independent* facts about an
//! instruction (how many bytes an SSE move transfers, whether it requires
//! alignment, which execution class it belongs to). Per-µarch latencies and
//! port maps live in `mc-simarch`.

use crate::inst::{Inst, Mnemonic};

/// Description of a memory-move mnemonic: the paper's "move semantics"
/// (§3.1) — byte count, vector-ness, alignment requirement, streaming hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemMoveInfo {
    /// Bytes transferred per execution (4 for `movss`, 8 for `movsd`,
    /// 16 for the packed moves).
    pub bytes: u8,
    /// True for packed (vector) moves.
    pub vector: bool,
    /// True if the memory operand must be naturally aligned (`movaps`
    /// faults on unaligned addresses; `movups` does not).
    pub aligned_required: bool,
    /// True for non-temporal (streaming) stores.
    pub streaming: bool,
}

/// Coarse execution class used for port binding in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer add/sub/logic/compare/inc/dec/shift.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Address computation (`lea`).
    Lea,
    /// GPR-to-GPR or immediate-to-GPR move.
    MovGpr,
    /// SSE register-to-register or memory move.
    SseMove,
    /// SSE FP add/sub/min/max.
    FpAdd,
    /// SSE FP multiply.
    FpMul,
    /// SSE FP divide / square root (unpipelined).
    FpDiv,
    /// SSE bitwise logic (`xorps`).
    FpLogic,
    /// Conditional or unconditional branch.
    Branch,
    /// `nop` / `ret`.
    Other,
}

impl Mnemonic {
    /// Memory-move semantics for SSE data-movement mnemonics, `None` for
    /// everything else (integer `mov` moves `Width::bytes()` but is handled
    /// through its class; the paper's "move semantics" abstraction concerns
    /// the SSE family it varies over).
    pub fn mem_move(self) -> Option<MemMoveInfo> {
        use Mnemonic::*;
        Some(match self {
            Movss => {
                MemMoveInfo { bytes: 4, vector: false, aligned_required: false, streaming: false }
            }
            Movsd => {
                MemMoveInfo { bytes: 8, vector: false, aligned_required: false, streaming: false }
            }
            Movaps | Movapd | Movdqa => {
                MemMoveInfo { bytes: 16, vector: true, aligned_required: true, streaming: false }
            }
            Movups | Movupd | Movdqu => {
                MemMoveInfo { bytes: 16, vector: true, aligned_required: false, streaming: false }
            }
            Movntps | Movntpd => {
                MemMoveInfo { bytes: 16, vector: true, aligned_required: true, streaming: true }
            }
            _ => return None,
        })
    }

    /// The execution class for port binding.
    pub fn class(self) -> InstClass {
        use Mnemonic::*;
        match self {
            Add(_) | Sub(_) | And(_) | Or(_) | Xor(_) | Cmp(_) | Test(_) | Inc(_) | Dec(_)
            | Shl(_) | Shr(_) | Neg(_) => InstClass::IntAlu,
            Imul(_) => InstClass::IntMul,
            Lea(_) => InstClass::Lea,
            Mov(_) => InstClass::MovGpr,
            Movss | Movsd | Movaps | Movapd | Movups | Movupd | Movdqa | Movdqu | Movntps
            | Movntpd => InstClass::SseMove,
            Addss | Addsd | Addps | Addpd | Subss | Subsd | Subps | Subpd | Maxsd | Minsd => {
                InstClass::FpAdd
            }
            Mulss | Mulsd | Mulps | Mulpd => InstClass::FpMul,
            Divss | Divsd | Divps | Divpd | Sqrtsd => InstClass::FpDiv,
            Xorps | Xorpd => InstClass::FpLogic,
            Jmp | Jcc(_) => InstClass::Branch,
            Ret | Nop => InstClass::Other,
        }
    }

    /// True for SSE floating-point arithmetic (not moves or logic).
    pub fn is_fp_arith(self) -> bool {
        matches!(self.class(), InstClass::FpAdd | InstClass::FpMul | InstClass::FpDiv)
    }

    /// True for packed (vector) SSE operations.
    pub fn is_vector(self) -> bool {
        use Mnemonic::*;
        matches!(
            self,
            Movaps
                | Movapd
                | Movups
                | Movupd
                | Movdqa
                | Movdqu
                | Movntps
                | Movntpd
                | Addps
                | Addpd
                | Subps
                | Subpd
                | Mulps
                | Mulpd
                | Divps
                | Divpd
                | Xorps
                | Xorpd
        )
    }
}

impl Inst {
    /// Bytes of memory read by this instruction (0 if it does not load).
    ///
    /// SSE moves use their [`MemMoveInfo`]; load-op SSE arithmetic reads the
    /// operand width implied by its scalar/packed suffix; integer memory
    /// operands read `Width::bytes()`.
    pub fn load_bytes(&self) -> u8 {
        if self.load_ref().is_none() {
            return 0;
        }
        self.access_bytes()
    }

    /// Bytes of memory written by this instruction (0 if it does not store).
    pub fn store_bytes(&self) -> u8 {
        if self.store_ref().is_none() {
            return 0;
        }
        self.access_bytes()
    }

    /// The natural access size of this instruction's memory operand.
    fn access_bytes(&self) -> u8 {
        use Mnemonic::*;
        if let Some(info) = self.mnemonic.mem_move() {
            return info.bytes;
        }
        match self.mnemonic {
            Addss | Subss | Mulss | Divss => 4,
            Addsd | Subsd | Mulsd | Divsd | Sqrtsd | Maxsd | Minsd => 8,
            Addps | Addpd | Subps | Subpd | Mulps | Mulpd | Divps | Divpd | Xorps | Xorpd => 16,
            Add(w) | Sub(w) | Imul(w) | And(w) | Or(w) | Xor(w) | Cmp(w) | Test(w) | Mov(w)
            | Inc(w) | Dec(w) | Shl(w) | Shr(w) | Neg(w) => w.bytes(),
            _ => 0,
        }
    }

    /// Number of fused-domain micro-operations this instruction decodes to
    /// on the modelled Intel cores.
    ///
    /// First-order model: 1 uop baseline; +1 for a load-op source (the load
    /// µop — micro-fused but occupying a load port slot, counted separately
    /// for port pressure in the simulator); stores decode to
    /// store-address + store-data (2 unfused µops, 1 fused-domain slot on
    /// Nehalem/SNB — we report fused-domain count here).
    pub fn fused_uops(&self) -> u8 {
        let mut uops = 1u8;
        // A load folded into an ALU op stays micro-fused: still 1 fused slot.
        // RMW memory destinations add a store on top of the load: 2 slots.
        if self.load_ref().is_some() && self.store_ref().is_some() {
            uops += 1;
        }
        uops
    }

    /// True if this instruction's only effect is data movement (no ALU).
    pub fn is_pure_move(&self) -> bool {
        matches!(self.mnemonic.class(), InstClass::SseMove | InstClass::MovGpr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, MemRef, Operand, Width};
    use crate::reg::{GprName, Reg};

    #[test]
    fn mem_move_byte_counts_match_paper() {
        // "the scalar instruction movss moves four bytes of memory, whereas
        //  the vectorized movaps moves sixteen bytes" (§5.1)
        assert_eq!(Mnemonic::Movss.mem_move().unwrap().bytes, 4);
        assert_eq!(Mnemonic::Movsd.mem_move().unwrap().bytes, 8);
        assert_eq!(Mnemonic::Movaps.mem_move().unwrap().bytes, 16);
        assert_eq!(Mnemonic::Movapd.mem_move().unwrap().bytes, 16);
    }

    #[test]
    fn alignment_requirements() {
        assert!(Mnemonic::Movaps.mem_move().unwrap().aligned_required);
        assert!(!Mnemonic::Movups.mem_move().unwrap().aligned_required);
        assert!(!Mnemonic::Movss.mem_move().unwrap().aligned_required);
    }

    #[test]
    fn streaming_flag() {
        assert!(Mnemonic::Movntps.mem_move().unwrap().streaming);
        assert!(!Mnemonic::Movaps.mem_move().unwrap().streaming);
    }

    #[test]
    fn non_moves_have_no_mem_move() {
        assert!(Mnemonic::Addsd.mem_move().is_none());
        assert!(Mnemonic::Add(Width::Q).mem_move().is_none());
        assert!(Mnemonic::Jmp.mem_move().is_none());
    }

    #[test]
    fn classes() {
        assert_eq!(Mnemonic::Add(Width::Q).class(), InstClass::IntAlu);
        assert_eq!(Mnemonic::Imul(Width::Q).class(), InstClass::IntMul);
        assert_eq!(Mnemonic::Lea(Width::Q).class(), InstClass::Lea);
        assert_eq!(Mnemonic::Movaps.class(), InstClass::SseMove);
        assert_eq!(Mnemonic::Addsd.class(), InstClass::FpAdd);
        assert_eq!(Mnemonic::Mulsd.class(), InstClass::FpMul);
        assert_eq!(Mnemonic::Divsd.class(), InstClass::FpDiv);
        assert_eq!(Mnemonic::Xorps.class(), InstClass::FpLogic);
        assert_eq!(Mnemonic::Jcc(Cond::Ge).class(), InstClass::Branch);
    }

    #[test]
    fn vectorness() {
        assert!(Mnemonic::Movaps.is_vector());
        assert!(Mnemonic::Addps.is_vector());
        assert!(!Mnemonic::Movss.is_vector());
        assert!(!Mnemonic::Addsd.is_vector());
    }

    #[test]
    fn load_store_bytes() {
        let rsi = Reg::gpr(GprName::Rsi);
        let load = Inst::binary(
            Mnemonic::Movaps,
            Operand::Mem(MemRef::base_disp(rsi, 0)),
            Operand::Reg(Reg::xmm(0)),
        );
        assert_eq!(load.load_bytes(), 16);
        assert_eq!(load.store_bytes(), 0);

        let store = Inst::binary(
            Mnemonic::Movss,
            Operand::Reg(Reg::xmm(0)),
            Operand::Mem(MemRef::base_disp(rsi, 0)),
        );
        assert_eq!(store.load_bytes(), 0);
        assert_eq!(store.store_bytes(), 4);

        let load_op = Inst::binary(
            Mnemonic::Mulsd,
            Operand::Mem(MemRef::base_disp(rsi, 0)),
            Operand::Reg(Reg::xmm(0)),
        );
        assert_eq!(load_op.load_bytes(), 8);

        let int_load = Inst::binary(
            Mnemonic::Mov(Width::L),
            Operand::Mem(MemRef::base_disp(rsi, 0)),
            Operand::Reg(Reg::gpr32(GprName::Rax)),
        );
        assert_eq!(int_load.load_bytes(), 4);
    }

    #[test]
    fn register_only_ops_move_no_memory() {
        let i = Inst::binary(Mnemonic::Addsd, Operand::Reg(Reg::xmm(0)), Operand::Reg(Reg::xmm(1)));
        assert_eq!(i.load_bytes(), 0);
        assert_eq!(i.store_bytes(), 0);
    }

    #[test]
    fn fused_uop_counts() {
        let rsi = Reg::gpr(GprName::Rsi);
        let reg_op = Inst::binary(Mnemonic::Add(Width::Q), Operand::Imm(1), Operand::Reg(rsi));
        assert_eq!(reg_op.fused_uops(), 1);
        let load_op = Inst::binary(
            Mnemonic::Mulsd,
            Operand::Mem(MemRef::base_disp(rsi, 0)),
            Operand::Reg(Reg::xmm(0)),
        );
        assert_eq!(load_op.fused_uops(), 1, "micro-fused load-op is one fused slot");
        let rmw = Inst::binary(
            Mnemonic::Add(Width::Q),
            Operand::Imm(1),
            Operand::Mem(MemRef::base_disp(rsi, 0)),
        );
        assert_eq!(rmw.fused_uops(), 2);
    }

    #[test]
    fn pure_move_detection() {
        assert!(Inst::binary(
            Mnemonic::Movaps,
            Operand::Reg(Reg::xmm(0)),
            Operand::Reg(Reg::xmm(1))
        )
        .is_pure_move());
        assert!(!Inst::binary(
            Mnemonic::Addsd,
            Operand::Reg(Reg::xmm(0)),
            Operand::Reg(Reg::xmm(1))
        )
        .is_pure_move());
    }
}
