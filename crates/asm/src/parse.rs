//! AT&T assembly text parsing — MicroLauncher's "assembler".
//!
//! The paper's MicroLauncher accepts assembly files produced by MicroCreator
//! (or written by hand) and compiles them with GCC. In this reproduction the
//! launcher instead parses the text back into [`Inst`] values and executes
//! them on the simulator/interpreter, so the parser accepts exactly the
//! dialect the formatter emits plus common hand-written forms (flexible
//! whitespace, `#` comments, directives).

use crate::format::AsmLine;
use crate::inst::{Inst, MemRef, Mnemonic, Operand};
use crate::reg::Reg;
use std::fmt;

/// A parse error with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmParseError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmParseError {}

/// Parses a full assembly listing into lines (labels, instructions,
/// directives, comments). Blank lines are dropped.
pub fn parse_listing(text: &str) -> Result<Vec<AsmLine>, AsmParseError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let mut line = raw.trim();
        // Trailing comment after code: split it off and keep both.
        let mut trailing_comment = None;
        if let Some(hash) = line.find('#') {
            let (code, comment) = line.split_at(hash);
            if code.trim().is_empty() {
                out.push(AsmLine::Comment(comment[1..].to_owned()));
                continue;
            }
            trailing_comment = Some(comment[1..].to_owned());
            line = code.trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            validate_label(label, lineno)?;
            out.push(AsmLine::Label(label.to_owned()));
        } else if line.starts_with('.') {
            out.push(AsmLine::Directive(line.to_owned()));
        } else {
            out.push(AsmLine::Inst(parse_instruction_at(line, lineno)?));
        }
        if let Some(c) = trailing_comment {
            out.push(AsmLine::Comment(c));
        }
    }
    Ok(out)
}

fn validate_label(label: &str, line: usize) -> Result<(), AsmParseError> {
    let ok = !label.is_empty()
        && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '$');
    if ok {
        Ok(())
    } else {
        Err(AsmParseError { line, message: format!("invalid label `{label}`") })
    }
}

/// Parses a single instruction (no label, no comment).
pub fn parse_instruction(text: &str) -> Result<Inst, AsmParseError> {
    parse_instruction_at(text, 1)
}

fn parse_instruction_at(text: &str, line: usize) -> Result<Inst, AsmParseError> {
    let err = |message: String| AsmParseError { line, message };
    let text = text.trim();
    let (name, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let mnemonic =
        Mnemonic::from_name(name).ok_or_else(|| err(format!("unknown mnemonic `{name}`")))?;
    let mut operands = Vec::new();
    if !rest.is_empty() {
        for part in split_operands(rest) {
            operands.push(parse_operand(part.trim(), mnemonic, line)?);
        }
    }
    validate_arity(&mnemonic, &operands, line)?;
    Ok(Inst::new(mnemonic, operands))
}

/// Splits an operand list on commas that are not inside parentheses
/// (memory operands contain commas: `(%rdx,%rax,8)`).
fn split_operands(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_operand(s: &str, mnemonic: Mnemonic, line: usize) -> Result<Operand, AsmParseError> {
    let err = |message: String| AsmParseError { line, message };
    if s.is_empty() {
        return Err(err("empty operand".into()));
    }
    if let Some(imm) = s.strip_prefix('$') {
        let v = parse_int(imm).ok_or_else(|| err(format!("invalid immediate `{s}`")))?;
        return Ok(Operand::Imm(v));
    }
    if let Some(name) = s.strip_prefix('%') {
        let r = Reg::from_name(name).ok_or_else(|| err(format!("unknown register `{s}`")))?;
        return Ok(Operand::Reg(r));
    }
    if s.contains('(') {
        return parse_mem(s, line).map(Operand::Mem);
    }
    if mnemonic.is_branch() {
        validate_label(s, line)?;
        return Ok(Operand::Label(s.to_owned()));
    }
    // Bare integer without parens: absolute memory reference.
    if let Some(v) = parse_int(s) {
        return Ok(Operand::Mem(MemRef { base: None, index: None, disp: v }));
    }
    Err(err(format!("cannot parse operand `{s}`")))
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("-0x").or_else(|| s.strip_prefix("-0X")) {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    s.parse().ok()
}

fn parse_mem(s: &str, line: usize) -> Result<MemRef, AsmParseError> {
    let err = |message: String| AsmParseError { line, message };
    let open = s.find('(').ok_or_else(|| err(format!("expected `(` in `{s}`")))?;
    let close = s.rfind(')').ok_or_else(|| err(format!("unterminated memory operand `{s}`")))?;
    if close != s.len() - 1 {
        return Err(err(format!("trailing characters after `)` in `{s}`")));
    }
    let disp_str = &s[..open];
    let disp = if disp_str.is_empty() {
        0
    } else {
        parse_int(disp_str).ok_or_else(|| err(format!("invalid displacement `{disp_str}`")))?
    };
    let inner = &s[open + 1..close];
    let fields: Vec<&str> = inner.split(',').map(str::trim).collect();
    if fields.len() > 3 {
        return Err(err(format!("too many fields in memory operand `{s}`")));
    }
    let parse_reg = |f: &str| -> Result<Reg, AsmParseError> {
        f.strip_prefix('%')
            .and_then(Reg::from_name)
            .ok_or_else(|| err(format!("unknown register `{f}` in `{s}`")))
    };
    let base = match fields.first() {
        Some(&"") | None => None,
        Some(f) => Some(parse_reg(f)?),
    };
    let index = match fields.get(1) {
        None | Some(&"") => None,
        Some(f) => {
            let reg = parse_reg(f)?;
            let scale: u8 = match fields.get(2) {
                None | Some(&"") => 1,
                Some(sc) => sc
                    .parse()
                    .ok()
                    .filter(|v| matches!(v, 1 | 2 | 4 | 8))
                    .ok_or_else(|| err(format!("invalid scale in `{s}`")))?,
            };
            Some((reg, scale))
        }
    };
    if base.is_none() && index.is_none() && disp == 0 {
        return Err(err(format!("empty memory operand `{s}`")));
    }
    Ok(MemRef { base, index, disp })
}

fn validate_arity(m: &Mnemonic, ops: &[Operand], line: usize) -> Result<(), AsmParseError> {
    use Mnemonic::*;
    let expected: std::ops::RangeInclusive<usize> = match m {
        Ret | Nop => 0..=0,
        Jmp | Jcc(_) => 1..=1,
        Inc(_) | Dec(_) | Neg(_) => 1..=1,
        _ => 2..=2,
    };
    if expected.contains(&ops.len()) {
        Ok(())
    } else {
        Err(AsmParseError {
            line,
            message: format!(
                "`{}` expects {:?} operand(s), found {}",
                m.name(),
                expected,
                ops.len()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, Width};
    use crate::reg::GprName;

    #[test]
    fn parses_figure2_kernel() {
        let text = "\
.L3:
\tmovsd (%rdx,%rax,8), %xmm0
\taddq $1, %rax
\tmulsd (%r8), %xmm0
\taddq %r11, %r8
\tcmpl %eax, %edi
\taddsd %xmm0, %xmm1
\tmovsd %xmm1, (%r10,%r9)
\tjg .L3
";
        let lines = parse_listing(text).unwrap();
        assert_eq!(lines.len(), 9);
        assert_eq!(lines[0], AsmLine::Label(".L3".into()));
        let insts: Vec<&Inst> = lines
            .iter()
            .filter_map(|l| match l {
                AsmLine::Inst(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(insts.len(), 8);
        assert_eq!(insts[0].mnemonic, Mnemonic::Movsd);
        assert_eq!(insts[4].mnemonic, Mnemonic::Cmp(Width::L));
        assert_eq!(insts[7].mnemonic, Mnemonic::Jcc(Cond::G));
        // Default scale of 1 when omitted: (%r10,%r9)
        let store_mem = insts[6].store_ref().unwrap();
        assert_eq!(store_mem.index.unwrap().1, 1);
    }

    #[test]
    fn roundtrip_format_parse() {
        let cases = [
            "movsd (%rdx,%rax,8), %xmm0",
            "addq $1, %rax",
            "mulsd (%r8), %xmm0",
            "addsd %xmm0, %xmm1",
            "jg .L3",
            "jge .L6",
            "movaps %xmm2, 32(%rsi)",
            "subq $-12, %rdi",
            "cmpl %eax, %edi",
            "decq %rcx",
            "leaq 8(%rsi,%rdi,4), %rax",
            "ret",
            "nop",
            "movntps %xmm0, 64(%r11)",
        ];
        for text in cases {
            let inst = parse_instruction(text).unwrap();
            assert_eq!(inst.to_string(), text);
        }
    }

    #[test]
    fn parses_comments_and_directives() {
        let text = "# standalone\n.globl kernel\nmovaps (%rsi), %xmm0 # trailing\n";
        let lines = parse_listing(text).unwrap();
        assert_eq!(lines[0], AsmLine::Comment(" standalone".into()));
        assert_eq!(lines[1], AsmLine::Directive(".globl kernel".into()));
        assert!(matches!(lines[2], AsmLine::Inst(_)));
        assert_eq!(lines[3], AsmLine::Comment(" trailing".into()));
    }

    #[test]
    fn parses_zero_disp_with_explicit_zero() {
        // Figure 8 writes `0(%rsi)`.
        let i = parse_instruction("movaps %xmm0, 0(%rsi)").unwrap();
        let mem = i.store_ref().unwrap();
        assert_eq!(mem.disp, 0);
        assert_eq!(mem.base, Some(Reg::gpr(GprName::Rsi)));
    }

    #[test]
    fn parses_hex_immediates_and_disps() {
        let i = parse_instruction("addq $0x10, %rsi").unwrap();
        assert_eq!(i.operands[0].as_imm(), Some(16));
        let i = parse_instruction("movaps -0x20(%rsi), %xmm0").unwrap();
        assert_eq!(i.load_ref().unwrap().disp, -32);
    }

    #[test]
    fn error_reports_line_number() {
        let text = "nop\nbogus %rax\n";
        let err = parse_listing(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"), "{err}");
    }

    #[test]
    fn rejects_bad_register() {
        let err = parse_instruction("addq $1, %rfoo").unwrap_err();
        assert!(err.message.contains("unknown register"), "{err}");
    }

    #[test]
    fn rejects_bad_scale() {
        let err = parse_instruction("movsd (%rdx,%rax,3), %xmm0").unwrap_err();
        assert!(err.message.contains("scale"), "{err}");
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = parse_instruction("addq $1").unwrap_err();
        assert!(err.message.contains("expects"), "{err}");
        let err = parse_instruction("ret %rax").unwrap_err();
        assert!(err.message.contains("expects"), "{err}");
    }

    #[test]
    fn rejects_bad_label() {
        let err = parse_listing("foo bar:\n").unwrap_err();
        assert!(err.message.contains("invalid label") || err.message.contains("unknown"), "{err}");
    }

    #[test]
    fn blank_lines_skipped() {
        let lines = parse_listing("\n\n  \nnop\n\n").unwrap();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn absolute_memory_operand() {
        let i = parse_instruction("movq 4096, %rax").unwrap();
        let mem = i.load_ref().unwrap();
        assert_eq!(mem.disp, 4096);
        assert!(mem.base.is_none());
    }

    #[test]
    fn listing_roundtrips_through_writer() {
        use crate::format::write_lines;
        let text = "\
.L6:
\tmovaps %xmm0, (%rsi)
\tmovaps 16(%rsi), %xmm1
\taddq $48, %rsi
\tsubq $12, %rdi
\tjge .L6
";
        let lines = parse_listing(text).unwrap();
        let rendered = write_lines(&lines);
        assert_eq!(rendered, text);
        // And parsing the rendered text yields the same structure.
        assert_eq!(parse_listing(&rendered).unwrap(), lines);
    }
}
