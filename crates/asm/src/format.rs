//! AT&T-syntax text emission.
//!
//! The output matches the paper's figures: mnemonic, a space, operands
//! separated by `", "`, memory operands as `disp(base,index,scale)`,
//! immediates with `$`, labels bare (`jg .L3`).

use crate::inst::Inst;
use std::fmt;

/// Writes one instruction in AT&T syntax (no indentation, no newline).
pub fn write_instruction(inst: &Inst, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{}", inst.mnemonic.name())?;
    for (i, op) in inst.operands.iter().enumerate() {
        if i == 0 {
            write!(f, " {op}")?;
        } else {
            write!(f, ", {op}")?;
        }
    }
    Ok(())
}

/// Formats an instruction to a `String` (convenience over `to_string`).
pub fn instruction_to_string(inst: &Inst) -> String {
    inst.to_string()
}

/// A line of assembly text: label, instruction, directive or comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmLine {
    /// A label definition, e.g. `.L6:` (stored without the colon).
    Label(String),
    /// An instruction.
    Inst(Inst),
    /// An assembler directive, passed through verbatim (e.g. `.globl foo`).
    Directive(String),
    /// A `#`-comment, stored without the marker.
    Comment(String),
}

impl fmt::Display for AsmLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmLine::Label(l) => write!(f, "{l}:"),
            AsmLine::Inst(i) => write!(f, "\t{i}"),
            AsmLine::Directive(d) => write!(f, "\t{d}"),
            AsmLine::Comment(c) => write!(f, "\t#{c}"),
        }
    }
}

/// Renders a sequence of lines as a text file body.
pub fn write_lines(lines: &[AsmLine]) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, MemRef, Mnemonic, Operand, Width};
    use crate::reg::{GprName, Reg};

    #[test]
    fn formats_figure2_instructions() {
        // The naive matmul inner kernel from the paper's Figure 2.
        let rdx = Reg::gpr(GprName::Rdx);
        let rax = Reg::gpr(GprName::Rax);
        let r8 = Reg::gpr(GprName::R8);
        let cases = [
            (
                Inst::binary(
                    Mnemonic::Movsd,
                    Operand::Mem(MemRef::base_index(rdx, rax, 8, 0)),
                    Operand::Reg(Reg::xmm(0)),
                ),
                "movsd (%rdx,%rax,8), %xmm0",
            ),
            (
                Inst::binary(Mnemonic::Add(Width::Q), Operand::Imm(1), Operand::Reg(rax)),
                "addq $1, %rax",
            ),
            (
                Inst::binary(
                    Mnemonic::Mulsd,
                    Operand::Mem(MemRef::base_disp(r8, 0)),
                    Operand::Reg(Reg::xmm(0)),
                ),
                "mulsd (%r8), %xmm0",
            ),
            (
                Inst::binary(Mnemonic::Addsd, Operand::Reg(Reg::xmm(0)), Operand::Reg(Reg::xmm(1))),
                "addsd %xmm0, %xmm1",
            ),
            (Inst::branch(Mnemonic::Jcc(Cond::G), ".L3"), "jg .L3"),
        ];
        for (inst, expected) in cases {
            assert_eq!(inst.to_string(), expected);
        }
    }

    #[test]
    fn formats_figure8_kernel() {
        // The 3×-unrolled (Load|Store)+ output from the paper's Figure 8.
        let rsi = Reg::gpr(GprName::Rsi);
        let rdi = Reg::gpr(GprName::Rdi);
        let lines = vec![
            AsmLine::Label(".L6".into()),
            AsmLine::Comment("Unrolling iterations".into()),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Movaps,
                Operand::Reg(Reg::xmm(0)),
                Operand::Mem(MemRef::base_disp(rsi, 0)),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Movaps,
                Operand::Mem(MemRef::base_disp(rsi, 16)),
                Operand::Reg(Reg::xmm(1)),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Movaps,
                Operand::Reg(Reg::xmm(2)),
                Operand::Mem(MemRef::base_disp(rsi, 32)),
            )),
            AsmLine::Comment("Induction variables".into()),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Add(Width::Q),
                Operand::Imm(48),
                Operand::Reg(rsi),
            )),
            AsmLine::Inst(Inst::binary(
                Mnemonic::Sub(Width::Q),
                Operand::Imm(12),
                Operand::Reg(rdi),
            )),
            AsmLine::Inst(Inst::branch(Mnemonic::Jcc(Cond::Ge), ".L6")),
        ];
        let text = write_lines(&lines);
        let expected = "\
.L6:
\t#Unrolling iterations
\tmovaps %xmm0, 0(%rsi)
\tmovaps 16(%rsi), %xmm1
\tmovaps %xmm2, 32(%rsi)
\t#Induction variables
\taddq $48, %rsi
\tsubq $12, %rdi
\tjge .L6
";
        // Figure 8 prints `0(%rsi)`; our MemRef prints `(%rsi)` for a zero
        // displacement — semantically identical, so compare modulo that.
        assert_eq!(text.replace("movaps %xmm0, (%rsi)", "movaps %xmm0, 0(%rsi)"), expected);
    }

    #[test]
    fn nullary_formats_bare() {
        assert_eq!(Inst::nullary(Mnemonic::Ret).to_string(), "ret");
        assert_eq!(Inst::nullary(Mnemonic::Nop).to_string(), "nop");
    }

    #[test]
    fn negative_immediates() {
        let i = Inst::binary(
            Mnemonic::Add(Width::Q),
            Operand::Imm(-16),
            Operand::Reg(Reg::gpr(GprName::Rsi)),
        );
        assert_eq!(i.to_string(), "addq $-16, %rsi");
    }

    #[test]
    fn line_kinds_format() {
        assert_eq!(AsmLine::Label(".L1".into()).to_string(), ".L1:");
        assert_eq!(AsmLine::Directive(".globl kernel".into()).to_string(), "\t.globl kernel");
        assert_eq!(AsmLine::Comment(" hi".into()).to_string(), "\t# hi");
    }
}
