//! Mnemonics, operands and concrete instructions.

use crate::reg::{ArchReg, Reg};
use std::fmt;

/// Operand-size suffix for integer instructions (`addq`, `cmpl`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit (`b`).
    B,
    /// 16-bit (`w`).
    W,
    /// 32-bit (`l`).
    L,
    /// 64-bit (`q`).
    Q,
}

impl Width {
    /// AT&T suffix letter.
    pub fn suffix(self) -> char {
        match self {
            Width::B => 'b',
            Width::W => 'w',
            Width::L => 'l',
            Width::Q => 'q',
        }
    }

    /// Operand size in bytes.
    pub fn bytes(self) -> u8 {
        match self {
            Width::B => 1,
            Width::W => 2,
            Width::L => 4,
            Width::Q => 8,
        }
    }
}

/// Condition codes for `j<cc>` branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    E,
    Ne,
    G,
    Ge,
    L,
    Le,
    A,
    Ae,
    B,
    Be,
    S,
    Ns,
}

impl Cond {
    /// AT&T condition-code suffix (`jge` → `"ge"`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// Parses a condition-code suffix.
    pub fn from_suffix(s: &str) -> Option<Cond> {
        Some(match s {
            "e" => Cond::E,
            "ne" => Cond::Ne,
            "g" => Cond::G,
            "ge" => Cond::Ge,
            "l" => Cond::L,
            "le" => Cond::Le,
            "a" => Cond::A,
            "ae" => Cond::Ae,
            "b" => Cond::B,
            "be" => Cond::Be,
            "s" => Cond::S,
            "ns" => Cond::Ns,
            _ => return None,
        })
    }
}

/// The instruction mnemonics modelled by MicroTools.
///
/// Integer ALU mnemonics carry their width suffix (matching AT&T spelling,
/// e.g. `Add(Width::Q)` formats as `addq`); SSE mnemonics have fixed names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Mnemonic {
    // Integer ALU.
    Add(Width),
    Sub(Width),
    Imul(Width),
    And(Width),
    Or(Width),
    Xor(Width),
    Cmp(Width),
    Test(Width),
    Mov(Width),
    Lea(Width),
    Inc(Width),
    Dec(Width),
    Shl(Width),
    Shr(Width),
    Neg(Width),

    // SSE data movement. `A` = aligned, `U` = unaligned, `Nt` = streaming
    // (non-temporal).
    Movss,
    Movsd,
    Movaps,
    Movapd,
    Movups,
    Movupd,
    Movdqa,
    Movdqu,
    Movntps,
    Movntpd,

    // SSE arithmetic.
    Addss,
    Addsd,
    Addps,
    Addpd,
    Subss,
    Subsd,
    Subps,
    Subpd,
    Mulss,
    Mulsd,
    Mulps,
    Mulpd,
    Divss,
    Divsd,
    Divps,
    Divpd,
    Xorps,
    Xorpd,
    Sqrtsd,
    Maxsd,
    Minsd,

    // Control flow.
    Jmp,
    Jcc(Cond),
    Ret,
    Nop,
}

impl Mnemonic {
    /// AT&T spelling.
    pub fn name(self) -> String {
        match self {
            Mnemonic::Add(w) => format!("add{}", w.suffix()),
            Mnemonic::Sub(w) => format!("sub{}", w.suffix()),
            Mnemonic::Imul(w) => format!("imul{}", w.suffix()),
            Mnemonic::And(w) => format!("and{}", w.suffix()),
            Mnemonic::Or(w) => format!("or{}", w.suffix()),
            Mnemonic::Xor(w) => format!("xor{}", w.suffix()),
            Mnemonic::Cmp(w) => format!("cmp{}", w.suffix()),
            Mnemonic::Test(w) => format!("test{}", w.suffix()),
            Mnemonic::Mov(w) => format!("mov{}", w.suffix()),
            Mnemonic::Lea(w) => format!("lea{}", w.suffix()),
            Mnemonic::Inc(w) => format!("inc{}", w.suffix()),
            Mnemonic::Dec(w) => format!("dec{}", w.suffix()),
            Mnemonic::Shl(w) => format!("shl{}", w.suffix()),
            Mnemonic::Shr(w) => format!("shr{}", w.suffix()),
            Mnemonic::Neg(w) => format!("neg{}", w.suffix()),
            Mnemonic::Movss => "movss".into(),
            Mnemonic::Movsd => "movsd".into(),
            Mnemonic::Movaps => "movaps".into(),
            Mnemonic::Movapd => "movapd".into(),
            Mnemonic::Movups => "movups".into(),
            Mnemonic::Movupd => "movupd".into(),
            Mnemonic::Movdqa => "movdqa".into(),
            Mnemonic::Movdqu => "movdqu".into(),
            Mnemonic::Movntps => "movntps".into(),
            Mnemonic::Movntpd => "movntpd".into(),
            Mnemonic::Addss => "addss".into(),
            Mnemonic::Addsd => "addsd".into(),
            Mnemonic::Addps => "addps".into(),
            Mnemonic::Addpd => "addpd".into(),
            Mnemonic::Subss => "subss".into(),
            Mnemonic::Subsd => "subsd".into(),
            Mnemonic::Subps => "subps".into(),
            Mnemonic::Subpd => "subpd".into(),
            Mnemonic::Mulss => "mulss".into(),
            Mnemonic::Mulsd => "mulsd".into(),
            Mnemonic::Mulps => "mulps".into(),
            Mnemonic::Mulpd => "mulpd".into(),
            Mnemonic::Divss => "divss".into(),
            Mnemonic::Divsd => "divsd".into(),
            Mnemonic::Divps => "divps".into(),
            Mnemonic::Divpd => "divpd".into(),
            Mnemonic::Xorps => "xorps".into(),
            Mnemonic::Xorpd => "xorpd".into(),
            Mnemonic::Sqrtsd => "sqrtsd".into(),
            Mnemonic::Maxsd => "maxsd".into(),
            Mnemonic::Minsd => "minsd".into(),
            Mnemonic::Jmp => "jmp".into(),
            Mnemonic::Jcc(c) => format!("j{}", c.suffix()),
            Mnemonic::Ret => "ret".into(),
            Mnemonic::Nop => "nop".into(),
        }
    }

    /// Parses an AT&T mnemonic.
    pub fn from_name(name: &str) -> Option<Mnemonic> {
        if !name.is_ascii() {
            return None;
        }
        // Fixed-name mnemonics first (so `movsd` is not parsed as mov+sd).
        let fixed = match name {
            "movss" => Some(Mnemonic::Movss),
            "movsd" => Some(Mnemonic::Movsd),
            "movaps" => Some(Mnemonic::Movaps),
            "movapd" => Some(Mnemonic::Movapd),
            "movups" => Some(Mnemonic::Movups),
            "movupd" => Some(Mnemonic::Movupd),
            "movdqa" => Some(Mnemonic::Movdqa),
            "movdqu" => Some(Mnemonic::Movdqu),
            "movntps" => Some(Mnemonic::Movntps),
            "movntpd" => Some(Mnemonic::Movntpd),
            "addss" => Some(Mnemonic::Addss),
            "addsd" => Some(Mnemonic::Addsd),
            "addps" => Some(Mnemonic::Addps),
            "addpd" => Some(Mnemonic::Addpd),
            "subss" => Some(Mnemonic::Subss),
            "subsd" => Some(Mnemonic::Subsd),
            "subps" => Some(Mnemonic::Subps),
            "subpd" => Some(Mnemonic::Subpd),
            "mulss" => Some(Mnemonic::Mulss),
            "mulsd" => Some(Mnemonic::Mulsd),
            "mulps" => Some(Mnemonic::Mulps),
            "mulpd" => Some(Mnemonic::Mulpd),
            "divss" => Some(Mnemonic::Divss),
            "divsd" => Some(Mnemonic::Divsd),
            "divps" => Some(Mnemonic::Divps),
            "divpd" => Some(Mnemonic::Divpd),
            "xorps" => Some(Mnemonic::Xorps),
            "xorpd" => Some(Mnemonic::Xorpd),
            "sqrtsd" => Some(Mnemonic::Sqrtsd),
            "maxsd" => Some(Mnemonic::Maxsd),
            "minsd" => Some(Mnemonic::Minsd),
            "jmp" => Some(Mnemonic::Jmp),
            "ret" => Some(Mnemonic::Ret),
            "nop" => Some(Mnemonic::Nop),
            _ => None,
        };
        if fixed.is_some() {
            return fixed;
        }
        if let Some(cc) = name.strip_prefix('j').and_then(Cond::from_suffix) {
            return Some(Mnemonic::Jcc(cc));
        }
        // Width-suffixed integer ops.
        let (stem, last) = name.split_at(name.len().checked_sub(1)?);
        let width = match last {
            "b" => Width::B,
            "w" => Width::W,
            "l" => Width::L,
            "q" => Width::Q,
            _ => return None,
        };
        Some(match stem {
            "add" => Mnemonic::Add(width),
            "sub" => Mnemonic::Sub(width),
            "imul" => Mnemonic::Imul(width),
            "and" => Mnemonic::And(width),
            "or" => Mnemonic::Or(width),
            "xor" => Mnemonic::Xor(width),
            "cmp" => Mnemonic::Cmp(width),
            "test" => Mnemonic::Test(width),
            "mov" => Mnemonic::Mov(width),
            "lea" => Mnemonic::Lea(width),
            "inc" => Mnemonic::Inc(width),
            "dec" => Mnemonic::Dec(width),
            "shl" => Mnemonic::Shl(width),
            "shr" => Mnemonic::Shr(width),
            "neg" => Mnemonic::Neg(width),
            _ => return None,
        })
    }

    /// True for `jmp` and `j<cc>`.
    pub fn is_branch(self) -> bool {
        matches!(self, Mnemonic::Jmp | Mnemonic::Jcc(_))
    }
}

/// A memory reference: `disp(base, index, scale)` in AT&T syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemRef {
    /// Base register.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8).
    pub index: Option<(Reg, u8)>,
    /// Constant displacement.
    pub disp: i64,
}

impl MemRef {
    /// `disp(%base)`.
    pub fn base_disp(base: Reg, disp: i64) -> Self {
        MemRef { base: Some(base), index: None, disp }
    }

    /// `disp(%base, %index, scale)`.
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> Self {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        MemRef { base: Some(base), index: Some((index, scale)), disp }
    }

    /// Registers read to form the address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp != 0 || (self.base.is_none() && self.index.is_none()) {
            write!(f, "{}", self.disp)?;
        }
        if self.base.is_some() || self.index.is_some() {
            write!(f, "(")?;
            if let Some(b) = self.base {
                write!(f, "{b}")?;
            }
            if let Some((idx, scale)) = self.index {
                write!(f, ",{idx},{scale}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// An instruction operand. AT&T order: sources first, destination last.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Immediate value (`$42`).
    Imm(i64),
    /// Register.
    Reg(Reg),
    /// Memory reference.
    Mem(MemRef),
    /// Branch-target label (`.L6`).
    Label(String),
}

impl Operand {
    /// Returns the contained register, if any.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the contained memory reference, if any.
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the contained immediate, if any.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Imm(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(i) => write!(f, "${i}"),
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Label(l) => write!(f, "{l}"),
        }
    }
}

/// A concrete instruction: mnemonic plus operands in AT&T order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub mnemonic: Mnemonic,
    /// Operands, sources first, destination last (AT&T convention).
    pub operands: Vec<Operand>,
}

impl Inst {
    /// Builds an instruction.
    pub fn new(mnemonic: Mnemonic, operands: Vec<Operand>) -> Self {
        Inst { mnemonic, operands }
    }

    /// Zero-operand instruction (`ret`, `nop`).
    pub fn nullary(mnemonic: Mnemonic) -> Self {
        Inst { mnemonic, operands: Vec::new() }
    }

    /// Two-operand helper: `mnemonic src, dst`.
    pub fn binary(mnemonic: Mnemonic, src: Operand, dst: Operand) -> Self {
        Inst { mnemonic, operands: vec![src, dst] }
    }

    /// Branch to a label.
    pub fn branch(mnemonic: Mnemonic, label: impl Into<String>) -> Self {
        debug_assert!(mnemonic.is_branch());
        Inst { mnemonic, operands: vec![Operand::Label(label.into())] }
    }

    /// The destination operand (last, by AT&T convention), if any.
    pub fn dst(&self) -> Option<&Operand> {
        if self.mnemonic.is_branch() {
            return None;
        }
        self.operands.last()
    }

    /// The source operands (all but the last for 2+-operand forms).
    pub fn srcs(&self) -> &[Operand] {
        if self.mnemonic.is_branch() {
            return &self.operands;
        }
        match self.operands.len() {
            0 => &[],
            // Single-operand ALU forms (inc/dec/neg) read their operand too.
            1 => &self.operands[..1],
            n => &self.operands[..n - 1],
        }
    }

    /// The memory reference this instruction *loads* from, if any.
    ///
    /// A memory operand in a source position is a load — including the
    /// memory side of load-op instructions such as `mulsd (%r8), %xmm0`.
    /// Streaming/plain stores have their memory operand in the destination
    /// position and are not loads. `lea` computes an address without
    /// touching memory and is never a load.
    pub fn load_ref(&self) -> Option<&MemRef> {
        if matches!(self.mnemonic, Mnemonic::Lea(_)) {
            return None;
        }
        self.srcs().iter().find_map(Operand::as_mem).or_else(|| {
            // Read-modify-write forms (`addq $1, (%rsi)`) also load their
            // destination. `mov`-class and SSE moves only write it.
            if self.reads_dst() {
                self.dst().and_then(Operand::as_mem)
            } else {
                None
            }
        })
    }

    /// The memory reference this instruction *stores* to, if any.
    pub fn store_ref(&self) -> Option<&MemRef> {
        if self.mnemonic.is_branch()
            || matches!(self.mnemonic, Mnemonic::Cmp(_) | Mnemonic::Test(_))
        {
            return None;
        }
        self.dst().and_then(Operand::as_mem)
    }

    /// Whether the destination register/memory is also a source (two-operand
    /// x86 ALU semantics). `mov`-class instructions and `lea` only write.
    pub fn reads_dst(&self) -> bool {
        use Mnemonic::*;
        !matches!(
            self.mnemonic,
            Mov(_)
                | Lea(_)
                | Movss
                | Movsd
                | Movaps
                | Movapd
                | Movups
                | Movupd
                | Movdqa
                | Movdqu
                | Movntps
                | Movntpd
                | Jmp
                | Jcc(_)
                | Ret
                | Nop
        )
    }

    /// Architectural registers read by this instruction, including address
    /// registers of memory operands and flags for conditional branches.
    pub fn regs_read(&self) -> Vec<ArchReg> {
        let mut out = Vec::new();
        for op in self.srcs() {
            match op {
                Operand::Reg(r) => out.push(r.arch_id()),
                Operand::Mem(m) => out.extend(m.regs().map(Reg::arch_id)),
                _ => {}
            }
        }
        if let Some(dst) = self.dst() {
            match dst {
                Operand::Reg(r) if self.reads_dst() => out.push(r.arch_id()),
                Operand::Mem(m) => {
                    // Address registers are always read, even for pure
                    // stores; data at the address only for RMW forms.
                    out.extend(m.regs().map(Reg::arch_id));
                }
                _ => {}
            }
        }
        if matches!(self.mnemonic, Mnemonic::Jcc(_)) {
            out.push(ArchReg::Flags);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Architectural registers written by this instruction, including flags
    /// for ALU/compare operations.
    pub fn regs_written(&self) -> Vec<ArchReg> {
        use Mnemonic::*;
        let mut out = Vec::new();
        if !matches!(self.mnemonic, Cmp(_) | Test(_) | Jmp | Jcc(_) | Ret | Nop) {
            if let Some(Operand::Reg(r)) = self.dst() {
                out.push(r.arch_id());
            }
        }
        if matches!(
            self.mnemonic,
            Add(_)
                | Sub(_)
                | Imul(_)
                | And(_)
                | Or(_)
                | Xor(_)
                | Cmp(_)
                | Test(_)
                | Inc(_)
                | Dec(_)
                | Shl(_)
                | Shr(_)
                | Neg(_)
        ) {
            out.push(ArchReg::Flags);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The branch-target label, for branch instructions.
    pub fn target_label(&self) -> Option<&str> {
        if !self.mnemonic.is_branch() {
            return None;
        }
        match self.operands.first() {
            Some(Operand::Label(l)) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::format::write_instruction(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::GprName;

    fn rsi() -> Reg {
        Reg::gpr(GprName::Rsi)
    }
    fn rdi() -> Reg {
        Reg::gpr(GprName::Rdi)
    }

    #[test]
    fn width_properties() {
        assert_eq!(Width::Q.suffix(), 'q');
        assert_eq!(Width::L.bytes(), 4);
        assert_eq!(Width::B.bytes(), 1);
    }

    #[test]
    fn mnemonic_names_roundtrip() {
        let all = [
            Mnemonic::Add(Width::Q),
            Mnemonic::Sub(Width::L),
            Mnemonic::Cmp(Width::L),
            Mnemonic::Imul(Width::Q),
            Mnemonic::Movss,
            Mnemonic::Movsd,
            Mnemonic::Movaps,
            Mnemonic::Movapd,
            Mnemonic::Movups,
            Mnemonic::Movntps,
            Mnemonic::Mulsd,
            Mnemonic::Addsd,
            Mnemonic::Divpd,
            Mnemonic::Xorps,
            Mnemonic::Jmp,
            Mnemonic::Jcc(Cond::Ge),
            Mnemonic::Jcc(Cond::Ne),
            Mnemonic::Ret,
            Mnemonic::Nop,
            Mnemonic::Lea(Width::Q),
            Mnemonic::Dec(Width::Q),
        ];
        for m in all {
            assert_eq!(Mnemonic::from_name(&m.name()), Some(m), "{}", m.name());
        }
    }

    #[test]
    fn movsd_not_parsed_as_suffixed_mov() {
        // `movsd` must be the SSE move, not `movs` + `d` (nor mov + sd).
        assert_eq!(Mnemonic::from_name("movsd"), Some(Mnemonic::Movsd));
        // `movq`, on the other hand, is the integer mov.
        assert_eq!(Mnemonic::from_name("movq"), Some(Mnemonic::Mov(Width::Q)));
    }

    #[test]
    fn from_name_rejects_unknown() {
        assert_eq!(Mnemonic::from_name("frobq"), None);
        assert_eq!(Mnemonic::from_name(""), None);
        assert_eq!(Mnemonic::from_name("jxx"), None);
    }

    #[test]
    fn memref_display_forms() {
        assert_eq!(MemRef::base_disp(rsi(), 0).to_string(), "(%rsi)");
        assert_eq!(MemRef::base_disp(rsi(), 16).to_string(), "16(%rsi)");
        assert_eq!(MemRef::base_disp(rsi(), -8).to_string(), "-8(%rsi)");
        assert_eq!(
            MemRef::base_index(Reg::gpr(GprName::Rdx), Reg::gpr(GprName::Rax), 8, 0).to_string(),
            "(%rdx,%rax,8)"
        );
        assert_eq!(
            MemRef::base_index(Reg::gpr(GprName::R10), Reg::gpr(GprName::R9), 1, 4).to_string(),
            "4(%r10,%r9,1)"
        );
    }

    #[test]
    fn load_store_classification() {
        // Load: movaps 16(%rsi), %xmm1
        let load = Inst::binary(
            Mnemonic::Movaps,
            Operand::Mem(MemRef::base_disp(rsi(), 16)),
            Operand::Reg(Reg::xmm(1)),
        );
        assert!(load.load_ref().is_some());
        assert!(load.store_ref().is_none());

        // Store: movaps %xmm0, (%rsi)
        let store = Inst::binary(
            Mnemonic::Movaps,
            Operand::Reg(Reg::xmm(0)),
            Operand::Mem(MemRef::base_disp(rsi(), 0)),
        );
        assert!(store.load_ref().is_none());
        assert!(store.store_ref().is_some());

        // Load-op: mulsd (%r8), %xmm0 — a load, not a store.
        let load_op = Inst::binary(
            Mnemonic::Mulsd,
            Operand::Mem(MemRef::base_disp(Reg::gpr(GprName::R8), 0)),
            Operand::Reg(Reg::xmm(0)),
        );
        assert!(load_op.load_ref().is_some());
        assert!(load_op.store_ref().is_none());

        // RMW: addq $1, (%rsi) — both load and store.
        let rmw = Inst::binary(
            Mnemonic::Add(Width::Q),
            Operand::Imm(1),
            Operand::Mem(MemRef::base_disp(rsi(), 0)),
        );
        assert!(rmw.load_ref().is_some());
        assert!(rmw.store_ref().is_some());

        // cmp with memory operand loads but never stores.
        let cmp = Inst::binary(
            Mnemonic::Cmp(Width::Q),
            Operand::Imm(0),
            Operand::Mem(MemRef::base_disp(rsi(), 0)),
        );
        assert!(cmp.load_ref().is_some());
        assert!(cmp.store_ref().is_none());
    }

    #[test]
    fn regs_read_written_alu() {
        // addq $48, %rsi: reads rsi (RMW), writes rsi + flags.
        let i = Inst::binary(Mnemonic::Add(Width::Q), Operand::Imm(48), Operand::Reg(rsi()));
        assert_eq!(i.regs_read(), vec![ArchReg::Gpr(GprName::Rsi)]);
        let written = i.regs_written();
        assert!(written.contains(&ArchReg::Gpr(GprName::Rsi)));
        assert!(written.contains(&ArchReg::Flags));
    }

    #[test]
    fn regs_read_written_sse_move() {
        // movaps %xmm0, (%rsi): reads xmm0 and rsi (address), writes nothing
        // architectural (memory only).
        let i = Inst::binary(
            Mnemonic::Movaps,
            Operand::Reg(Reg::xmm(0)),
            Operand::Mem(MemRef::base_disp(rsi(), 0)),
        );
        let read = i.regs_read();
        assert!(read.contains(&ArchReg::Xmm(0)));
        assert!(read.contains(&ArchReg::Gpr(GprName::Rsi)));
        assert!(i.regs_written().is_empty());
    }

    #[test]
    fn regs_pure_load_writes_only_dst() {
        let i = Inst::binary(
            Mnemonic::Movaps,
            Operand::Mem(MemRef::base_disp(rsi(), 16)),
            Operand::Reg(Reg::xmm(1)),
        );
        assert_eq!(i.regs_read(), vec![ArchReg::Gpr(GprName::Rsi)]);
        assert_eq!(i.regs_written(), vec![ArchReg::Xmm(1)]);
    }

    #[test]
    fn conditional_branch_reads_flags() {
        let i = Inst::branch(Mnemonic::Jcc(Cond::Ge), ".L6");
        assert_eq!(i.regs_read(), vec![ArchReg::Flags]);
        assert!(i.regs_written().is_empty());
        assert_eq!(i.target_label(), Some(".L6"));
        assert!(i.dst().is_none());
    }

    #[test]
    fn cmp_writes_flags_not_operand() {
        let i = Inst::binary(
            Mnemonic::Cmp(Width::L),
            Operand::Reg(Reg::gpr32(GprName::Rax)),
            Operand::Reg(Reg::gpr32(GprName::Rdi)),
        );
        assert_eq!(i.regs_written(), vec![ArchReg::Flags]);
        let read = i.regs_read();
        assert!(read.contains(&ArchReg::Gpr(GprName::Rax)));
        assert!(read.contains(&ArchReg::Gpr(GprName::Rdi)));
    }

    #[test]
    fn lea_reads_address_regs_writes_dst_no_flags() {
        let i = Inst::binary(
            Mnemonic::Lea(Width::Q),
            Operand::Mem(MemRef::base_index(rsi(), rdi(), 4, 8)),
            Operand::Reg(Reg::gpr(GprName::Rax)),
        );
        let read = i.regs_read();
        assert!(read.contains(&ArchReg::Gpr(GprName::Rsi)));
        assert!(read.contains(&ArchReg::Gpr(GprName::Rdi)));
        assert_eq!(i.regs_written(), vec![ArchReg::Gpr(GprName::Rax)]);
        assert!(i.load_ref().is_none(), "lea computes an address, it does not load");
    }

    #[test]
    fn mov_does_not_read_dst() {
        let i = Inst::binary(Mnemonic::Mov(Width::Q), Operand::Reg(rsi()), Operand::Reg(rdi()));
        assert_eq!(i.regs_read(), vec![ArchReg::Gpr(GprName::Rsi)]);
        assert_eq!(i.regs_written(), vec![ArchReg::Gpr(GprName::Rdi)]);
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Imm(5).as_imm(), Some(5));
        assert_eq!(Operand::Reg(rsi()).as_reg(), Some(rsi()));
        assert!(Operand::Label(".L1".into()).as_mem().is_none());
    }
}
