//! # mc-asm — x86-64 instruction subset model
//!
//! MicroCreator emits AT&T-syntax x86-64 assembly (paper Figures 2 and 8) and
//! MicroLauncher consumes it. This crate is the shared vocabulary between the
//! generator, the launcher, the simulator and the interpreter:
//!
//! * [`reg`] — general-purpose and XMM registers with their width views and
//!   AT&T names (`%rsi`, `%eax`, `%xmm0`, …),
//! * [`inst`] — mnemonics, operands and concrete instructions,
//! * [`attrs`] — static per-instruction attributes (memory-move byte counts,
//!   vector-ness, execution class, registers read/written) used by the
//!   timing model and the dependency analysis,
//! * [`mod@format`] — AT&T text emission,
//! * [`parse`] — AT&T text parsing (the launcher's "assembler").
//!
//! The subset covers everything the paper's kernels use — SSE moves
//! (`movss`/`movsd`/`movaps`/`movapd` plus unaligned and streaming forms),
//! SSE arithmetic, integer ALU ops with width suffixes, `lea`, compares,
//! conditional branches — and formats/parses losslessly:
//!
//! ```
//! use mc_asm::parse::parse_instruction;
//! let i = parse_instruction("movsd (%rdx,%rax,8), %xmm0").unwrap();
//! assert_eq!(i.to_string(), "movsd (%rdx,%rax,8), %xmm0");
//! assert!(i.load_ref().is_some());
//! ```

pub mod attrs;
pub mod decode;
pub mod encode;
pub mod format;
pub mod inst;
pub mod parse;
pub mod reg;

pub use attrs::{InstClass, MemMoveInfo};
pub use decode::{decode_instruction, decode_listing};
pub use encode::{encode_instruction, encode_program, EncodedProgram};
pub use inst::{Cond, Inst, MemRef, Mnemonic, Operand, Width};
pub use reg::{Gpr, GprName, Reg};
