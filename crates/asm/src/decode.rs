//! x86-64 machine-code decoder for the modelled subset — the other half of
//! the object-file input path (§4.1): raw `.text` bytes back into
//! [`Inst`] values and labelled listings.
//!
//! The decoder understands exactly what [`crate::encode`] emits (which is
//! what GNU `as` emits for the subset), so `decode(encode(p)) == p` up to
//! label naming — property-tested in `tests/encode_roundtrip.rs`.

use crate::format::AsmLine;
use crate::inst::{Cond, Inst, MemRef, Mnemonic, Operand, Width};
use crate::reg::{Gpr, GprName, Reg};
use std::fmt;

/// Decoding failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset of the undecodable byte.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// A decoded instruction: the instruction, its length in bytes, and — for
/// branches — the absolute target offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoded {
    /// The instruction (branches carry a placeholder label).
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: usize,
    /// Absolute byte offset a branch targets.
    pub branch_target: Option<i64>,
}

/// Explicit number → name table (inverse of the encoder's).
fn gpr_name(n: u8) -> GprName {
    match n & 15 {
        0 => GprName::Rax,
        1 => GprName::Rcx,
        2 => GprName::Rdx,
        3 => GprName::Rbx,
        4 => GprName::Rsp,
        5 => GprName::Rbp,
        6 => GprName::Rsi,
        7 => GprName::Rdi,
        8 => GprName::R8,
        9 => GprName::R9,
        10 => GprName::R10,
        11 => GprName::R11,
        12 => GprName::R12,
        13 => GprName::R13,
        14 => GprName::R14,
        _ => GprName::R15,
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    start: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError { offset: self.start, message: message.into() }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("truncated instruction"))?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i16(&mut self) -> Result<i16, DecodeError> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(i16::from_le_bytes([lo, hi]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for slot in &mut b {
            *slot = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }
}

struct Prefixes {
    rex: u8,
    has_rex: bool,
    p66: bool,
    sse: Option<u8>,
}

impl Prefixes {
    fn w(&self) -> bool {
        self.rex & 0x08 != 0
    }
    fn r(&self) -> u8 {
        (self.rex & 0x04) << 1
    }
    fn x(&self) -> u8 {
        (self.rex & 0x02) << 2
    }
    fn b(&self) -> u8 {
        (self.rex & 0x01) << 3
    }
    fn width(&self) -> Width {
        if self.w() {
            Width::Q
        } else if self.p66 {
            Width::W
        } else {
            Width::L
        }
    }
}

/// ModRM with resolved operands.
enum RmOperand {
    Reg(u8),
    Mem(MemRef),
}

fn decode_modrm(c: &mut Cursor, p: &Prefixes) -> Result<(u8, RmOperand), DecodeError> {
    let modrm = c.u8()?;
    let mode = modrm >> 6;
    let reg = ((modrm >> 3) & 7) | p.r();
    let rm_low = modrm & 7;
    if mode == 0b11 {
        return Ok((reg, RmOperand::Reg(rm_low | p.b())));
    }
    let mut base: Option<Reg> = None;
    let mut index: Option<(Reg, u8)> = None;
    if rm_low == 0b100 {
        // SIB byte.
        let sib = c.u8()?;
        let scale = 1u8 << (sib >> 6);
        let idx = ((sib >> 3) & 7) | p.x();
        let base_low = sib & 7;
        if idx != 4 {
            index = Some((Reg::gpr(gpr_name(idx)), scale));
        }
        if base_low == 5 && mode == 0b00 {
            // No base: disp32 follows.
            let disp = i64::from(c.i32()?);
            return Ok((reg, RmOperand::Mem(MemRef { base, index, disp })));
        }
        base = Some(Reg::gpr(gpr_name(base_low | p.b())));
    } else if rm_low == 0b101 && mode == 0b00 {
        // RIP-relative — not produced by the encoder.
        return Err(c.err("RIP-relative addressing unsupported"));
    } else {
        base = Some(Reg::gpr(gpr_name(rm_low | p.b())));
    }
    let disp = match mode {
        0b00 => 0,
        0b01 => i64::from(c.i8()?),
        0b10 => i64::from(c.i32()?),
        _ => unreachable!("register mode handled above"),
    };
    Ok((reg, RmOperand::Mem(MemRef { base, index, disp })))
}

fn rm_to_operand(rm: RmOperand, xmm: bool, width: Width) -> Operand {
    match rm {
        RmOperand::Reg(n) if xmm => Operand::Reg(Reg::Xmm(n)),
        RmOperand::Reg(n) => Operand::Reg(Reg::Gpr(Gpr { name: gpr_name(n), width })),
        RmOperand::Mem(m) => Operand::Mem(m),
    }
}

fn gpr_operand(n: u8, width: Width) -> Operand {
    Operand::Reg(Reg::Gpr(Gpr { name: gpr_name(n), width }))
}

fn cond_from_number(n: u8) -> Option<Cond> {
    Some(match n {
        0x2 => Cond::B,
        0x3 => Cond::Ae,
        0x4 => Cond::E,
        0x5 => Cond::Ne,
        0x6 => Cond::Be,
        0x7 => Cond::A,
        0x8 => Cond::S,
        0x9 => Cond::Ns,
        0xC => Cond::L,
        0xD => Cond::Ge,
        0xE => Cond::Le,
        0xF => Cond::G,
        _ => return None,
    })
}

/// Placeholder label for a decoded branch (replaced by
/// [`decode_listing`]).
pub const RAW_TARGET_LABEL: &str = ".Ltarget";

/// Decodes one instruction at `offset`.
pub fn decode_instruction(bytes: &[u8], offset: usize) -> Result<Decoded, DecodeError> {
    let mut c = Cursor { bytes, pos: offset, start: offset };
    let mut p = Prefixes { rex: 0, has_rex: false, p66: false, sse: None };

    // Legacy + REX prefixes (the subset's order: F3/F2/66 then REX).
    loop {
        match c.peek() {
            Some(0xF3) | Some(0xF2) if p.sse.is_none() => {
                p.sse = Some(c.u8()?);
            }
            Some(0x66) if !p.p66 => {
                c.u8()?;
                p.p66 = true;
            }
            Some(b) if (0x40..=0x4F).contains(&b) && !p.has_rex => {
                p.rex = c.u8()? & 0x0F;
                p.has_rex = true;
            }
            _ => break,
        }
    }

    let opcode = c.u8()?;
    let done = |c: &Cursor, inst: Inst| -> Result<Decoded, DecodeError> {
        Ok(Decoded { inst, len: c.pos - offset, branch_target: None })
    };

    // Width for integer forms; byte opcodes handle Width::B explicitly.
    let w = p.width();

    match opcode {
        0x90 => return done(&c, Inst::nullary(Mnemonic::Nop)),
        0xC3 => return done(&c, Inst::nullary(Mnemonic::Ret)),
        0x0F => {
            let op2 = c.u8()?;
            // Conditional branches.
            if (0x80..=0x8F).contains(&op2) {
                let cond = cond_from_number(op2 - 0x80)
                    .ok_or_else(|| c.err(format!("condition {op2:#x}")))?;
                let rel = i64::from(c.i32()?);
                let target = (c.pos as i64) + rel;
                return Ok(Decoded {
                    inst: Inst::branch(Mnemonic::Jcc(cond), RAW_TARGET_LABEL),
                    len: c.pos - offset,
                    branch_target: Some(target),
                });
            }
            // imul r, r/m.
            if op2 == 0xAF {
                let (reg, rm) = decode_modrm(&mut c, &p)?;
                return done(
                    &c,
                    Inst::binary(
                        Mnemonic::Imul(w),
                        rm_to_operand(rm, false, w),
                        gpr_operand(reg, w),
                    ),
                );
            }
            // SSE opcodes.
            let sse_w =
                |mnemonic: Mnemonic, c: &mut Cursor, load: bool| -> Result<Decoded, DecodeError> {
                    let (reg, rm) = decode_modrm(c, &p)?;
                    let xmm = Operand::Reg(Reg::Xmm(reg));
                    let other = rm_to_operand(rm, true, w);
                    let inst = if load {
                        Inst::binary(mnemonic, other, xmm)
                    } else {
                        Inst::binary(mnemonic, xmm, other)
                    };
                    Ok(Decoded { inst, len: c.pos - offset, branch_target: None })
                };
            let (mnemonic, load): (Mnemonic, bool) = match (op2, p.sse, p.p66) {
                (0x10, Some(0xF3), _) => (Mnemonic::Movss, true),
                (0x11, Some(0xF3), _) => (Mnemonic::Movss, false),
                (0x10, Some(0xF2), _) => (Mnemonic::Movsd, true),
                (0x11, Some(0xF2), _) => (Mnemonic::Movsd, false),
                (0x10, None, false) => (Mnemonic::Movups, true),
                (0x11, None, false) => (Mnemonic::Movups, false),
                (0x10, None, true) => (Mnemonic::Movupd, true),
                (0x11, None, true) => (Mnemonic::Movupd, false),
                (0x28, None, false) => (Mnemonic::Movaps, true),
                (0x29, None, false) => (Mnemonic::Movaps, false),
                (0x28, None, true) => (Mnemonic::Movapd, true),
                (0x29, None, true) => (Mnemonic::Movapd, false),
                (0x6F, Some(0xF3), _) => (Mnemonic::Movdqu, true),
                (0x7F, Some(0xF3), _) => (Mnemonic::Movdqu, false),
                (0x6F, None, true) => (Mnemonic::Movdqa, true),
                (0x7F, None, true) => (Mnemonic::Movdqa, false),
                (0x2B, None, false) => (Mnemonic::Movntps, false),
                (0x2B, None, true) => (Mnemonic::Movntpd, false),
                (0x58, Some(0xF3), _) => (Mnemonic::Addss, true),
                (0x58, Some(0xF2), _) => (Mnemonic::Addsd, true),
                (0x58, None, false) => (Mnemonic::Addps, true),
                (0x58, None, true) => (Mnemonic::Addpd, true),
                (0x59, Some(0xF3), _) => (Mnemonic::Mulss, true),
                (0x59, Some(0xF2), _) => (Mnemonic::Mulsd, true),
                (0x59, None, false) => (Mnemonic::Mulps, true),
                (0x59, None, true) => (Mnemonic::Mulpd, true),
                (0x5C, Some(0xF3), _) => (Mnemonic::Subss, true),
                (0x5C, Some(0xF2), _) => (Mnemonic::Subsd, true),
                (0x5C, None, false) => (Mnemonic::Subps, true),
                (0x5C, None, true) => (Mnemonic::Subpd, true),
                (0x5E, Some(0xF3), _) => (Mnemonic::Divss, true),
                (0x5E, Some(0xF2), _) => (Mnemonic::Divsd, true),
                (0x5E, None, false) => (Mnemonic::Divps, true),
                (0x5E, None, true) => (Mnemonic::Divpd, true),
                (0x57, None, false) => (Mnemonic::Xorps, true),
                (0x57, None, true) => (Mnemonic::Xorpd, true),
                (0x51, Some(0xF2), _) => (Mnemonic::Sqrtsd, true),
                (0x5F, Some(0xF2), _) => (Mnemonic::Maxsd, true),
                (0x5D, Some(0xF2), _) => (Mnemonic::Minsd, true),
                _ => return Err(c.err(format!("0F {op2:02x} unsupported"))),
            };
            return sse_w(mnemonic, &mut c, load);
        }
        // Short conditional branches.
        b if (0x70..=0x7F).contains(&b) => {
            let cond = cond_from_number(b - 0x70).ok_or_else(|| c.err(format!("cond {b:#x}")))?;
            let rel = i64::from(c.i8()?);
            let target = (c.pos as i64) + rel;
            return Ok(Decoded {
                inst: Inst::branch(Mnemonic::Jcc(cond), RAW_TARGET_LABEL),
                len: c.pos - offset,
                branch_target: Some(target),
            });
        }
        0xEB => {
            let rel = i64::from(c.i8()?);
            let target = (c.pos as i64) + rel;
            return Ok(Decoded {
                inst: Inst::branch(Mnemonic::Jmp, RAW_TARGET_LABEL),
                len: c.pos - offset,
                branch_target: Some(target),
            });
        }
        0xE9 => {
            let rel = i64::from(c.i32()?);
            let target = (c.pos as i64) + rel;
            return Ok(Decoded {
                inst: Inst::branch(Mnemonic::Jmp, RAW_TARGET_LABEL),
                len: c.pos - offset,
                branch_target: Some(target),
            });
        }
        _ => {}
    }

    // Integer ALU groups (byte and word/dword/qword forms interleave).
    let alu_mnemonic = |digit: u8, w: Width| -> Option<Mnemonic> {
        Some(match digit {
            0 => Mnemonic::Add(w),
            1 => Mnemonic::Or(w),
            4 => Mnemonic::And(w),
            5 => Mnemonic::Sub(w),
            6 => Mnemonic::Xor(w),
            7 => Mnemonic::Cmp(w),
            _ => return None,
        })
    };
    // op r/m, r (store) and op r, r/m (load) opcode pairs by digit.
    for digit in [0u8, 1, 4, 5, 6, 7] {
        let base = digit * 8;
        let m_b = alu_mnemonic(digit, Width::B).expect("alu digit");
        let m_w = alu_mnemonic(digit, w).expect("alu digit");
        match opcode {
            b if b == base => {
                // byte store form.
                let (reg, rm) = decode_modrm(&mut c, &p)?;
                return done(
                    &c,
                    Inst::binary(
                        m_b,
                        gpr_operand(reg, Width::B),
                        rm_to_operand(rm, false, Width::B),
                    ),
                );
            }
            b if b == base + 1 => {
                let (reg, rm) = decode_modrm(&mut c, &p)?;
                return done(
                    &c,
                    Inst::binary(m_w, gpr_operand(reg, w), rm_to_operand(rm, false, w)),
                );
            }
            b if b == base + 2 => {
                let (reg, rm) = decode_modrm(&mut c, &p)?;
                return done(
                    &c,
                    Inst::binary(
                        m_b,
                        rm_to_operand(rm, false, Width::B),
                        gpr_operand(reg, Width::B),
                    ),
                );
            }
            b if b == base + 3 => {
                let (reg, rm) = decode_modrm(&mut c, &p)?;
                return done(
                    &c,
                    Inst::binary(m_w, rm_to_operand(rm, false, w), gpr_operand(reg, w)),
                );
            }
            b if b == base + 4 => {
                // AL accumulator short form.
                let v = i64::from(c.i8()?);
                return done(&c, Inst::binary(m_b, Operand::Imm(v), gpr_operand(0, Width::B)));
            }
            b if b == base + 5 => {
                let v = if p.p66 { i64::from(c.i16()?) } else { i64::from(c.i32()?) };
                return done(&c, Inst::binary(m_w, Operand::Imm(v), gpr_operand(0, w)));
            }
            _ => {}
        }
    }

    match opcode {
        // Group-1 immediates.
        0x80 | 0x81 | 0x83 => {
            let width = if opcode == 0x80 { Width::B } else { w };
            let (digit, rm) = decode_modrm(&mut c, &p)?;
            let mnemonic =
                alu_mnemonic(digit, width).ok_or_else(|| c.err(format!("group1 /{digit}")))?;
            let v = match opcode {
                0x80 | 0x83 => i64::from(c.i8()?),
                _ if p.p66 => i64::from(c.i16()?),
                _ => i64::from(c.i32()?),
            };
            done(&c, Inst::binary(mnemonic, Operand::Imm(v), rm_to_operand(rm, false, width)))
        }
        // test.
        0x84 | 0x85 => {
            let width = if opcode == 0x84 { Width::B } else { w };
            let (reg, rm) = decode_modrm(&mut c, &p)?;
            done(
                &c,
                Inst::binary(
                    Mnemonic::Test(width),
                    gpr_operand(reg, width),
                    rm_to_operand(rm, false, width),
                ),
            )
        }
        0xA8 | 0xA9 => {
            let width = if opcode == 0xA8 { Width::B } else { w };
            let v = match width {
                Width::B => i64::from(c.i8()?),
                Width::W => i64::from(c.i16()?),
                _ => i64::from(c.i32()?),
            };
            done(&c, Inst::binary(Mnemonic::Test(width), Operand::Imm(v), gpr_operand(0, width)))
        }
        // mov.
        0x88 | 0x89 => {
            let width = if opcode == 0x88 { Width::B } else { w };
            let (reg, rm) = decode_modrm(&mut c, &p)?;
            done(
                &c,
                Inst::binary(
                    Mnemonic::Mov(width),
                    gpr_operand(reg, width),
                    rm_to_operand(rm, false, width),
                ),
            )
        }
        0x8A | 0x8B => {
            let width = if opcode == 0x8A { Width::B } else { w };
            let (reg, rm) = decode_modrm(&mut c, &p)?;
            done(
                &c,
                Inst::binary(
                    Mnemonic::Mov(width),
                    rm_to_operand(rm, false, width),
                    gpr_operand(reg, width),
                ),
            )
        }
        0x8D => {
            let (reg, rm) = decode_modrm(&mut c, &p)?;
            let RmOperand::Mem(mem) = rm else {
                return Err(c.err("lea with register operand"));
            };
            done(&c, Inst::binary(Mnemonic::Lea(w), Operand::Mem(mem), gpr_operand(reg, w)))
        }
        b if (0xB0..=0xB7).contains(&b) => {
            let v = i64::from(c.i8()?);
            done(
                &c,
                Inst::binary(
                    Mnemonic::Mov(Width::B),
                    Operand::Imm(v),
                    gpr_operand((b - 0xB0) | p.b(), Width::B),
                ),
            )
        }
        b if (0xB8..=0xBF).contains(&b) => {
            let v = if p.p66 { i64::from(c.i16()?) } else { i64::from(c.i32()?) };
            let width = if p.p66 { Width::W } else { Width::L };
            done(
                &c,
                Inst::binary(
                    Mnemonic::Mov(width),
                    Operand::Imm(v),
                    gpr_operand((b - 0xB8) | p.b(), width),
                ),
            )
        }
        0xC6 | 0xC7 => {
            let width = if opcode == 0xC6 { Width::B } else { w };
            let (digit, rm) = decode_modrm(&mut c, &p)?;
            if digit != 0 {
                return Err(c.err(format!("C6/C7 /{digit}")));
            }
            let v = match width {
                Width::B => i64::from(c.i8()?),
                Width::W => i64::from(c.i16()?),
                _ => i64::from(c.i32()?),
            };
            done(
                &c,
                Inst::binary(
                    Mnemonic::Mov(width),
                    Operand::Imm(v),
                    rm_to_operand(rm, false, width),
                ),
            )
        }
        // inc/dec.
        0xFE | 0xFF => {
            let width = if opcode == 0xFE { Width::B } else { w };
            let (digit, rm) = decode_modrm(&mut c, &p)?;
            let mnemonic = match digit {
                0 => Mnemonic::Inc(width),
                1 => Mnemonic::Dec(width),
                d => return Err(c.err(format!("FE/FF /{d}"))),
            };
            done(&c, Inst::new(mnemonic, vec![rm_to_operand(rm, false, width)]))
        }
        // shifts.
        0xC0 | 0xC1 | 0xD0 | 0xD1 => {
            let width = if opcode == 0xC0 || opcode == 0xD0 { Width::B } else { w };
            let (digit, rm) = decode_modrm(&mut c, &p)?;
            let amount = if opcode == 0xC0 || opcode == 0xC1 { i64::from(c.i8()?) } else { 1 };
            let mnemonic = match digit {
                4 => Mnemonic::Shl(width),
                5 => Mnemonic::Shr(width),
                d => return Err(c.err(format!("shift /{d}"))),
            };
            done(&c, Inst::binary(mnemonic, Operand::Imm(amount), rm_to_operand(rm, false, width)))
        }
        // neg / test-imm group.
        0xF6 | 0xF7 => {
            let width = if opcode == 0xF6 { Width::B } else { w };
            let (digit, rm) = decode_modrm(&mut c, &p)?;
            match digit {
                0 => {
                    let v = match width {
                        Width::B => i64::from(c.i8()?),
                        Width::W => i64::from(c.i16()?),
                        _ => i64::from(c.i32()?),
                    };
                    done(
                        &c,
                        Inst::binary(
                            Mnemonic::Test(width),
                            Operand::Imm(v),
                            rm_to_operand(rm, false, width),
                        ),
                    )
                }
                3 => {
                    done(&c, Inst::new(Mnemonic::Neg(width), vec![rm_to_operand(rm, false, width)]))
                }
                d => Err(c.err(format!("F6/F7 /{d}"))),
            }
        }
        other => Err(c.err(format!("opcode {other:#04x} unsupported"))),
    }
}

/// Decodes a whole `.text` stream into a labelled listing: branch targets
/// become `.L<n>` labels in offset order.
pub fn decode_listing(bytes: &[u8]) -> Result<Vec<AsmLine>, DecodeError> {
    let mut decoded: Vec<(usize, Decoded)> = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let d = decode_instruction(bytes, offset)?;
        let len = d.len;
        decoded.push((offset, d));
        offset += len;
    }
    // Collect branch targets and assign labels in offset order.
    let mut targets: Vec<i64> = decoded.iter().filter_map(|(_, d)| d.branch_target).collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |t: i64| -> String {
        let idx = targets.binary_search(&t).expect("collected above");
        format!(".L{idx}")
    };
    let mut lines = Vec::with_capacity(decoded.len() + targets.len());
    for (off, d) in decoded {
        if targets.binary_search(&(off as i64)).is_ok() {
            lines.push(AsmLine::Label(label_of(off as i64)));
        }
        let mut inst = d.inst;
        if let Some(t) = d.branch_target {
            inst.operands = vec![Operand::Label(label_of(t))];
        }
        lines.push(AsmLine::Inst(inst));
    }
    // A target at the very end of the stream (fall-through label).
    if targets.binary_search(&(bytes.len() as i64)).is_ok() {
        lines.push(AsmLine::Label(label_of(bytes.len() as i64)));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_instruction, encode_program};
    use crate::parse::{parse_instruction, parse_listing};

    fn roundtrip(text: &str) {
        let inst = parse_instruction(text).unwrap();
        let bytes = encode_instruction(&inst).unwrap();
        let decoded =
            decode_instruction(&bytes, 0).unwrap_or_else(|e| panic!("{text} [{bytes:02x?}]: {e}"));
        assert_eq!(decoded.len, bytes.len(), "{text}");
        assert_eq!(decoded.inst.to_string(), text, "bytes {bytes:02x?}");
    }

    #[test]
    fn instruction_roundtrips() {
        for text in [
            "nop",
            "ret",
            "addq $1, %rax",
            "addq $48, %rsi",
            "addq $1000, %rsi",
            "subq $12, %rdi",
            "addl $1, %ecx",
            "addq %rax, %rbx",
            "addq (%rsi), %rax",
            "addq %rax, (%rsi)",
            "cmpl %eax, %edi",
            "movaps (%rsi), %xmm0",
            "movaps %xmm0, (%rsi)",
            "movaps 16(%rsi), %xmm1",
            "movss (%rdx,%rax,8), %xmm3",
            "movsd %xmm1, (%r10,%r9,1)",
            "mulsd (%r8), %xmm0",
            "addsd %xmm0, %xmm1",
            "movntps %xmm8, 64(%r11)",
            "movq %rsi, %rdi",
            "movq (%rsp), %rax",
            "movq (%rbp), %rax",
            "movq (%r13), %rax",
            "movq $7, %rax",
            "movl $100000, %edx",
            "leaq 8(%rsi,%rdi,4), %rax",
            "incq %rax",
            "decq %rcx",
            "negq %rsi",
            "shlq $4, %rax",
            "shrq $1, %rbx",
            "imulq %rbx, %rax",
            "testq %rax, %rax",
            "xorps %xmm2, %xmm2",
            "movdqu (%rsi), %xmm14",
        ] {
            roundtrip(text);
        }
    }

    #[test]
    fn figure8_listing_roundtrips_with_labels() {
        let text = "\
.L6:
\tmovaps %xmm0, (%rsi)
\tmovaps 16(%rsi), %xmm1
\tmovaps %xmm2, 32(%rsi)
\taddq $48, %rsi
\tsubq $12, %rdi
\tjge .L6
";
        let lines = parse_listing(text).unwrap();
        let encoded = encode_program(&lines).unwrap();
        let decoded = decode_listing(&encoded.bytes).unwrap();
        // Same instruction sequence; the label renames to .L0.
        let rendered = crate::format::write_lines(&decoded);
        assert_eq!(rendered, text.replace(".L6", ".L0"));
        // Re-encoding the decoded listing reproduces the exact bytes.
        let reencoded = encode_program(&decoded).unwrap();
        assert_eq!(reencoded.bytes, encoded.bytes);
    }

    #[test]
    fn forward_branches_label_correctly() {
        let text = "\tjmp .Lend\n\tnop\n\tnop\n.Lend:\n\tret\n";
        let lines = parse_listing(text).unwrap();
        let encoded = encode_program(&lines).unwrap();
        let decoded = decode_listing(&encoded.bytes).unwrap();
        let rendered = crate::format::write_lines(&decoded);
        assert_eq!(rendered, "\tjmp .L0\n\tnop\n\tnop\n.L0:\n\tret\n");
    }

    #[test]
    fn garbage_bytes_error_with_offset() {
        let err = decode_listing(&[0x90, 0x0F, 0x05]).unwrap_err(); // syscall
        assert_eq!(err.offset, 1);
        assert!(err.message.contains("unsupported"), "{err}");
    }

    #[test]
    fn truncated_stream_errors() {
        let full = encode_instruction(&parse_instruction("addq $1000, %rsi").unwrap()).unwrap();
        let err = decode_instruction(&full[..3], 0).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
    }
}
