//! The paper's §2 motivation end-to-end: tuning a matrix multiply.
//!
//! Three studies on the simulated dual-socket Nehalem X5650:
//! 1. size sweep (Figure 3) — where does the working set fall out of cache?
//! 2. alignment sweep at 200² (Figure 4) — does alignment matter here?
//! 3. unroll sweep (Figure 5) — how much does unrolling buy?
//!
//! Run with: `cargo run --example matmul_tuning`

use microtools::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let creator = MicroCreator::new();

    // --- 1. Size sweep (Figure 3) --------------------------------------
    println!("── matrix size sweep (Figure 3) ──");
    let mut size_points = Vec::new();
    for size in [50u64, 100, 200, 400, 600, 800, 1200] {
        let desc = matmul_inner(size);
        let program = creator
            .generate(&desc)?
            .programs
            .into_iter()
            .find(|p| p.meta.unroll == 1)
            .expect("unroll-1 variant");
        let opts = LauncherOptions {
            vector_bytes: 3 * size * size * 8 / 2, // three size² matrices
            trip_count: size,
            verify: false,
            ..LauncherOptions::default()
        };
        let report = MicroLauncher::new(opts).run(&KernelInput::program(program))?;
        println!(
            "  size {size:>5}: {:>6.2} cycles/iteration ({} resident)",
            report.cycles_per_iteration,
            report.residence.map_or("?", Level::name),
        );
        size_points.push((size as f64, report.cycles_per_iteration));
    }
    println!("{}", render_chart(&[Series::new("matmul", size_points)], 64, 12, Scale::Linear));

    // --- 2. Alignment sweep at 200² (Figure 4) -------------------------
    println!("── alignment sweep at 200² (Figure 4) ──");
    let desc = matmul_inner(200);
    let program = creator
        .generate(&desc)?
        .programs
        .into_iter()
        .find(|p| p.meta.unroll == 1)
        .expect("unroll-1 variant");
    let opts = LauncherOptions {
        residence: Some(Level::L2), // 200² tiles fit in the cache (§2)
        trip_count: 200,
        ..LauncherOptions::default()
    };
    let points = microtools::launcher::sweeps::alignment_sweep(&opts, &program, 512, 3584)?;
    let (mut min, mut max) = (f64::MAX, f64::MIN);
    for p in &points {
        min = min.min(p.cycles_per_iteration);
        max = max.max(p.cycles_per_iteration);
    }
    println!(
        "  {} configurations: {:.3} – {:.3} cycles/iteration (spread {:.2}%)",
        points.len(),
        min,
        max,
        (max - min) / min * 100.0
    );
    println!("  → alignment does not matter for this kernel (paper: <3%)\n");

    // --- 3. Unroll sweep (Figure 5) ------------------------------------
    println!("── unroll sweep at 200² (Figure 5) ──");
    let programs = microtools::launcher::sweeps::programs_by_unroll(&matmul_inner(200))?;
    let mut unroll_points = Vec::new();
    for program in &programs {
        let opts = LauncherOptions {
            residence: Some(Level::L2),
            trip_count: 200,
            verify: false,
            ..LauncherOptions::default()
        };
        let report = MicroLauncher::new(opts).run(&KernelInput::program(program.clone()))?;
        let per_element =
            report.cycles_per_iteration / program.elements_per_iteration.max(1) as f64;
        println!("  unroll {}: {per_element:.3} cycles/element", program.meta.unroll);
        unroll_points.push((f64::from(program.meta.unroll), per_element));
    }
    let gain = (unroll_points[0].1 - unroll_points[7].1) / unroll_points[0].1 * 100.0;
    println!("  → unrolling 8× gains {gain:.1}% (paper: ~9%, predicted 8.2%)");
    println!(
        "  → recommendation: use compiler unroll hints or rewrite the kernel in assembly (§2)"
    );
    Ok(())
}
