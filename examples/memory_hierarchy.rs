//! Memory-hierarchy characterization (Figures 11–13): cycles per load for
//! `movaps` and `movss` streams across unroll factors and cache levels,
//! plus the frequency study separating core from uncore.
//!
//! Run with: `cargo run --example memory_hierarchy`

use microtools::launcher::sweeps::{frequency_sweep, programs_by_unroll, unroll_by_level_sweep};
use microtools::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = LauncherOptions::default();

    for (mnemonic, figure) in [(Mnemonic::Movaps, "Figure 11"), (Mnemonic::Movss, "Figure 12")] {
        println!("── {figure}: cycles per {} load ──", mnemonic.name());
        let desc = load_stream(mnemonic, 1, 8);
        let series = unroll_by_level_sweep(&opts, &desc, &Level::ALL, true)?;
        println!("{}", render_chart(&series, 64, 14, Scale::Linear));
        for s in &series {
            let u8 = s.points.last().expect("8 points").1;
            println!("  {:4}: {:.2} cycles/load at unroll 8", s.label, u8);
        }
        println!();
    }

    println!("── Figure 13: frequency sweep (movaps ×8) ──");
    let program = programs_by_unroll(&load_stream(Mnemonic::Movaps, 8, 8))?.remove(0);
    let series = frequency_sweep(&opts, &program, &Level::ALL)?;
    println!("{}", render_chart(&series, 64, 14, Scale::Linear));
    for s in &series {
        let slow = s.points.first().expect("points").1;
        let fast = s.points.last().expect("points").1;
        println!(
            "  {:4}: {:.2} cycles/load at 1.60 GHz vs {:.2} at 2.67 GHz ({})",
            s.label,
            slow,
            fast,
            if slow / fast > 1.3 { "core-clock domain" } else { "uncore domain — flat" }
        );
    }
    println!(
        "\n→ on-core frequency changes move L1/L2 but not L3/RAM — the paper's §5.1 observation"
    );
    Ok(())
}
