//! Fork-mode saturation study (Figure 14) plus the OpenMP comparison
//! (Figures 17/18): how many cores can stream from memory before the
//! sockets run out of bandwidth, and when parallel setup overhead eats the
//! unrolling gains.
//!
//! Run with: `cargo run --example parallel_saturation`

use microtools::launcher::sweeps::{core_sweep, openmp_comparison, programs_by_unroll};
use microtools::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 14: fork-mode saturation on the dual-socket X5650 ------
    println!("── Figure 14: forked movaps streams from RAM (X5650) ──");
    let opts = LauncherOptions {
        residence: Some(Level::Ram),
        verify: false,
        ..LauncherOptions::default()
    };
    let program = programs_by_unroll(&load_stream(Mnemonic::Movaps, 8, 8))?.remove(0);
    let series = core_sweep(&opts, &program, 12)?;
    println!("{}", render_chart(std::slice::from_ref(&series), 64, 14, Scale::Log10));
    let base = series.points[0].1;
    for (cores, cycles) in &series.points {
        let marker = if cycles / base > 1.1 { "  ← saturated" } else { "" };
        println!("  {cores:>2.0} cores: {cycles:>6.1} cycles/iteration{marker}");
    }
    println!(
        "→ breaking point at six cores: past it, dedicate the extra cores to compute (§5.2.1)\n"
    );

    // --- Figures 17/18: OpenMP vs sequential on the E31240 -------------
    for (elements, label) in
        [(128 * 1024u64, "128k floats (Figure 17)"), (6_000_000, "6M floats (Figure 18)")]
    {
        println!("── OpenMP vs sequential: {label} ──");
        let base_opts = LauncherOptions {
            machine: MachinePreset::SandyBridgeE31240,
            verify: false,
            ..LauncherOptions::default()
        };
        let cmp =
            openmp_comparison(&base_opts, &load_stream(Mnemonic::Movss, 1, 8), elements, 4, 1)?;
        println!(
            "{}",
            render_chart(&[cmp.sequential.clone(), cmp.openmp.clone()], 64, 12, Scale::Log10)
        );
        let seq_gain =
            (cmp.sequential.points[0].1 - cmp.sequential.points[7].1) / cmp.sequential.points[0].1;
        let omp_gain = (cmp.openmp.points[0].1 - cmp.openmp.points[7].1) / cmp.openmp.points[0].1;
        let speedup = cmp.sequential.points[0].1 / cmp.openmp.points[0].1;
        println!(
            "  sequential unroll gain {:.1}%, OpenMP unroll gain {:.1}%, OpenMP speedup {speedup:.1}×\n",
            seq_gain * 100.0,
            omp_gain * 100.0
        );
    }
    println!("→ unrolling pays sequentially; OpenMP is bandwidth/overhead bound (§5.2.3)");
    Ok(())
}
