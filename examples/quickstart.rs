//! Quickstart: the full MicroTools workflow on the paper's Figure 6 input.
//!
//! 1. Parse the XML kernel description,
//! 2. generate all 510 benchmark program variants with MicroCreator,
//! 3. run a selection with MicroLauncher on the simulated dual-socket
//!    Nehalem X5650,
//! 4. print the CSV output and the best variant per unroll factor.
//!
//! Run with: `cargo run --example quickstart`

use microtools::launcher::launcher::RunReport;
use microtools::prelude::*;

/// The paper's Figure 6 input, verbatim (§3.1).
const FIGURE6_XML: &str = r#"
<kernel name="loadstore">
    <instruction>
        <operation>movaps</operation>
        <memory>
            <register> <name>r1</name> </register>
            <offset>0</offset>
        </memory>
        <register>
            <phyName>%xmm</phyName>
            <min>0</min>
            <max>8</max>
        </register>
        <swap_after_unroll/>
    </instruction>
    <unrolling>
        <min>1</min>
        <max>8</max>
    </unrolling>
    <induction>
        <register> <name>r1</name> </register>
        <increment>16</increment>
        <offset>16</offset>
    </induction>
    <induction>
        <register> <name>r0</name> </register>
        <increment>-1</increment>
        <linked> <register> <name>r1</name> </register> </linked>
        <last_induction/>
    </induction>
    <branch_information>
        <label>L6</label>
        <test>jge</test>
    </branch_information>
</kernel>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- MicroCreator: XML → 510 benchmark programs --------------------
    let creator = MicroCreator::new();
    let generated = creator.generate_from_xml(FIGURE6_XML)?;
    println!(
        "MicroCreator expanded the Figure 6 description into {} programs",
        generated.programs.len()
    );
    println!("pipeline: {} passes, e.g.:", generated.stats.len());
    for stat in generated.stats.iter().take(4) {
        println!("  {:24} → {} candidates", stat.pass, stat.candidates);
    }

    // One of them is the paper's Figure 8 kernel (3× unrolled, S/L/S):
    let fig8 = generated
        .programs
        .iter()
        .find(|p| p.name.ends_with("u3_SLS"))
        .expect("Figure 8 variant exists");
    println!("\nThe Figure 8 program ({}):\n{}", fig8.name, fig8.to_asm_string());

    // --- MicroLauncher: measure in a controlled environment ------------
    let launcher = MicroLauncher::with_defaults(); // simulated X5650, L1 data
    println!("{}", RunReport::csv_header());
    let mut measured: Vec<(RunReport, usize)> = Vec::new();
    for unroll in 1..=8 {
        // Pick the pure-load variant at this unroll factor.
        let program = generated
            .programs
            .iter()
            .filter(|p| p.meta.unroll == unroll)
            .max_by_key(|p| p.load_count())
            .expect("variant exists");
        let report = launcher.run(&KernelInput::program(program.clone()))?;
        println!("{}", report.csv_row());
        measured.push((report, program.load_count()));
    }

    // Normalize by the number of memory instructions: cycles per load.
    let (best, best_loads) = measured
        .iter()
        .map(|(r, loads)| (r, *loads))
        .min_by(|(a, la), (b, lb)| {
            let ca = a.cycles_per_iteration / *la as f64;
            let cb = b.cycles_per_iteration / *lb as f64;
            ca.partial_cmp(&cb).expect("finite cycle counts")
        })
        .expect("non-empty");
    println!(
        "\nEvery run verified the §4.4 linkage contract: {}",
        measured.iter().all(|(r, _)| r.verify.as_ref().is_some_and(|v| v.passed))
    );
    println!(
        "Best cycles/load: {} at {:.2} ({:.2} cycles/iteration over {} loads)",
        best.name,
        best.cycles_per_iteration / best_loads as f64,
        best.cycles_per_iteration,
        best_loads
    );
    Ok(())
}
