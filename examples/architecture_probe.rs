//! Probing an architecture beyond the paper's headline figures, using the
//! extension features: the stride study and stencil kernels of §3.5's
//! "current uses", the §7 power-utilization metric, and the §7
//! "data-mining" analysis helpers.
//!
//! Run with: `cargo run --example architecture_probe`

use microtools::launcher::sweeps::{arithmetic_hiding_sweep, programs_by_unroll, stride_sweep};
use microtools::prelude::*;
use microtools::report::analysis;
use microtools::simarch::energy::{energy_frequency_sweep, energy_optimal_frequency};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::nehalem_x5650_dual();

    // --- 1. Stride study (§3.5): where does the prefetcher give up? ----
    println!("── stride study: movss loads from RAM (X5650) ──");
    let opts = LauncherOptions { verify: false, ..LauncherOptions::default() };
    let series =
        stride_sweep(&opts, Mnemonic::Movss, &[1, 2, 4, 8, 16, 32, 64, 256, 1024], Level::Ram)?;
    for (stride, cycles) in &series.points {
        println!("  stride {stride:>7.0} B: {cycles:>7.2} cycles/access");
    }
    println!("  → unit strides ride the prefetcher; page strides pay latency per access\n");

    // --- 2. Stencil kernel (§3.5) across the hierarchy ------------------
    println!("── 3-point stencil: cycles/iteration by residence ──");
    let stencil_programs = programs_by_unroll(&microtools::kernel::builder::stencil_1d(1, 4))?;
    for level in Level::ALL {
        let o = LauncherOptions {
            residence: Some(level),
            // Separate the in/out arrays mod 4 KiB — page-aligned pairs alias
            // in the store-forwarding predictor (try removing this!).
            alignments: vec![0, 512],
            verify: false,
            ..LauncherOptions::default()
        };
        let report =
            MicroLauncher::new(o).run(&KernelInput::program(stencil_programs[0].clone()))?;
        println!("  {:4}: {:>6.2} cycles/iteration", level.name(), report.cycles_per_iteration);
    }
    println!();

    // --- 2b. Arithmetic hiding (§3.5) ------------------------------------
    println!("── free arithmetic under a movaps RAM stream ──");
    let o = LauncherOptions { verify: false, ..LauncherOptions::default() };
    for level in [Level::L1, Level::Ram] {
        let (series, hidden) = arithmetic_hiding_sweep(&o, Mnemonic::Movaps, 10, level, 0.02)?;
        print!("  {:4}:", level.name());
        for (k, c) in &series.points {
            print!(" k={k:.0}→{c:.1}");
        }
        println!("   → {hidden} additions ride free");
    }
    println!(
        "  → memory latency pays for several vector additions — but only off-core
"
    );

    // --- 3. Energy: the §7 power-utilization metric ---------------------
    println!("── energy per iteration vs core frequency (movaps ×8) ──");
    let program = programs_by_unroll(&load_stream(Mnemonic::Movaps, 8, 8))?.remove(0);
    for level in [Level::L1, Level::Ram] {
        let w = Workload::resident_at(&machine, level);
        let points = energy_frequency_sweep(&program, &w, &machine);
        let optimal = energy_optimal_frequency(&points).expect("non-empty sweep");
        print!("  {:4}:", level.name());
        for (ghz, nj) in &points {
            print!("  {ghz:.2}GHz→{nj:.1}nJ");
        }
        println!("   (optimal: {optimal:.2} GHz)");
    }
    println!("  → memory-bound kernels save energy at low clocks; compute-bound ones do not\n");

    // --- 4. Data-mining the 510-variant study (§7) -----------------------
    println!("── automated analysis of the 510 Figure 6 variants ──");
    let generated = MicroCreator::new().generate(&figure6())?;
    let launcher = MicroLauncher::new(LauncherOptions {
        verify: false,
        repetitions: 2,
        meta_repetitions: 2,
        ..LauncherOptions::default()
    });
    let mut records = Vec::new();
    for p in generated.programs.iter().step_by(5) {
        let report = launcher.run(&KernelInput::program(p.clone()))?;
        records.push(analysis::Record::new(
            &p.name,
            &[
                ("unroll", &p.meta.unroll.to_string()),
                ("loads", &p.meta.load_count().to_string()),
                ("stores", &p.meta.store_count().to_string()),
            ],
            report.cycles_per_iteration / p.meta.unroll.max(1) as f64,
        ));
    }
    let best = analysis::best(&records).expect("records exist");
    println!("  optimal variant: {} at {:.2} cycles/copy", best.name, best.metric);
    println!("  knob impact ranking:");
    for (field, impact) in analysis::rank_fields(&records) {
        println!("    {field:7} {:>6.1}% swing", impact * 100.0);
    }
    println!("  per-unroll minima (the Figure 11 reading):");
    for (unroll, min) in analysis::min_per_group(&records, "unroll") {
        println!("    unroll {unroll}: {min:.2} cycles/copy");
    }
    Ok(())
}
