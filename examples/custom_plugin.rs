//! Writing a MicroCreator plugin (§3.3).
//!
//! The paper's plugin system lets users "easily add, remove, or modify a
//! pass without recompiling the system" and "permits a redefinition of any
//! pass gate". This example:
//! 1. re-gates `operand-swap-after` off (one program per unroll factor),
//! 2. replaces `unroll-selection` with a power-of-two-only version,
//! 3. adds a post-codegen pass that tags every program.
//!
//! Run with: `cargo run --example custom_plugin`

use microtools::creator::pass::FnPass;
use microtools::creator::plugin::FnPlugin;
use microtools::creator::{GenContext, PassManager};
use microtools::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plugin = FnPlugin::new("power-of-two-study", |pm: &mut PassManager| {
        // 1. Gate redefinition: skip the per-copy operand swaps.
        pm.set_gate("operand-swap-after", |_| false)?;

        // 2. Pass replacement: only power-of-two unroll factors.
        pm.replace_pass(
            "unroll-selection",
            Box::new(FnPass::new("unroll-selection", |ctx: &mut GenContext| {
                ctx.expand("unroll-selection", |cand| {
                    let mut out = Vec::new();
                    for factor in cand.desc.unrolling.factors().filter(|f| f.is_power_of_two()) {
                        let mut next = cand.clone();
                        next.unroll = factor;
                        next.meta.unroll = factor;
                        next.desc.unrolling = microtools::kernel::UnrollRange::fixed(factor);
                        out.push(next);
                    }
                    Ok(out)
                })
            })),
        )?;

        // 3. New pass after codegen: tag the programs.
        pm.insert_after(
            "codegen",
            Box::new(FnPass::new("tag-study", |ctx: &mut GenContext| {
                for p in &mut ctx.programs {
                    p.meta.extra.push(("study".into(), "pow2".into()));
                }
                Ok(())
            })),
        )
    });

    let mut creator = MicroCreator::new();
    println!("standard pipeline: {} passes", creator.pass_manager().len());
    creator.register_plugin(&plugin)?;
    println!("after pluginInit : {} passes\n", creator.pass_manager().len());

    let generated = creator.generate(&figure6())?;
    println!(
        "the plugin narrowed the Figure 6 expansion from 510 to {} programs:",
        generated.programs.len()
    );
    for p in &generated.programs {
        println!(
            "  {:28} unroll {} tagged {:?}",
            p.name,
            p.meta.unroll,
            p.meta.extra.iter().find(|(k, _)| k == "study").map(|(_, v)| v.as_str())
        );
    }

    // Measure the plugin's power-of-two variants.
    let launcher = MicroLauncher::with_defaults();
    println!("\ncycles per load on the simulated X5650 (L1):");
    for p in &generated.programs {
        let report = launcher.run(&KernelInput::program(p.clone()))?;
        println!(
            "  unroll {}: {:.2} cycles/load",
            p.meta.unroll,
            report.cycles_per_iteration / p.load_count().max(1) as f64
        );
    }
    Ok(())
}
