//! MicroLauncher's native path: measuring a real Rust kernel on the host
//! with the full Figure 10 stability protocol (overhead calibration,
//! cache heating, inner repetition loop, outer experiment loop).
//!
//! This is the reproduction's equivalent of handing MicroLauncher a
//! compiled shared library with an `int kernel(int n, void *a0)` entry
//! point (§4.1) — here the "library" is a Rust closure.
//!
//! Run with: `cargo run --release --example native_kernel`

use microtools::launcher::input::FnKernel;
use microtools::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = LauncherOptions {
        vector_bytes: 64 << 10, // 64 KiB of f32s per array
        nb_vectors: 2,
        repetitions: 64,
        meta_repetitions: 10,
        ..LauncherOptions::default()
    };

    // Kernel 1: a streaming sum (load-bound).
    let sum = FnKernel::new("stream_sum", |n, arrays: &mut [Vec<f32>]| {
        let a = &arrays[0];
        let mut acc = 0.0f32;
        for &v in a.iter().take(n) {
            acc += v;
        }
        std::hint::black_box(acc);
        n
    });

    // Kernel 2: a copy (load+store per element).
    let copy = FnKernel::new("stream_copy", |n, arrays: &mut [Vec<f32>]| {
        let (src, dst) = arrays.split_at_mut(1);
        let n = n.min(src[0].len()).min(dst[0].len());
        dst[0][..n].copy_from_slice(&src[0][..n]);
        n
    });

    // Kernel 3: a dependent accumulation (latency chain).
    let chain = FnKernel::new("dependent_chain", |n, arrays: &mut [Vec<f32>]| {
        let a = &arrays[0];
        let mut acc = 1.0f32;
        for &v in a.iter().take(n) {
            acc = acc.mul_add(0.999_9, v);
        }
        std::hint::black_box(acc);
        n
    });

    println!("native host measurements ({} experiments × {} repetitions each):", 10, 64);
    println!("{}", microtools::launcher::launcher::RunReport::csv_header());
    let launcher = MicroLauncher::new(opts);
    for input in [KernelInput::native(sum), KernelInput::native(copy), KernelInput::native(chain)] {
        let report = launcher.run(&input)?;
        println!("{}", report.csv_row());
        println!(
            "    min {:.3} / median {:.3} / max {:.3} cycles per element, {}",
            report.summary.min,
            report.summary.median,
            report.summary.max,
            if report.stable { "stable" } else { "UNSTABLE (rerun on a quiet machine)" },
        );
    }
    println!(
        "\n→ the dependent chain costs several cycles per element regardless of bandwidth —\n\
         the same latency-versus-throughput distinction the simulated figures quantify"
    );
    Ok(())
}
